#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hodor::fleet {
namespace {

InstanceSpec SmallSpec(const std::string& name, std::uint64_t seed,
                       const std::string& scenario = "") {
  InstanceSpec spec;
  spec.name = name;
  spec.topology = "abilene";
  spec.seed = seed;
  spec.epochs = 6;
  spec.scenario = scenario;
  return spec;
}

TEST(FleetInstance, DeterministicForAGivenSpec) {
  const InstanceSpec spec = SmallSpec("a", 7, "phantom-links");
  FleetInstance first(spec);
  FleetInstance second(spec);
  while (!first.done()) first.RunEpochs(2);
  while (!second.done()) second.RunEpochs(3);  // different round splits
  EXPECT_EQ(first.digests(), second.digests());
  EXPECT_EQ(first.digests().size(), 6u);
  EXPECT_EQ(first.digests(), StandaloneDigests(spec));
}

TEST(FleetInstance, SeedChangesTheDigestStream) {
  FleetInstance a(SmallSpec("a", 7));
  FleetInstance b(SmallSpec("b", 8));
  while (!a.done()) a.RunEpochs(6);
  while (!b.done()) b.RunEpochs(6);
  EXPECT_NE(a.digests(), b.digests());
}

TEST(FleetInstance, ScenarioWindowProducesRejects) {
  // A phantom-links outage inside [fault_start, fault_end) must be caught
  // by the instance's own validator at least once.
  FleetInstance instance(SmallSpec("a", 7, "phantom-links"));
  while (!instance.done()) instance.RunEpochs(2);
  EXPECT_GT(instance.rejects(), 0u);
  EXPECT_GT(instance.accepts(), 0u);  // healthy epochs outside the window
}

TEST(FleetManager, SerialFleetMatchesStandaloneOracle) {
  FleetManager manager({/*threads=*/1, /*epochs_per_round=*/2});
  manager.AddInstance(SmallSpec("a", 7, "phantom-links"));
  manager.AddInstance(SmallSpec("b", 8));
  manager.AddInstance(SmallSpec("c", 9, "partial-demand"));
  manager.RunAll();
  EXPECT_EQ(manager.epochs_total(), 18u);
  for (const auto& instance : manager.instances()) {
    EXPECT_EQ(instance->digests(), StandaloneDigests(instance->spec()))
        << instance->spec().name;
  }
}

TEST(FleetManager, PooledFleetMatchesStandaloneOracle) {
  FleetManager manager({/*threads=*/4, /*epochs_per_round=*/2});
  manager.AddInstance(SmallSpec("a", 7, "phantom-links"));
  manager.AddInstance(SmallSpec("b", 8));
  manager.AddInstance(SmallSpec("c", 9));
  manager.AddInstance(SmallSpec("d", 10, "partial-demand"));
  manager.RunAll();
  for (const auto& instance : manager.instances()) {
    EXPECT_EQ(instance->digests(), StandaloneDigests(instance->spec()))
        << instance->spec().name;
  }
}

TEST(FleetManager, MergedRegistryCarriesInstanceLabels) {
  FleetManager manager({/*threads=*/1, /*epochs_per_round=*/3});
  manager.AddInstance(SmallSpec("alpha", 7));
  manager.AddInstance(SmallSpec("beta", 8));
  manager.RunAll();
  const obs::MetricsRegistry& merged = manager.registry();
  const obs::Counter* alpha =
      merged.FindCounter("hodor_epochs_total", {{"instance", "alpha"}});
  const obs::Counter* beta =
      merged.FindCounter("hodor_epochs_total", {{"instance", "beta"}});
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  // Each instance ran exactly its own 6 epochs — no cross-instance bleed,
  // no double-counting from the per-round re-merge.
  EXPECT_DOUBLE_EQ(alpha->value(), 6.0);
  EXPECT_DOUBLE_EQ(beta->value(), 6.0);
  // The unlabeled process-global series must not appear in the merge.
  EXPECT_EQ(merged.FindCounter("hodor_epochs_total", {}), nullptr);
}

TEST(FleetManager, ScoreboardJsonShape) {
  FleetManager manager({/*threads=*/1, /*epochs_per_round=*/2});
  manager.AddInstance(SmallSpec("alpha", 7, "phantom-links"));
  manager.AddInstance(SmallSpec("beta", 8));
  manager.RunAll();
  const std::string json = manager.ScoreboardJson();
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"instances\":2"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate_epochs_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"laggard_rank\":1"), std::string::npos);
  EXPECT_NE(json.find("\"laggard_rank\":2"), std::string::npos);
  EXPECT_NE(json.find("\"last_digest\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"done\":true"), std::string::npos);
}

TEST(FleetManager, RoundsAdvanceAndTerminate) {
  FleetManager manager({/*threads=*/1, /*epochs_per_round=*/2});
  manager.AddInstance(SmallSpec("a", 7));  // 6 epochs -> 3 rounds
  EXPECT_TRUE(manager.RunRound());
  EXPECT_TRUE(manager.RunRound());
  EXPECT_FALSE(manager.RunRound());  // finishes on the third
  EXPECT_FALSE(manager.RunRound());  // idempotent once done
  EXPECT_EQ(manager.rounds(), 3u);
  EXPECT_EQ(manager.epochs_total(), 6u);
}

TEST(TopologyForSpecTest, GeneratedFamiliesAreSeedDeterministic) {
  InstanceSpec spec;
  spec.topology = "hier400";
  spec.seed = 21;
  const net::Topology a = TopologyForSpec(spec);
  const net::Topology b = TopologyForSpec(spec);
  EXPECT_EQ(net::StructuralDigest(a), net::StructuralDigest(b));
  EXPECT_EQ(a.node_count(), 404u);
  spec.seed = 22;
  const net::Topology c = TopologyForSpec(spec);
  EXPECT_NE(net::StructuralDigest(a), net::StructuralDigest(c));
}

}  // namespace
}  // namespace hodor::fleet
