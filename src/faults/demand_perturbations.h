// Demand-matrix perturbations for the paper's §4.1 preliminary evaluation:
// "demand matrices ... artificially 'perturbed' to mimic buggy demand
// matrices". Each function returns the perturbed copy plus which entries
// changed, so experiments can score detection precisely.
#pragma once

#include <utility>
#include <vector>

#include "flow/demand_matrix.h"
#include "util/rng.h"

namespace hodor::faults {

struct PerturbedDemand {
  flow::DemandMatrix matrix;
  // Entries that were modified (i, j).
  std::vector<std::pair<net::NodeId, net::NodeId>> touched;
};

// Zeroes `k` distinct positive entries ("missing values", the paper's
// perturbation). Precondition: the matrix has at least k positive entries.
PerturbedDemand ZeroEntries(const flow::DemandMatrix& d, std::size_t k,
                            util::Rng& rng);

// Multiplies `k` distinct positive entries by `factor`.
PerturbedDemand ScaleEntries(const flow::DemandMatrix& d, std::size_t k,
                             double factor, util::Rng& rng);

// Adds zero-mean relative Gaussian noise (sigma as a fraction of each
// entry) to every positive entry.
PerturbedDemand NoiseAllEntries(const flow::DemandMatrix& d, double sigma,
                                util::Rng& rng);

// Swaps the values of `k` random pairs of positive entries (aggregation
// keying bugs: demand attributed to the wrong ingress/egress).
PerturbedDemand SwapEntries(const flow::DemandMatrix& d, std::size_t k,
                            util::Rng& rng);

}  // namespace hodor::faults
