file(REMOVE_RECURSE
  "CMakeFiles/outage_replay.dir/outage_replay.cpp.o"
  "CMakeFiles/outage_replay.dir/outage_replay.cpp.o.d"
  "outage_replay"
  "outage_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
