// TimeSeriesStore: ring retention, multi-resolution downsampling, the
// /query glob selector, and the cardinality safety valve (DESIGN §11).
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hodor::obs {
namespace {

TEST(MatchGlobTest, LiteralStarAndQuestionMark) {
  EXPECT_TRUE(MatchGlob("abc", "abc"));
  EXPECT_FALSE(MatchGlob("abc", "abd"));
  EXPECT_TRUE(MatchGlob("*", ""));
  EXPECT_TRUE(MatchGlob("*", "anything"));
  EXPECT_TRUE(MatchGlob("hodor_*", "hodor_signal_trust"));
  EXPECT_FALSE(MatchGlob("hodor_*", "other_metric"));
  EXPECT_TRUE(MatchGlob("*trust*", "hodor_signal_trust{check=\"demand\"}"));
  EXPECT_TRUE(MatchGlob("a?c", "abc"));
  EXPECT_FALSE(MatchGlob("a?c", "ac"));
  EXPECT_TRUE(MatchGlob("*_total", "hodor_epochs_total"));
  EXPECT_FALSE(MatchGlob("*_total", "hodor_epochs_total_count"));
  // Multiple stars force the backtracking path.
  EXPECT_TRUE(MatchGlob("*sig*tru*", "hodor_signal_trust"));
  EXPECT_FALSE(MatchGlob("*sig*xyz*", "hodor_signal_trust"));
}

TEST(TimeSeriesStoreTest, RawRingRetainsNewestPoints) {
  TimeSeriesOptions opts;
  opts.raw_capacity = 4;
  opts.strides = {10};
  TimeSeriesStore store(opts);
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("g", {}, "test gauge");
  for (std::uint64_t e = 0; e < 10; ++e) {
    g.Set(static_cast<double>(e) * 2.0);
    store.Sample(e, reg);
  }
  EXPECT_EQ(store.epochs_sampled(), 10u);
  EXPECT_EQ(store.series_count(), 1u);
  const std::vector<TimeSeriesPoint> points = store.RawPoints("g");
  ASSERT_EQ(points.size(), 4u);  // capacity, oldest evicted
  EXPECT_EQ(points.front().epoch, 6u);
  EXPECT_EQ(points.back().epoch, 9u);
  EXPECT_DOUBLE_EQ(points.back().value, 18.0);
}

TEST(TimeSeriesStoreTest, DownsamplingFoldsMinMaxMeanLast) {
  TimeSeriesOptions opts;
  opts.strides = {4, 8};
  TimeSeriesStore store(opts);
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("g", {}, "test gauge");
  const double values[] = {5, 1, 9, 3, 7, 2};
  for (std::uint64_t e = 0; e < 6; ++e) {
    g.Set(values[e]);
    store.Sample(e, reg);
  }
  // Stride 4: one closed bucket over epochs 0-3, one open over 4-5.
  const std::vector<TimeSeriesBucket> b4 = store.Buckets("g", 4);
  ASSERT_EQ(b4.size(), 2u);
  EXPECT_EQ(b4[0].first_epoch, 0u);
  EXPECT_EQ(b4[0].count, 4u);
  EXPECT_DOUBLE_EQ(b4[0].min, 1.0);
  EXPECT_DOUBLE_EQ(b4[0].max, 9.0);
  EXPECT_DOUBLE_EQ(b4[0].mean(), 4.5);
  EXPECT_DOUBLE_EQ(b4[0].last, 3.0);
  EXPECT_EQ(b4[1].first_epoch, 4u);
  EXPECT_EQ(b4[1].count, 2u);  // open partial bucket
  EXPECT_DOUBLE_EQ(b4[1].last, 2.0);
  // Stride 8: nothing closed yet, but the open bucket still answers.
  const std::vector<TimeSeriesBucket> b8 = store.Buckets("g", 8);
  ASSERT_EQ(b8.size(), 1u);
  EXPECT_EQ(b8[0].count, 6u);
  EXPECT_DOUBLE_EQ(b8[0].min, 1.0);
  EXPECT_DOUBLE_EQ(b8[0].max, 9.0);
}

TEST(TimeSeriesStoreTest, HistogramsSplitIntoCountAndSumSeries) {
  TimeSeriesStore store;
  MetricsRegistry reg;
  Histogram& h =
      reg.GetHistogram("hodor_stage_duration_us", {{"stage", "validate"}});
  h.Observe(10.0);
  h.Observe(30.0);
  store.Sample(0, reg);
  const auto count_points =
      store.RawPoints("hodor_stage_duration_us_count{stage=\"validate\"}");
  const auto sum_points =
      store.RawPoints("hodor_stage_duration_us_sum{stage=\"validate\"}");
  ASSERT_EQ(count_points.size(), 1u);
  ASSERT_EQ(sum_points.size(), 1u);
  EXPECT_DOUBLE_EQ(count_points[0].value, 2.0);
  EXPECT_DOUBLE_EQ(sum_points[0].value, 40.0);
  EXPECT_EQ(store.series_count(), 2u);
}

TEST(TimeSeriesStoreTest, MaxSeriesValveCountsDroppedSamples) {
  TimeSeriesOptions opts;
  opts.max_series = 2;
  TimeSeriesStore store(opts);
  MetricsRegistry reg;
  reg.GetGauge("a", {}, "").Set(1.0);
  reg.GetGauge("b", {}, "").Set(2.0);
  reg.GetGauge("c", {}, "").Set(3.0);
  store.Sample(0, reg);
  store.Sample(1, reg);
  EXPECT_EQ(store.series_count(), 2u);
  // The refused series re-attempts (and re-counts) every epoch.
  EXPECT_EQ(store.dropped_series(), 2u);
  EXPECT_TRUE(store.RawPoints("c").empty());
  ASSERT_EQ(store.RawPoints("a").size(), 2u);
}

TEST(TimeSeriesStoreTest, HasResolutionAcceptsRawAndConfiguredStrides) {
  TimeSeriesStore store;  // default strides {10, 100}
  EXPECT_TRUE(store.HasResolution("raw"));
  EXPECT_TRUE(store.HasResolution("10"));
  EXPECT_TRUE(store.HasResolution("100"));
  EXPECT_FALSE(store.HasResolution("50"));
  EXPECT_FALSE(store.HasResolution(""));
  EXPECT_FALSE(store.HasResolution("RAW"));
}

TEST(TimeSeriesStoreTest, QueryJsonFiltersAndTrims) {
  TimeSeriesStore store;
  MetricsRegistry reg;
  Gauge& trust = reg.GetGauge("hodor_signal_trust",
                              {{"check", "demand"}, {"entity", "x"}}, "");
  Counter& epochs = reg.GetCounter("hodor_epochs_total", {}, "");
  for (std::uint64_t e = 0; e < 5; ++e) {
    trust.Set(100.0 - static_cast<double>(e));
    epochs.Increment();
    store.Sample(e, reg);
  }
  // Glob selects only the trust series; last=2 trims to the newest two.
  TimeSeriesQuery query;
  query.series = "hodor_signal_trust*";
  query.last = 2;
  const std::string json = store.QueryJson(query);
  EXPECT_NE(json.find("\"resolution\":\"raw\""), std::string::npos);
  EXPECT_NE(json.find("\"stride\":1"), std::string::npos);
  EXPECT_NE(json.find("\"epochs_sampled\":5"), std::string::npos);
  EXPECT_NE(json.find("hodor_signal_trust{check=\\\"demand\\\""),
            std::string::npos);
  EXPECT_EQ(json.find("hodor_epochs_total"), std::string::npos);
  // Newest two points only: epochs 3 and 4.
  EXPECT_NE(json.find("[3,97]"), std::string::npos);
  EXPECT_NE(json.find("[4,96]"), std::string::npos);
  EXPECT_EQ(json.find("[2,98]"), std::string::npos);
}

TEST(TimeSeriesStoreTest, QueryJsonAggregateIncludesOpenBucket) {
  TimeSeriesStore store;  // strides {10, 100}
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("g", {}, "");
  for (std::uint64_t e = 0; e < 12; ++e) {
    g.Set(static_cast<double>(e));
    store.Sample(e, reg);
  }
  TimeSeriesQuery query;
  query.resolution = "10";
  const std::string json = store.QueryJson(query);
  EXPECT_NE(json.find("\"resolution\":\"10\""), std::string::npos);
  EXPECT_NE(json.find("\"stride\":10"), std::string::npos);
  // Closed bucket epochs 0-9: [0,min,max,mean,last,count].
  EXPECT_NE(json.find("[0,0,9,4.5,9,10]"), std::string::npos);
  // Open partial bucket epochs 10-11.
  EXPECT_NE(json.find("[10,10,11,10.5,11,2]"), std::string::npos);
}

TEST(TimeSeriesStoreTest, SteadyStateCreatesNoNewSeries) {
  TimeSeriesStore store;
  MetricsRegistry reg;
  reg.GetGauge("g", {{"k", "v"}}, "").Set(1.0);
  store.Sample(0, reg);
  const std::size_t series_after_first = store.series_count();
  for (std::uint64_t e = 1; e < 50; ++e) store.Sample(e, reg);
  EXPECT_EQ(store.series_count(), series_after_first);
  EXPECT_EQ(store.dropped_series(), 0u);
}

}  // namespace
}  // namespace hodor::obs
