file(REMOVE_RECURSE
  "CMakeFiles/telemetry_self_correction_test.dir/telemetry/self_correction_test.cc.o"
  "CMakeFiles/telemetry_self_correction_test.dir/telemetry/self_correction_test.cc.o.d"
  "telemetry_self_correction_test"
  "telemetry_self_correction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_self_correction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
