// Collector: paper §3 step 1 — reads (possibly incorrect) signals from all
// routers into one comprehensive NetworkSnapshot.
//
// Router-level faults are applied through an optional SnapshotMutator hook,
// which the fault library implements; the collector itself is deliberately
// dumb (it only reads), matching the paper's argument that Hodor's own bug
// surface stays small because it "does not process or aggregate signals".
#pragma once

#include <functional>
#include <vector>

#include "flow/simulator.h"
#include "net/state.h"
#include "telemetry/probes.h"
#include "telemetry/router_agent.h"
#include "telemetry/snapshot.h"

namespace hodor::obs {
class MetricsRegistry;
}  // namespace hodor::obs

namespace hodor::util {
class ThreadPool;
}  // namespace hodor::util

namespace hodor::telemetry {

// Mutates a freshly collected snapshot (fault injection hook).
using SnapshotMutator = std::function<void(NetworkSnapshot&)>;

struct CollectorOptions {
  AgentOptions agent;
  // When true, run active neighbor probes (R4) and attach their results.
  bool run_probes = true;
  ProbeOptions probes;

  // Observability: collection counters and the signals-present gauge are
  // emitted here (nullptr → the process-global registry).
  obs::MetricsRegistry* metrics = nullptr;
};

class Collector {
 public:
  Collector(const net::Topology& topo, CollectorOptions opts)
      : topo_(&topo), opts_(std::move(opts)) {}

  // Collects signals from every router for the given epoch. `mutator`
  // (if any) is applied after honest collection, before probes are
  // attached — probes are Hodor's own manufactured signals and are not
  // subject to router telemetry bugs (they can instead be disabled).
  NetworkSnapshot Collect(const net::GroundTruthState& state,
                          const flow::SimulationResult& sim,
                          std::uint64_t epoch, util::Rng& rng,
                          const SnapshotMutator& mutator = nullptr) const;

  // Zero-allocation variant: resets and refills `snapshot` in place,
  // reusing its frame and probe buffers across epochs. `snapshot` must be
  // built over the same topology.
  //
  // With a non-null `pool`, honest collection is sharded over contiguous
  // router ranges. Every jitter value is pre-drawn from `rng` in exact
  // serial order first (see router_agent.h), so the snapshot — and the
  // master Rng's final state — are bit-identical to the serial path at any
  // thread count. Like HardeningEngine, a given Collector must not run two
  // parallel CollectInto calls concurrently (it reuses a scratch buffer).
  void CollectInto(const net::GroundTruthState& state,
                   const flow::SimulationResult& sim, std::uint64_t epoch,
                   util::Rng& rng, NetworkSnapshot& snapshot,
                   const SnapshotMutator& mutator = nullptr,
                   util::ThreadPool* pool = nullptr) const;

 private:
  const net::Topology* topo_;
  CollectorOptions opts_;
  // Parallel-path scratch (draw counts prefix sum + pre-drawn uniforms),
  // reused across epochs so steady-state collection stays allocation-free.
  mutable std::vector<std::size_t> draw_offsets_;
  mutable std::vector<double> jitter_scratch_;
};

}  // namespace hodor::telemetry
