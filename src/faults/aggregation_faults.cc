#include "faults/aggregation_faults.h"

namespace hodor::faults {

TopologyHook PartialTopologyStitch(const net::Topology& topo,
                                   std::vector<net::NodeId> missing_routers) {
  return [&topo, missing = std::move(missing_routers)](
             std::vector<bool>& link_available) {
    for (net::NodeId v : missing) {
      for (net::LinkId e : topo.OutLinks(v)) {
        link_available[e.value()] = false;
        link_available[topo.link(e).reverse.value()] = false;
      }
    }
  };
}

TopologyHook LinksMarkedDown(const net::Topology& topo,
                             std::vector<net::LinkId> links) {
  return [&topo, links = std::move(links)](std::vector<bool>& link_available) {
    for (net::LinkId e : links) {
      link_available[e.value()] = false;
      link_available[topo.link(e).reverse.value()] = false;
    }
  };
}

TopologyHook LinksMarkedUp(const net::Topology& topo,
                           std::vector<net::LinkId> links) {
  return [&topo, links = std::move(links)](std::vector<bool>& link_available) {
    for (net::LinkId e : links) {
      link_available[e.value()] = true;
      link_available[topo.link(e).reverse.value()] = true;
    }
  };
}

DrainHook DrainsDropped() {
  return [](std::vector<bool>& node_drained, std::vector<bool>& link_drained) {
    node_drained.assign(node_drained.size(), false);
    link_drained.assign(link_drained.size(), false);
  };
}

DrainHook DrainsInvented(std::vector<net::NodeId> routers) {
  return [routers = std::move(routers)](std::vector<bool>& node_drained,
                                        std::vector<bool>&) {
    for (net::NodeId v : routers) node_drained[v.value()] = true;
  };
}

DemandHook DemandRowsDropped(const net::Topology& topo,
                             std::vector<net::NodeId> sources) {
  return [&topo, sources = std::move(sources)](flow::DemandMatrix& d) {
    for (net::NodeId i : sources) {
      for (net::NodeId j : topo.NodeIds()) {
        if (i != j) d.Set(i, j, 0.0);
      }
    }
  };
}

DemandHook DemandEntriesDropped(double fraction, std::uint64_t seed) {
  return [fraction, seed](flow::DemandMatrix& d) {
    util::Rng rng(seed);
    for (const auto& [i, j] : d.Pairs()) {
      if (rng.Bernoulli(fraction)) d.Set(i, j, 0.0);
    }
  };
}

DemandHook DemandScaled(double factor) {
  return [factor](flow::DemandMatrix& d) { d.Scale(factor); };
}

DemandHook DemandFrozen(flow::DemandMatrix stale) {
  return [stale = std::move(stale)](flow::DemandMatrix& d) { d = stale; };
}

DemandHook DemandRowsRotated(const net::Topology& topo) {
  return [&topo](flow::DemandMatrix& d) {
    const std::vector<net::NodeId> ext = topo.ExternalNodes();
    if (ext.size() < 2) return;
    flow::DemandMatrix rotated(d.node_count());
    for (std::size_t i = 0; i < ext.size(); ++i) {
      const net::NodeId from = ext[i];
      const net::NodeId to = ext[(i + 1) % ext.size()];
      for (net::NodeId j : topo.NodeIds()) {
        if (from == j) continue;
        // Demand that would land on the new source's diagonal is redirected
        // back to the old source, keeping the total exactly preserved.
        const net::NodeId dst = (j == to) ? from : j;
        rotated.Set(to, dst, rotated.At(to, dst) + d.At(from, j));
      }
    }
    d = rotated;
  };
}

}  // namespace hodor::faults
