// The staged epoch engine's contract: the explicit stage graph is a valid
// topological order, the unified sink API fans out to every subscriber in a
// fixed order, and — the non-negotiable — the staged configuration
// (num_threads > 1, threaded sinks) is bit-identical to the serial loop:
// same decisions, same provenance digests, same hardened state, at every
// epoch of every faulted scenario.
#include "controlplane/epoch_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/tm_generators.h"
#include "integration/equivalence_fingerprint.h"
#include "net/topologies.h"
#include "obs/exec_timeline.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace hodor::controlplane {
namespace {

TEST(EpochStageGraph, IsAValidTopologicalOrder) {
  const auto& graph = EpochStageGraph();
  ASSERT_EQ(graph.size(), kEpochStageCount);
  std::uint32_t done = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const EpochStageNode& node = graph[i];
    EXPECT_EQ(static_cast<std::size_t>(node.id), i)
        << "graph order must match EpochStageId order";
    EXPECT_NE(node.name, nullptr);
    // Every dependency must already have run, and no stage depends on
    // itself or the future.
    EXPECT_EQ(node.deps & ~done, 0u) << "stage " << node.name
                                     << " depends on a later stage";
    done |= 1u << static_cast<std::uint32_t>(node.id);
  }
}

// One pipeline run of a catalog scenario: per-epoch provenance digest plus
// the full fingerprintable epoch text (decision provenance + verdict).
struct ScenarioRun {
  std::vector<std::uint64_t> digests;
  std::vector<std::string> texts;
};

ScenarioRun RunScenario(const std::string& id, std::size_t num_threads,
                        bool threaded_sinks) {
  net::Topology topo = net::Abilene();
  faults::ScenarioCatalog catalog(topo);
  const faults::OutageScenario* sc = catalog.Find(id).value();

  net::GroundTruthState state(topo);
  if (sc->setup) sc->setup(state);
  util::Rng demand_rng(11);
  flow::DemandMatrix demand = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);

  PipelineOptions opts;
  opts.num_threads = num_threads;
  opts.threaded_sinks = threaded_sinks;
  // The validator's sibling checks follow the same thread count.
  core::ValidatorOptions vopts;
  vopts.hardening.num_threads = num_threads;

  Pipeline pipeline(topo, opts, util::Rng(13));
  pipeline.Bootstrap(state, demand);
  core::Validator validator(topo, vopts);
  pipeline.SetValidator(validator.AsPipelineValidator());

  ScenarioRun run;
  // Collect through a sink (the threaded path renders results there), but
  // fingerprint from the returned EpochResult — both must agree.
  std::vector<std::uint64_t> sink_digests;
  pipeline.AddEpochSink([&](const EpochResult& r) {
    sink_digests.push_back(r.decision.provenance.CanonicalDigest());
  });
  for (int epoch = 0; epoch < 4; ++epoch) {
    const EpochResult r =
        pipeline.RunEpoch(state, demand, sc->snapshot_fault, sc->aggregation);
    run.digests.push_back(r.decision.provenance.CanonicalDigest());
    std::string text = testing::DecisionText(r.decision.provenance);
    text += testing::EpochVerdictText(r);
    run.texts.push_back(std::move(text));
  }
  pipeline.DrainSinks();
  EXPECT_EQ(sink_digests, run.digests);
  return run;
}

TEST(EpochEngine, StagedBitIdenticalToSerialAcrossScenarios) {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  for (const char* id :
       {"counter-corruption", "phantom-links", "partial-demand"}) {
    const ScenarioRun serial =
        RunScenario(id, /*num_threads=*/1, /*threaded_sinks=*/false);
    const ScenarioRun staged =
        RunScenario(id, /*num_threads=*/4, /*threaded_sinks=*/true);
    ASSERT_EQ(serial.digests.size(), staged.digests.size());
    for (std::size_t i = 0; i < serial.digests.size(); ++i) {
      EXPECT_EQ(serial.digests[i], staged.digests[i]) << id << " epoch " << i;
      EXPECT_EQ(serial.texts[i], staged.texts[i]) << id << " epoch " << i;
    }
  }
  util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
}

struct EngineFixture : ::testing::Test {
  EngineFixture() : topo(net::Abilene()), state(topo) {
    util::Rng rng(1);
    demand = flow::GravityDemand(topo, rng);
    flow::NormalizeToMaxUtilization(topo, 0.6, demand);
  }

  Pipeline MakePipeline(PipelineOptions opts = {}) {
    Pipeline p(topo, opts, util::Rng(2));
    p.Bootstrap(state, demand);
    return p;
  }

  net::Topology topo;
  net::GroundTruthState state;
  flow::DemandMatrix demand;
};

TEST_F(EngineFixture, SinksFanOutInSubscriptionOrder) {
  Pipeline pipeline = MakePipeline();
  std::vector<std::string> calls;
  pipeline.AddEpochSink([&](const EpochResult&) { calls.push_back("sink1"); });
  pipeline.AddEpochSink([&](const EpochResult&) { calls.push_back("sink2"); });
  pipeline.AddEpochSink([&](const EpochResult&) { calls.push_back("sink3"); });
  (void)pipeline.RunEpoch(state, demand);
  EXPECT_EQ(calls,
            (std::vector<std::string>{"sink1", "sink2", "sink3"}));
}

TEST_F(EngineFixture, EmptySinksAreSkipped) {
  Pipeline pipeline = MakePipeline();
  int called = 0;
  pipeline.AddEpochSink(nullptr);  // no-op subscription
  pipeline.AddEpochSink([&](const EpochResult&) { ++called; });
  (void)pipeline.RunEpoch(state, demand);
  EXPECT_EQ(called, 1);
}

TEST_F(EngineFixture, ThreadedSinksDeliverEveryEpochInOrder) {
  PipelineOptions opts;
  opts.threaded_sinks = true;
  Pipeline pipeline = MakePipeline(opts);
  std::vector<std::uint64_t> seen;  // sink-thread-only until DrainSinks
  pipeline.AddEpochSink(
      [&](const EpochResult& r) { seen.push_back(r.epoch); });
  constexpr std::uint64_t kEpochs = 32;
  for (std::uint64_t i = 0; i < kEpochs; ++i) {
    (void)pipeline.RunEpoch(state, demand);
  }
  pipeline.DrainSinks();
  ASSERT_EQ(seen.size(), kEpochs);
  for (std::uint64_t i = 0; i < kEpochs; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(EngineFixture, ThreadedSinkSeesMetricsMirrorCallerDoesNot) {
  PipelineOptions opts;
  opts.threaded_sinks = true;
  obs::MetricsRegistry registry;
  opts.metrics = &registry;
  Pipeline pipeline = MakePipeline(opts);
  std::vector<double> epochs_total;
  pipeline.AddEpochSink([&](const EpochResult& r) {
    ASSERT_NE(r.metrics_mirror, nullptr);
    // The mirror is a value snapshot taken at this epoch's boundary: the
    // epoch counter must already include this epoch.
    const obs::Counter* c =
        r.metrics_mirror->FindCounter("hodor_epochs_total", {});
    ASSERT_NE(c, nullptr);
    epochs_total.push_back(c->value());
  });
  const EpochResult r0 = pipeline.RunEpoch(state, demand);
  const EpochResult r1 = pipeline.RunEpoch(state, demand);
  pipeline.DrainSinks();
  EXPECT_EQ(r0.metrics_mirror, nullptr);  // valid only during sink invocation
  EXPECT_EQ(r1.metrics_mirror, nullptr);
  ASSERT_EQ(epochs_total.size(), 2u);
  EXPECT_DOUBLE_EQ(epochs_total[0], 1.0);
  EXPECT_DOUBLE_EQ(epochs_total[1], 2.0);
}

TEST_F(EngineFixture, SynchronousSinkSeesConfiguredRegistry) {
  PipelineOptions opts;
  obs::MetricsRegistry registry;
  opts.metrics = &registry;
  Pipeline pipeline = MakePipeline(opts);
  const obs::MetricsRegistry* seen = nullptr;
  pipeline.AddEpochSink(
      [&](const EpochResult& r) { seen = r.metrics_mirror; });
  (void)pipeline.RunEpoch(state, demand);
  EXPECT_EQ(seen, &registry);  // live registry, not a copy, in sync mode
}

TEST_F(EngineFixture, ThreadedSubscriptionAfterFirstEpochRejected) {
  PipelineOptions opts;
  opts.threaded_sinks = true;
  Pipeline pipeline = MakePipeline(opts);
  (void)pipeline.RunEpoch(state, demand);
  EXPECT_THROW(pipeline.AddEpochSink([](const EpochResult&) {}),
               std::logic_error);
  pipeline.DrainSinks();
}

// --- execution tracer integration (obs/exec_timeline.h) --------------------

TEST_F(EngineFixture, TracingNeverPerturbsDecisions) {
  // The determinism contract extends to the tracer: digests must be
  // bit-identical with tracing on and off, serial and staged alike.
  const auto digests = [&](std::size_t num_threads, bool threaded_sinks,
                           bool exec_trace) {
    PipelineOptions opts;
    opts.num_threads = num_threads;
    opts.threaded_sinks = threaded_sinks;
    opts.exec_trace = exec_trace;
    Pipeline pipeline = MakePipeline(opts);
    std::vector<std::uint64_t> out;
    for (int epoch = 0; epoch < 4; ++epoch) {
      out.push_back(pipeline.RunEpoch(state, demand)
                        .decision.provenance.CanonicalDigest());
    }
    pipeline.DrainSinks();
    return out;
  };
  const std::vector<std::uint64_t> baseline = digests(1, false, false);
  EXPECT_EQ(digests(1, false, true), baseline);
  EXPECT_EQ(digests(4, true, false), baseline);
  EXPECT_EQ(digests(4, true, true), baseline);
}

TEST_F(EngineFixture, TimelineNamesABottleneckEveryEpoch) {
  Pipeline pipeline = MakePipeline();
  ASSERT_NE(pipeline.exec_timeline(), nullptr);  // on by default
  for (int epoch = 0; epoch < 3; ++epoch) {
    (void)pipeline.RunEpoch(state, demand);
  }
  const auto recent = pipeline.exec_timeline()->Recent(3);
  ASSERT_EQ(recent.size(), 3u);
  for (const obs::EpochBreakdown& b : recent) {
    EXPECT_FALSE(b.bottleneck.empty());
    EXPECT_EQ(b.stages.size(), kEpochStageCount);
    EXPECT_GT(b.critical_path_ms, 0.0);
  }
}

TEST_F(EngineFixture, TracingDisabledLeavesNoTimeline) {
  PipelineOptions opts;
  opts.exec_trace = false;
  Pipeline pipeline = MakePipeline(opts);
  (void)pipeline.RunEpoch(state, demand);
  EXPECT_EQ(pipeline.exec_timeline(), nullptr);
}

// S3: a slow sink shows up as queue depth, backpressure, and delivery lag
// while running, and the depth gauge returns to zero after DrainSinks.
TEST_F(EngineFixture, SlowSinkRaisesDepthAndLagUntilDrained) {
  PipelineOptions opts;
  opts.threaded_sinks = true;
  obs::MetricsRegistry registry;
  opts.metrics = &registry;
  Pipeline pipeline = MakePipeline(opts);
  pipeline.AddEpochSink([](const EpochResult&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  for (int epoch = 0; epoch < 6; ++epoch) {
    (void)pipeline.RunEpoch(state, demand);
  }
  pipeline.DrainSinks();

  ASSERT_NE(pipeline.exec_timeline(), nullptr);
  const auto recent = pipeline.exec_timeline()->Recent(6);
  ASSERT_FALSE(recent.empty());
  std::uint32_t depth_max = 0;
  double lag_max = 0.0;
  double backpressure_max = 0.0;
  for (const obs::EpochBreakdown& b : recent) {
    depth_max = std::max(depth_max, b.sink_queue_depth_max);
    lag_max = std::max(lag_max, b.sink_lag_ms);
    backpressure_max = std::max(backpressure_max, b.backpressure_ms);
  }
  EXPECT_GE(depth_max, 1u);        // hand-offs were queued
  EXPECT_GT(lag_max, 0.0);         // delivery finished after the epoch
  EXPECT_GT(backpressure_max, 0.0);  // the control thread had to wait
  // Drained: nothing left in flight for the sink thread.
  const obs::Gauge* depth = registry.FindGauge("hodor_sink_queue_depth", {});
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value(), 0.0);
}

// S3: an undersized ring drops (oldest) events but never stalls or skews
// the epochs themselves, and the loss is visible in the dropped counter.
TEST_F(EngineFixture, TinyTraceRingDropsAreCountedNotFatal) {
  PipelineOptions opts;
  opts.threaded_sinks = true;
  opts.trace_ring_capacity = 1;  // rounds up to the 8-slot minimum
  obs::MetricsRegistry registry;
  opts.metrics = &registry;
  Pipeline pipeline = MakePipeline(opts);
  std::vector<std::uint64_t> seen;
  pipeline.AddEpochSink(
      [&](const EpochResult& r) { seen.push_back(r.epoch); });
  constexpr std::uint64_t kEpochs = 8;
  for (std::uint64_t i = 0; i < kEpochs; ++i) {
    (void)pipeline.RunEpoch(state, demand);
  }
  pipeline.DrainSinks();
  ASSERT_EQ(seen.size(), kEpochs);  // every epoch still delivered, in order
  for (std::uint64_t i = 0; i < kEpochs; ++i) EXPECT_EQ(seen[i], i);
  ASSERT_NE(pipeline.exec_timeline(), nullptr);
  EXPECT_GT(pipeline.exec_timeline()->dropped_total(), 0u);
  const obs::Counter* dropped =
      registry.FindCounter("hodor_trace_dropped_total", {});
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->value(), 0.0);
}

// --- fault-class stamping (observatory detection scoring) ------------------

TEST_F(EngineFixture, FaultClassesInferredFromRunEpochHooks) {
  Pipeline pipeline = MakePipeline();
  // Clean epoch: no classes.
  EXPECT_TRUE(pipeline.RunEpoch(state, demand).fault_classes.empty());
  // A snapshot mutator marks the epoch router-signal.
  const telemetry::SnapshotMutator snap_fault =
      [this](telemetry::NetworkSnapshot& snap) {
        snap.frame().SetTxRate(topo.LinkIds().front(), 0.0);
      };
  EXPECT_EQ(pipeline.RunEpoch(state, demand, snap_fault).fault_classes,
            (std::vector<std::string>{"router-signal"}));
  // Topology and drain hooks both read as aggregation faults.
  AggregationFaultHooks hooks;
  hooks.topology = [](std::vector<bool>&) {};
  EXPECT_EQ(pipeline.RunEpoch(state, demand, nullptr, hooks).fault_classes,
            (std::vector<std::string>{"aggregation"}));
  hooks = {};
  hooks.drain = [](std::vector<bool>&, std::vector<bool>&) {};
  EXPECT_EQ(pipeline.RunEpoch(state, demand, nullptr, hooks).fault_classes,
            (std::vector<std::string>{"aggregation"}));
  // A demand hook is an external-input fault; combined hooks stack classes.
  hooks = {};
  hooks.demand = [](flow::DemandMatrix&) {};
  EXPECT_EQ(pipeline.RunEpoch(state, demand, nullptr, hooks).fault_classes,
            (std::vector<std::string>{"external-input"}));
  hooks.topology = [](std::vector<bool>&) {};
  EXPECT_EQ(
      pipeline.RunEpoch(state, demand, snap_fault, hooks).fault_classes,
      (std::vector<std::string>{"router-signal", "aggregation",
                                "external-input"}));
}

TEST_F(EngineFixture, FaultStampOverridesInferenceUntilCleared) {
  obs::MetricsRegistry registry;
  PipelineOptions opts;
  opts.metrics = &registry;
  Pipeline pipeline = MakePipeline(opts);
  // The sticky stamp wins even when the hooks would infer differently.
  pipeline.SetFaultStamp({"router-signal"});
  AggregationFaultHooks hooks;
  hooks.demand = [](flow::DemandMatrix&) {};
  EXPECT_EQ(pipeline.RunEpoch(state, demand, nullptr, hooks).fault_classes,
            (std::vector<std::string>{"router-signal"}));
  const obs::Gauge* active = registry.FindGauge(
      "hodor_fault_active", {{"class", "router-signal"}});
  ASSERT_NE(active, nullptr);
  EXPECT_DOUBLE_EQ(active->value(), 1.0);
  // An empty stamp forces "clean" regardless of hooks.
  pipeline.SetFaultStamp({});
  EXPECT_TRUE(
      pipeline.RunEpoch(state, demand, nullptr, hooks).fault_classes.empty());
  EXPECT_DOUBLE_EQ(active->value(), 0.0);  // window closed → gauge zeroed
  // Clearing the stamp restores inference.
  pipeline.ClearFaultStamp();
  EXPECT_EQ(pipeline.RunEpoch(state, demand, nullptr, hooks).fault_classes,
            (std::vector<std::string>{"external-input"}));
  EXPECT_DOUBLE_EQ(active->value(), 0.0);  // only external-input active now
  const obs::Gauge* external = registry.FindGauge(
      "hodor_fault_active", {{"class", "external-input"}});
  ASSERT_NE(external, nullptr);
  EXPECT_DOUBLE_EQ(external->value(), 1.0);
}

TEST_F(EngineFixture, FaultStampNeverTouchesTheDecisionDigest) {
  // Stamping is observability-only: the canonical decision text (and hence
  // the digest the replay/equivalence gates compare) must be bit-identical
  // with and without a stamp.
  Pipeline unstamped = MakePipeline();
  Pipeline stamped = MakePipeline();
  stamped.SetFaultStamp({"router-signal", "external-input"});
  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochResult a = unstamped.RunEpoch(state, demand);
    const EpochResult b = stamped.RunEpoch(state, demand);
    EXPECT_EQ(a.decision.provenance.CanonicalDigest(),
              b.decision.provenance.CanonicalDigest())
        << "epoch " << epoch;
    EXPECT_EQ(testing::DecisionText(a.decision.provenance),
              testing::DecisionText(b.decision.provenance));
    EXPECT_TRUE(a.fault_classes.empty());
    EXPECT_EQ(b.fault_classes.size(), 2u);
  }
}

}  // namespace
}  // namespace hodor::controlplane
