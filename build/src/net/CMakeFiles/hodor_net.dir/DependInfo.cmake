
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph_algorithms.cc" "src/net/CMakeFiles/hodor_net.dir/graph_algorithms.cc.o" "gcc" "src/net/CMakeFiles/hodor_net.dir/graph_algorithms.cc.o.d"
  "/root/repo/src/net/serialization.cc" "src/net/CMakeFiles/hodor_net.dir/serialization.cc.o" "gcc" "src/net/CMakeFiles/hodor_net.dir/serialization.cc.o.d"
  "/root/repo/src/net/state.cc" "src/net/CMakeFiles/hodor_net.dir/state.cc.o" "gcc" "src/net/CMakeFiles/hodor_net.dir/state.cc.o.d"
  "/root/repo/src/net/topologies.cc" "src/net/CMakeFiles/hodor_net.dir/topologies.cc.o" "gcc" "src/net/CMakeFiles/hodor_net.dir/topologies.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/hodor_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/hodor_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
