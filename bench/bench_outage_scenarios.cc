// E5 — the outage-scenario replay: one row per §2 incident class.
//
// Backs the paper's headline claims: incorrect inputs cause major outages
// while the controller operates correctly (impact column), and "this
// methodology could have averted the majority of the outages that stem
// from incorrect inputs in our dataset" (detection/averted columns).
//
// Three arms per scenario: no validation, Hodor (fallback policy), and an
// oracle controller fed honest inputs. "averted" = Hodor's satisfaction
// recovers to within 1% of the oracle's.
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "faults/scenario_catalog.h"
#include "util/logging.h"
#include "util/strings.h"

int main() {
  using namespace hodor;
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);

  bench::PrintHeader(
      "E5", "§1/§2 outage replay (one scenario per incident class)",
      "abilene, gravity TM at 0.35 max-util (seed 77), scenario seed 5, "
      "fallback-to-last-good policy");

  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);
  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  core::ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;

  util::TablePrinter table({"scenario", "class", "verdict", "sat: none",
                            "sat: hodor", "sat: oracle", "averted"});
  std::size_t input_faults = 0, detected_or_warned = 0, averted = 0;

  for (const faults::OutageScenario& s : catalog.scenarios()) {
    const core::ScenarioRunResult r =
        core::RunScenario(topo, s, demand, opts);
    std::string verdict = r.detected ? "DETECTED" : (r.warned ? "warned" : "-");
    if (!s.input_fault && s.expect_hardening_flags && r.flagged_rates > 0) {
      verdict = "hardened (" + std::to_string(r.flagged_rates) + " flags)";
    }
    const bool was_averted =
        r.with_hodor.demand_satisfaction >=
        r.oracle.demand_satisfaction - 0.01;
    if (s.input_fault) {
      ++input_faults;
      if (r.detected || r.warned) ++detected_or_warned;
      if (was_averted) ++averted;
    }
    table.AddRowValues(
        s.id, FaultClassName(s.fault_class), verdict,
        util::FormatPercent(r.no_validation.demand_satisfaction, 1),
        util::FormatPercent(r.with_hodor.demand_satisfaction, 1),
        util::FormatPercent(r.oracle.demand_satisfaction, 1),
        s.input_fault ? (was_averted ? "yes" : "no") : "n/a");
  }
  std::cout << table.ToString();
  std::cout << "\nsummary: " << detected_or_warned << "/" << input_faults
            << " input-fault scenarios detected or warned; " << averted << "/"
            << input_faults
            << " fully averted by the fallback policy (paper: 'could have "
               "averted the majority').\n"
            << "Scenarios where the network itself changed (dead routers) "
               "are detected but need operator action, matching §3's "
               "alert-and-intervene integration.\n";
  return 0;
}
