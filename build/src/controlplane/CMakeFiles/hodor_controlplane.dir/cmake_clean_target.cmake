file(REMOVE_RECURSE
  "libhodor_controlplane.a"
)
