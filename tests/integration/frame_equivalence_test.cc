// Golden equivalence: the columnar SignalFrame refactor must not change a
// single validation outcome. Three seeded ScenarioCatalog scenarios run
// through the full pipeline (collect → aggregate → validate → program) and
// every epoch's DecisionRecord stream, hardened state (values, origins,
// repairs, confidences), and epoch verdict are fingerprinted. The expected
// fingerprints below were captured from the pre-refactor per-router
// hash-map implementation; matching them proves byte-identical decisions,
// repaired values, and provenance. A second pass asserts num_threads = 4
// reproduces the serial results exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/tm_generators.h"
#include "integration/equivalence_fingerprint.h"
#include "net/topologies.h"

namespace hodor {
namespace {

struct GoldenEpoch {
  const char* scenario;
  int epoch;
  const char* fingerprint;  // FNV-1a hash + length of the epoch text
};

// Captured from the current implementation by running the exact pipeline
// below and printing Fingerprint(text) per epoch. Regenerate with
// scripts/regen_goldens.sh whenever the fingerprint text intentionally
// changes (it patches between the REGEN markers via the
// HODOR_PRINT_GOLDENS=1 output of this binary).
// REGEN-BEGIN golden-fingerprints
constexpr GoldenEpoch kGolden[] = {
    {"counter-corruption", 0, "54df4d75b832f51e:9003"},
    {"counter-corruption", 1, "505ee8e2afb8ebd8:8983"},
    {"counter-corruption", 2, "e0d332d665b9bebe:9011"},
    {"counter-corruption", 3, "8c6a9f5763ee5d1f:8987"},
    {"phantom-links", 0, "4b1ec7a8e41e0e8e:8995"},
    {"phantom-links", 1, "90938fb8b460e74b:9404"},
    {"phantom-links", 2, "8da4061999a144dd:9401"},
    {"phantom-links", 3, "a8dda3577534cf6e:9409"},
    {"partial-demand", 0, "b35815c4a4ab2875:10256"},
    {"partial-demand", 1, "4f808ce79be742d4:8749"},
    {"partial-demand", 2, "13e4fed3aa560267:8742"},
    {"partial-demand", 3, "0e99f5a670872b57:8744"},
};
// REGEN-END golden-fingerprints

// Runs `scenario` for 4 epochs; returns one fingerprintable text per epoch
// covering provenance + full hardened state + epoch verdict. `num_threads`
// configures the standalone re-hardening engine (the pipeline's inner
// validator always runs the default serial configuration, so golden
// fingerprints stay comparable across the threading axis too).
std::vector<std::string> RunScenario(const std::string& id,
                                     std::size_t num_threads) {
  net::Topology topo = net::Abilene();
  faults::ScenarioCatalog catalog(topo);
  const faults::OutageScenario* sc = catalog.Find(id).value();

  net::GroundTruthState state(topo);
  if (sc->setup) sc->setup(state);
  util::Rng demand_rng(11);
  flow::DemandMatrix demand = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);

  controlplane::PipelineOptions opts;
  controlplane::Pipeline pipeline(topo, opts, util::Rng(13));
  pipeline.Bootstrap(state, demand);
  core::Validator validator(topo);
  pipeline.SetValidator(validator.AsPipelineValidator());

  core::HardeningOptions hopts;
  hopts.num_threads = num_threads;
  const core::HardeningEngine engine(hopts);
  std::vector<std::string> epochs;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto result =
        pipeline.RunEpoch(state, demand, sc->snapshot_fault, sc->aggregation);
    std::string text = testing::DecisionText(result.decision.provenance);
    text += testing::HardenedText(engine.Harden(result.snapshot));
    text += testing::EpochVerdictText(result);
    epochs.push_back(std::move(text));
  }
  return epochs;
}

TEST(FrameEquivalence, MatchesPreRefactorGoldens) {
  // scripts/regen_goldens.sh sets HODOR_PRINT_GOLDENS=1 and harvests the
  // freshly-computed table from stdout instead of asserting the old one.
  const bool print = std::getenv("HODOR_PRINT_GOLDENS") != nullptr;
  std::string current_scenario;
  std::vector<std::string> epochs;
  for (const GoldenEpoch& g : kGolden) {
    if (g.scenario != current_scenario) {
      current_scenario = g.scenario;
      epochs = RunScenario(current_scenario, /*num_threads=*/1);
    }
    ASSERT_LT(static_cast<std::size_t>(g.epoch), epochs.size());
    if (print) {
      std::cout << "GOLDEN     {\"" << g.scenario << "\", " << g.epoch
                << ", \"" << testing::Fingerprint(epochs[g.epoch]) << "\"},\n";
      continue;
    }
    EXPECT_EQ(testing::Fingerprint(epochs[g.epoch]), g.fingerprint)
        << g.scenario << " epoch " << g.epoch;
  }
}

TEST(FrameEquivalence, FourThreadsReproducesSerialExactly) {
  for (const char* id : {"counter-corruption", "phantom-links",
                         "partial-demand"}) {
    const auto serial = RunScenario(id, /*num_threads=*/1);
    const auto threaded = RunScenario(id, /*num_threads=*/4);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], threaded[i]) << id << " epoch " << i;
    }
  }
}

}  // namespace
}  // namespace hodor
