file(REMOVE_RECURSE
  "CMakeFiles/controlplane_pipeline_test.dir/controlplane/pipeline_test.cc.o"
  "CMakeFiles/controlplane_pipeline_test.dir/controlplane/pipeline_test.cc.o.d"
  "controlplane_pipeline_test"
  "controlplane_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controlplane_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
