// E2 — §4.1 preliminary evaluation: detection accuracy on perturbed
// Abilene demand matrices.
//
// Paper (τ_e = 0.02): "our approach detects 99.2% of perturbed matrices
// with two zeroed-out (missing) values out of 144, and 100% of perturbed
// matrices with three or more zeroed-out values."
//
// Per trial: a seeded gravity TM on the real Abilene topology (12 nodes ->
// 144-entry matrix), routed and simulated; honest telemetry is hardened;
// k entries of the demand *input* are zeroed; detection = any of the 2·v
// invariants fires. We report detection rate over 1000 trials per k,
// plus the false-positive rate on unperturbed matrices.
#include <iostream>

#include "bench_common.h"
#include "core/demand_check.h"
#include "faults/demand_perturbations.h"
#include "util/strings.h"

int main() {
  using namespace hodor;
  constexpr int kTrials = 1000;
  constexpr std::uint64_t kBaseSeed = 1000;
  constexpr double kTauE = 0.02;

  bench::PrintHeader(
      "E2", "§4.1 preliminary evaluation (perturbed Abilene demand)",
      "abilene (12 nodes, 144-entry D), gravity TMs, tau_e=0.02, "
      "k zeroed entries in {0..6}, trials=1000/row, base_seed=1000");

  core::DemandCheckOptions check_opts;
  check_opts.tau_e = kTauE;

  util::TablePrinter table({"k zeroed", "detected", "rate", "paper",
                            "mean violations"});
  const auto copts = bench::DefaultCollector();

  for (std::size_t k = 0; k <= 6; ++k) {
    int detected = 0;
    double violation_sum = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const std::uint64_t seed = kBaseSeed + trial;
      bench::Trial t(net::Abilene(), seed, /*max_util=*/0.5, copts);
      const core::HardenedState hardened =
          core::HardeningEngine().Harden(t.snapshot);

      flow::DemandMatrix input = t.demand;
      if (k > 0) {
        util::Rng prng(seed ^ 0xabcdef);
        input = faults::ZeroEntries(t.demand, k, prng).matrix;
      }
      const auto result =
          core::CheckDemand(t.topo, hardened, input, check_opts);
      if (!result.ok()) ++detected;
      violation_sum += static_cast<double>(result.violations.size());
    }
    const double rate = static_cast<double>(detected) / kTrials;
    std::string paper = "-";
    if (k == 0) paper = "0% (implied)";
    if (k == 2) paper = "99.2%";
    if (k >= 3) paper = "100%";
    table.AddRowValues(k, detected, util::FormatPercent(rate, 1), paper,
                       util::FormatDouble(violation_sum / kTrials, 2));
  }
  std::cout << table.ToString();
  std::cout << "\nk=0 row is the false-positive rate under measurement "
               "jitter (0.5% counters, 0.2% end-host demand noise).\n";
  return 0;
}
