#include "controlplane/pipeline.h"

#include <utility>

#include "controlplane/epoch_engine.h"
#include "obs/exec_timeline.h"

namespace hodor::controlplane {

Pipeline::Pipeline(const net::Topology& topo, PipelineOptions opts,
                   util::Rng rng)
    : engine_(std::make_unique<EpochEngine>(topo, std::move(opts), rng)) {}

Pipeline::~Pipeline() = default;
Pipeline::Pipeline(Pipeline&&) noexcept = default;
Pipeline& Pipeline::operator=(Pipeline&&) noexcept = default;

void Pipeline::Bootstrap(const net::GroundTruthState& state,
                         const flow::DemandMatrix& true_demand) {
  engine_->Bootstrap(state, true_demand);
}

void Pipeline::SetValidator(InputValidatorFn validator) {
  engine_->SetValidator(std::move(validator));
}

void Pipeline::SetDeltaValidator(DeltaInputValidatorFn validator) {
  engine_->SetDeltaValidator(std::move(validator));
}

void Pipeline::AddEpochSink(EpochSinkFn sink) {
  engine_->AddEpochSink(std::move(sink));
}

EpochResult Pipeline::RunEpoch(const net::GroundTruthState& state,
                               const flow::DemandMatrix& true_demand,
                               const telemetry::SnapshotMutator& snapshot_fault,
                               const AggregationFaultHooks& aggregation_faults) {
  return engine_->RunEpoch(state, true_demand, snapshot_fault,
                           aggregation_faults);
}

void Pipeline::SetFaultStamp(std::vector<std::string> classes) {
  engine_->SetFaultStamp(std::move(classes));
}

void Pipeline::ClearFaultStamp() { engine_->ClearFaultStamp(); }

void Pipeline::DrainSinks() { engine_->DrainSinks(); }

obs::ExecTimeline* Pipeline::exec_timeline() { return engine_->exec_timeline(); }

bool Pipeline::WriteExecTrace(const std::string& path) {
  obs::ExecTimeline* timeline = engine_->exec_timeline();
  if (timeline == nullptr) return false;
  return timeline->WritePerfettoFile(path);
}

const flow::RoutingPlan& Pipeline::installed_plan() const {
  return engine_->installed_plan();
}

const std::optional<ControllerInput>& Pipeline::last_good_input() const {
  return engine_->last_good_input();
}

}  // namespace hodor::controlplane
