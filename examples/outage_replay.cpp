// Outage replay: re-create any incident from the §2 catalog and compare
// what happens with and without input validation.
//
// "Replay" here means re-running a *synthetic scenario script* from
// faults::ScenarioCatalog — not replaying a recorded run. For bit-exact
// replay of actual recorded epochs (the flight-recorder logs written via
// HODOR_RECORD_PATH or replay::PipelineRecorder), use
// examples/hodor_replay; see README "Recording and replaying runs".
//
//   ./build/examples/outage_replay                  # list scenarios
//   ./build/examples/outage_replay partial-demand   # replay one
//   ./build/examples/outage_replay all              # replay everything
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace hodor;

void Replay(const net::Topology& topo, const faults::OutageScenario& s,
            const flow::DemandMatrix& demand) {
  std::cout << "\n=== " << s.id << " (" << FaultClassName(s.fault_class)
            << ", " << s.paper_ref << ") ===\n"
            << s.description << "\n";
  core::ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;
  const core::ScenarioRunResult r = core::RunScenario(topo, s, demand, opts);

  std::cout << "\n  validator verdict : " << r.detection_summary;
  if (r.warned) std::cout << " (+drain warnings)";
  if (r.flagged_rates > 0) {
    std::cout << " [" << r.flagged_rates << " counter pairs flagged]";
  }
  std::cout << "\n  expected          : " << s.expected_detection << "\n\n";
  util::TablePrinter table({"arm", "satisfaction", "max util", "congested",
                            "dropped Gbps"});
  auto row = [&](const char* name, const flow::NetworkMetrics& m) {
    table.AddRowValues(name, util::FormatPercent(m.demand_satisfaction, 2),
                       util::FormatDouble(m.max_link_utilization, 2),
                       m.congested_link_count,
                       util::FormatDouble(m.total_dropped_gbps, 1));
  };
  row("no validation", r.no_validation);
  row("hodor (fallback)", r.with_hodor);
  row("oracle (honest inputs)", r.oracle);
  std::cout << table.ToString();
  if (r.fallback_used) {
    std::cout << "  (hodor fell back to the last accepted input)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);

  const std::string arg = argc > 1 ? argv[1] : "";
  if (arg.empty()) {
    std::cout << "usage: outage_replay <scenario-id|all>\n\nscenarios:\n";
    for (const auto& s : catalog.scenarios()) {
      std::cout << "  " << s.id << std::string(26 - s.id.size(), ' ')
                << s.paper_ref << "\n";
    }
    return 0;
  }

  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);

  if (arg == "all") {
    for (const auto& s : catalog.scenarios()) Replay(topo, s, demand);
    return 0;
  }
  auto found = catalog.Find(arg);
  if (!found.ok()) {
    std::cerr << found.status().ToString() << "\n";
    return 1;
  }
  Replay(topo, *found.value(), demand);
  return 0;
}
