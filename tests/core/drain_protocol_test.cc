#include "core/drain_protocol.h"

#include <gtest/gtest.h>

#include "core/hardening.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;

struct DrainProtocolFixture : ::testing::Test {
  DrainProtocolFixture() : net(net::Abilene(), 41), ledger(net.topo) {
    link = net.topo.LinkIds()[0];
  }

  HardenedState Harden() {
    telemetry::CollectorOptions copts;
    copts.probes.false_loss_rate = 0.0;
    return HardeningEngine().Harden(net.Snapshot(1, nullptr, copts));
  }

  testing::HealthyNetwork net;
  DrainLedger ledger;
  LinkId link;
};

TEST_F(DrainProtocolFixture, EmptyLedgerValidates) {
  const auto r = ValidateDrainLedger(net.topo, ledger, Harden());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.validated_announcements, 0u);
  EXPECT_EQ(ledger.announcement_count(), 0u);
}

TEST_F(DrainProtocolFixture, SymmetricMaintenanceDrainValidates) {
  ledger.AnnounceBoth(link, DrainReason::kMaintenance);
  EXPECT_TRUE(ledger.PhysicalLinkDrained(link));
  const auto r = ValidateDrainLedger(net.topo, ledger, Harden());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.validated_announcements, 1u);
}

TEST_F(DrainProtocolFixture, AsymmetricAnnouncementViolates) {
  ledger.Announce(link, DrainReason::kMaintenance);  // one end only
  const auto r = ValidateDrainLedger(net.topo, ledger, Harden());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind,
            DrainProtocolViolationKind::kAsymmetricAnnouncement);
  EXPECT_NE(r.violations[0].ToString(net.topo).find("asymmetric"),
            std::string::npos);
}

TEST_F(DrainProtocolFixture, FaultVsMaintenanceReasonMismatch) {
  ledger.Announce(link, DrainReason::kFaultyNeighbor);
  ledger.Announce(net.topo.link(link).reverse, DrainReason::kMaintenance);
  const auto r = ValidateDrainLedger(net.topo, ledger, Harden());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind,
            DrainProtocolViolationKind::kReasonMismatch);
}

TEST_F(DrainProtocolFixture, MaintenanceFlavoursAreCompatible) {
  ledger.Announce(link, DrainReason::kMaintenance);
  ledger.Announce(net.topo.link(link).reverse,
                  DrainReason::kNodeMaintenance);
  EXPECT_TRUE(ValidateDrainLedger(net.topo, ledger, Harden()).ok());
}

TEST_F(DrainProtocolFixture, FaultDrainOnHealthyLinkRefuted) {
  // Automation claims the link is sick; probes and statuses say it is
  // confidently up — the paper's validation of reason-annotated drains.
  ledger.AnnounceBoth(link, DrainReason::kFaultyNeighbor);
  const auto r = ValidateDrainLedger(net.topo, ledger, Harden());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind,
            DrainProtocolViolationKind::kUnsubstantiatedFault);
}

TEST_F(DrainProtocolFixture, FaultDrainOnActuallySickLinkAccepted) {
  net.state.SetLinkDataplaneOk(link, false);  // really broken
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  ledger.AnnounceBoth(link, DrainReason::kAutomation);
  const auto r = ValidateDrainLedger(net.topo, ledger, Harden());
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? std::string()
                              : r.violations[0].ToString(net.topo));
}

TEST_F(DrainProtocolFixture, MaintenanceDrainOnHealthyLinkAccepted) {
  // Pre-emptive drains of healthy links are the legitimate case that made
  // §4.3 case 2 ambiguous; with reasons they validate cleanly.
  ledger.AnnounceBoth(link, DrainReason::kMaintenance);
  EXPECT_TRUE(ValidateDrainLedger(net.topo, ledger, Harden()).ok());
}

TEST_F(DrainProtocolFixture, NodeDrainDrainsAllLinksSymmetrically) {
  const NodeId victim = net.topo.FindNode("IPLSng").value();
  ledger.AnnounceNodeDrain(victim);
  EXPECT_TRUE(ledger.NodeFullyDrained(net.topo, victim));
  EXPECT_EQ(ledger.announcement_count(),
            2 * net.topo.OutLinks(victim).size());
  EXPECT_TRUE(ValidateDrainLedger(net.topo, ledger, Harden()).ok());
}

TEST_F(DrainProtocolFixture, NodeNotFullyDrainedWhenOneLinkMissing) {
  const NodeId victim = net.topo.FindNode("IPLSng").value();
  ledger.AnnounceNodeDrain(victim);
  // Remove one far-end announcement.
  DrainLedger partial(net.topo);
  for (LinkId e : net.topo.OutLinks(victim)) {
    partial.AnnounceBoth(e, DrainReason::kNodeMaintenance);
  }
  EXPECT_TRUE(partial.NodeFullyDrained(net.topo, victim));
  // A fresh ledger missing the reverse of the first link:
  DrainLedger missing(net.topo);
  const auto& out = net.topo.OutLinks(victim);
  for (std::size_t i = 0; i < out.size(); ++i) {
    missing.Announce(out[i], DrainReason::kNodeMaintenance);
    if (i > 0) {
      missing.Announce(net.topo.link(out[i]).reverse,
                       DrainReason::kNodeMaintenance);
    }
  }
  EXPECT_FALSE(missing.NodeFullyDrained(net.topo, victim));
}

TEST_F(DrainProtocolFixture, RefuteConfidenceKnob) {
  ledger.AnnounceBoth(link, DrainReason::kAutomation);
  DrainProtocolOptions strict;
  strict.refute_confidence = 0.1;  // refute aggressively
  EXPECT_FALSE(ValidateDrainLedger(net.topo, ledger, Harden(), strict).ok());
  DrainProtocolOptions lenient;
  lenient.refute_confidence = 1.1;  // never refute
  EXPECT_TRUE(ValidateDrainLedger(net.topo, ledger, Harden(), lenient).ok());
}

TEST(DrainReasonName, AllNamed) {
  EXPECT_STREQ(DrainReasonName(DrainReason::kMaintenance), "maintenance");
  EXPECT_STREQ(DrainReasonName(DrainReason::kNodeMaintenance),
               "node-maintenance");
  EXPECT_STREQ(DrainReasonName(DrainReason::kFaultyNeighbor),
               "faulty-neighbor");
  EXPECT_STREQ(DrainReasonName(DrainReason::kAutomation), "automation");
}

}  // namespace
}  // namespace hodor::core
