// Active neighbor probes — the paper's "manufactured signals" (R4).
//
// A probe sends traffic across one directed link and reports whether it got
// through. Unlike the optical status signal, a probe exercises the
// dataplane, so it fails on links whose interface is up but whose dataplane
// is broken (§4.2). Probes are lightweight apps running on the routers
// themselves (the paper cites FBOSS-style on-box agents), independent of
// the telemetry export path.
#pragma once

#include <vector>

#include "net/state.h"
#include "net/topology.h"
#include "telemetry/signals.h"
#include "util/rng.h"

namespace hodor::telemetry {

struct ProbeOptions {
  // Probability that a single probe is lost despite a healthy link
  // (congestion, QoS). Probes are retried to suppress this noise.
  double false_loss_rate = 0.01;
  int attempts = 3;  // a link counts as probe-up if any attempt succeeds
};

// Probes every directed link. A probe succeeds iff the link is physically
// usable (up + dataplane healthy + both routers forwarding), modulo the
// false-loss noise above.
std::vector<ProbeResult> ProbeAllLinks(const net::Topology& topo,
                                       const net::GroundTruthState& state,
                                       const ProbeOptions& opts,
                                       util::Rng& rng);

// Reuse variant: clears and refills `out` (capacity is pre-sized to the
// link count and survives across rounds).
void ProbeAllLinksInto(const net::Topology& topo,
                       const net::GroundTruthState& state,
                       const ProbeOptions& opts, util::Rng& rng,
                       std::vector<ProbeResult>& out);

}  // namespace hodor::telemetry
