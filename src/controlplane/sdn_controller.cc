#include "controlplane/sdn_controller.h"

namespace hodor::controlplane {

flow::RoutingPlan SdnController::ComputeRouting(
    const ControllerInput& input) const {
  const auto filter = input.UsableFilter(*topo_);
  switch (opts_.algorithm) {
    case RoutingAlgorithm::kShortestPath:
      return flow::ShortestPathRouting(*topo_, input.demand, filter);
    case RoutingAlgorithm::kEcmp:
      return flow::EcmpRouting(*topo_, input.demand, filter,
                               opts_.ecmp_width);
    case RoutingAlgorithm::kGreedyTe:
      break;
  }
  return flow::GreedyTeRouting(*topo_, input.demand, filter, opts_.te);
}

}  // namespace hodor::controlplane
