// Change tracking on the columnar signal plane (DESIGN.md §12): dirty
// bitsets, the one-sided dirty contract, and DiffAgainst exactness — the
// foundations the incremental validation path stands on.
#include <gtest/gtest.h>

#include "net/topologies.h"
#include "telemetry/signal_frame.h"
#include "telemetry/snapshot.h"

namespace hodor::telemetry {
namespace {

using net::LinkId;
using net::NodeId;

class SignalFrameDeltaTest : public ::testing::Test {
 protected:
  SignalFrameDeltaTest()
      : topo_(net::Figure3Triangle()), base_(topo_), cur_(topo_) {}

  FrameDelta Diff() {
    FrameDelta delta;
    cur_.DiffAgainst(base_, delta);
    return delta;
  }

  net::Topology topo_;
  SignalFrame base_;
  SignalFrame cur_;
};

TEST_F(SignalFrameDeltaTest, FreshAndClearedFramesHaveNoDirtyBits) {
  EXPECT_EQ(cur_.DirtySignalCount(), 0u);
  cur_.SetTxRate(LinkId(0), 1.0);
  EXPECT_GT(cur_.DirtySignalCount(), 0u);
  cur_.Clear();
  EXPECT_EQ(cur_.DirtySignalCount(), 0u);
}

TEST_F(SignalFrameDeltaTest, SettersAndClearersMarkDirty) {
  const NodeId a = topo_.FindNode("A").value();
  cur_.SetTxRate(LinkId(0), 1.0);
  EXPECT_TRUE(cur_.tx_dirty().Test(0));
  // Overwriting stays one dirty bit, not two.
  cur_.SetTxRate(LinkId(0), 2.0);
  EXPECT_EQ(cur_.tx_dirty().count(), 1u);
  // Clearing a signal is a mutation too: presence flips are changes.
  cur_.ClearRxRate(LinkId(1));
  EXPECT_TRUE(cur_.rx_dirty().Test(1));
  cur_.SetExtInRate(a, 3.0);
  EXPECT_TRUE(cur_.ext_in_dirty().Test(a.value()));
}

TEST_F(SignalFrameDeltaTest, FillFastPathDefersDirtyToHonestCommit) {
  for (LinkId e : topo_.LinkIds()) {
    cur_.FillTxRate(e, 1.0);
    cur_.FillRxRate(e, 1.0);
  }
  // Fill* writes values only: no presence, no dirty marks (the whole point
  // of the shard-safe fast path).
  EXPECT_EQ(cur_.PresentSignalCount(), 0u);
  EXPECT_EQ(cur_.DirtySignalCount(), 0u);
  cur_.MarkHonestPresence();
  // The serial commit carries both: whatever became present became dirty.
  EXPECT_GT(cur_.PresentSignalCount(), 0u);
  EXPECT_EQ(cur_.DirtySignalCount(), cur_.PresentSignalCount());
}

TEST_F(SignalFrameDeltaTest, HonestCommitKeepsEarlierDirtyMarks) {
  // A slot dirtied before the bulk commit (e.g. a targeted Clear) must stay
  // dirty afterwards — the commit is additive, never a reset.
  cur_.ClearStatus(LinkId(0));
  ASSERT_TRUE(cur_.status_dirty().Test(0));
  cur_.MarkHonestPresence();
  EXPECT_TRUE(cur_.status_dirty().Test(0));
}

TEST_F(SignalFrameDeltaTest, DiffReportsValueChangesAndFiltersUnchanged) {
  base_.SetTxRate(LinkId(0), 1.0);
  base_.SetTxRate(LinkId(1), 5.0);
  cur_.SetTxRate(LinkId(0), 2.0);  // changed
  cur_.SetTxRate(LinkId(1), 5.0);  // dirty, but bitwise-equal: filtered
  const FrameDelta delta = Diff();
  EXPECT_FALSE(delta.full);
  EXPECT_TRUE(delta.tx.Test(0));
  EXPECT_FALSE(delta.tx.Test(1));
  EXPECT_EQ(delta.ChangedSignalCount(), 1u);
}

TEST_F(SignalFrameDeltaTest, DiffReportsPresenceFlipsBothWays) {
  base_.SetRxRate(LinkId(2), 7.0);  // present -> absent in cur
  cur_.SetStatus(LinkId(3), LinkStatus::kUp);  // absent -> present
  const FrameDelta delta = Diff();
  EXPECT_TRUE(delta.rx.Test(2));
  EXPECT_TRUE(delta.status.Test(3));
  EXPECT_EQ(delta.ChangedSignalCount(), 2u);
}

TEST_F(SignalFrameDeltaTest, DiffDistinguishesSignedZero) {
  // Digests render doubles with %.17g, where -0 and +0 differ — so the
  // value compare must be bitwise, not arithmetic.
  const NodeId a = topo_.FindNode("A").value();
  base_.SetDroppedRate(a, 0.0);
  cur_.SetDroppedRate(a, -0.0);
  const FrameDelta delta = Diff();
  EXPECT_TRUE(delta.dropped.Test(a.value()));
}

TEST_F(SignalFrameDeltaTest, UntouchedSlotsNeverReported) {
  // The one-sided contract: a slot nobody touched is clean, and DiffAgainst
  // must trust that without inspecting its value.
  const FrameDelta delta = Diff();
  EXPECT_FALSE(delta.full);
  EXPECT_EQ(delta.ChangedSignalCount(), 0u);
}

TEST_F(SignalFrameDeltaTest, MarkAllDirtyDegradesToExactFullCompare) {
  base_.SetTxRate(LinkId(0), 1.0);
  cur_.SetTxRate(LinkId(0), 1.0);
  cur_.SetTxRate(LinkId(1), 9.0);
  cur_.MarkAllDirty();  // the decoded-frame fallback
  const FrameDelta delta = Diff();
  // Unpruned but still exact: only the real change survives the compare.
  EXPECT_FALSE(delta.tx.Test(0));
  EXPECT_TRUE(delta.tx.Test(1));
  EXPECT_EQ(delta.ChangedSignalCount(), 1u);
}

TEST_F(SignalFrameDeltaTest, UnresponsiveRouterDirtiesItsDroppedReport) {
  const NodeId a = topo_.FindNode("A").value();
  base_.SetExtInRate(a, 4.0);
  cur_.SetExtInRate(a, 4.0);
  cur_.MarkUnresponsive(a);  // drops the report: presence flips are changes
  const FrameDelta delta = Diff();
  EXPECT_TRUE(delta.ext_in.Test(a.value()));
}

TEST_F(SignalFrameDeltaTest, FillCommitPathDiffsIdenticallyToSetters) {
  // The parallel collection fast path (Fill* + MarkHonestPresence) must be
  // dirty- and diff-identical to the serial owner-gated path.
  SignalFrame serial(topo_);
  for (LinkId e : topo_.LinkIds()) {
    serial.SetTxRate(e, 1.5 * e.value());
    cur_.FillTxRate(e, 1.5 * e.value());
  }
  for (LinkId e : topo_.LinkIds()) {
    serial.SetRxRate(e, 1.5 * e.value());
    cur_.FillRxRate(e, 1.5 * e.value());
    serial.SetStatus(e, LinkStatus::kUp);
    cur_.FillStatus(e, LinkStatus::kUp);
    serial.SetLinkDrain(e, false);
    cur_.FillLinkDrain(e, false);
  }
  for (const net::Node& n : topo_.nodes()) {
    serial.SetNodeDrained(n.id, false);
    cur_.FillNodeDrained(n.id, false);
    serial.SetDroppedRate(n.id, 0.0);
    cur_.FillDroppedRate(n.id, 0.0);
    if (n.has_external_port) {
      serial.SetExtInRate(n.id, 2.0);
      cur_.FillExtInRate(n.id, 2.0);
      serial.SetExtOutRate(n.id, 3.0);
      cur_.FillExtOutRate(n.id, 3.0);
    }
  }
  cur_.MarkHonestPresence();
  EXPECT_EQ(cur_.PresentSignalCount(), serial.PresentSignalCount());
  EXPECT_EQ(cur_.DirtySignalCount(), serial.DirtySignalCount());
  FrameDelta via_fill;
  FrameDelta via_set;
  cur_.DiffAgainst(base_, via_fill);
  serial.DiffAgainst(base_, via_set);
  EXPECT_EQ(via_fill.ChangedSignalCount(), via_set.ChangedSignalCount());
  for (LinkId e : topo_.LinkIds()) {
    EXPECT_EQ(via_fill.tx.Test(e.value()), via_set.tx.Test(e.value()));
    EXPECT_EQ(via_fill.rx.Test(e.value()), via_set.rx.Test(e.value()));
  }
}

TEST(SnapshotDeltaTest, ProbeTransitionsCountAsChanges) {
  const net::Topology topo = net::Figure3Triangle();
  NetworkSnapshot base(topo, 1);
  NetworkSnapshot cur(topo, 2);
  base.SetProbeResults({ProbeResult{LinkId(0), true}});
  cur.SetProbeResults(
      {ProbeResult{LinkId(0), false},   // flipped outcome
       ProbeResult{LinkId(1), true}});  // not-probed -> probed
  FrameDelta delta;
  cur.DiffAgainst(base, delta);
  EXPECT_FALSE(delta.full);
  EXPECT_EQ(delta.base_epoch, 1u);
  EXPECT_EQ(delta.target_epoch, 2u);
  EXPECT_TRUE(delta.probe.Test(0));
  EXPECT_TRUE(delta.probe.Test(1));
  EXPECT_FALSE(delta.probe.Test(2));
}

TEST(SnapshotDeltaTest, DistinctTopologyObjectsForceFullDelta) {
  const net::Topology topo_a = net::Figure3Triangle();
  const net::Topology topo_b = net::Figure3Triangle();
  NetworkSnapshot base(topo_a, 1);
  NetworkSnapshot cur(topo_b, 2);
  FrameDelta delta;
  delta.full = false;
  cur.DiffAgainst(base, delta);
  EXPECT_TRUE(delta.full);
}

TEST(FrameDeltaTest, ScalarChangeSummary) {
  FrameDelta delta;
  delta.Reset(/*links=*/6, /*nodes=*/3);
  EXPECT_FALSE(delta.AnyScalarChanges());
  delta.status.Set(4);
  EXPECT_FALSE(delta.AnyScalarChanges());  // link column, not a node scalar
  delta.ext_out.Set(1);
  EXPECT_TRUE(delta.AnyScalarChanges());
  EXPECT_EQ(delta.ChangedSignalCount(), 2u);
}

}  // namespace
}  // namespace hodor::telemetry
