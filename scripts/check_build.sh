#!/bin/sh
# Tier-1 verification plus a strict-warning pass over the observability
# layer (run from anywhere).
#
#   1. Configure + build + ctest — the repo's tier-1 gate.
#   2. Re-compile src/obs/ with -Wall -Wextra -Werror: the obs layer is the
#      newest subsystem and must stay warning-clean even when the rest of
#      the tree only warns.
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== strict-warning pass over src/obs/ =="
for f in src/obs/*.cc; do
  echo "  g++ -Werror $f"
  g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I src "$f"
done
echo "check_build: OK"
