file(REMOVE_RECURSE
  "CMakeFiles/net_serialization_test.dir/net/serialization_test.cc.o"
  "CMakeFiles/net_serialization_test.dir/net/serialization_test.cc.o.d"
  "net_serialization_test"
  "net_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
