#include "core/baselines/invariant_miner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "faults/snapshot_faults.h"
#include "test_util.h"

namespace hodor::core::baselines {
namespace {

using net::LinkId;
using net::NodeId;

struct MinerFixture : ::testing::Test {
  MinerFixture() : net(testing::MakeAbilene()), miner(net.topo) {}

  // Trains the miner on `n` honest snapshots with fresh jitter each time.
  void Train(std::size_t n, std::uint64_t base_seed = 100) {
    for (std::size_t i = 0; i < n; ++i) {
      miner.Observe(net.Snapshot(base_seed + i));
    }
    miner.Mine();
  }

  bool Mined(const std::string& name) const {
    return std::any_of(miner.invariants().begin(), miner.invariants().end(),
                       [&](const MinedInvariant& inv) {
                         return inv.name == name;
                       });
  }

  testing::HealthyNetwork net;
  InvariantMiner miner;
};

TEST_F(MinerFixture, DiscoversLinkSymmetryWithoutBeingTold) {
  Train(6);
  // R1 emerges from data: the TX/RX pair of every loaded link is mined.
  std::size_t r1_found = 0;
  for (LinkId e : net.topo.LinkIds()) {
    if (net.sim.carried[e.value()] < 1.0) continue;
    const std::string name =
        "tx(" + net.topo.LinkName(e) + ") ~= rx(" + net.topo.LinkName(e) + ")";
    if (Mined(name)) ++r1_found;
  }
  EXPECT_GT(r1_found, 20u);  // most of the 30 directed links carry traffic
}

TEST_F(MinerFixture, RequiresMinimumHistory) {
  miner.Observe(net.Snapshot(1));
  EXPECT_THROW(miner.Mine(), std::logic_error);
  EXPECT_EQ(miner.observation_count(), 1u);
}

TEST_F(MinerFixture, HonestSnapshotPassesMinedInvariants) {
  Train(6);
  const auto r = miner.Check(net.Snapshot(999));
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_GT(r.checked, 0u);
}

TEST_F(MinerFixture, DetectsCounterCorruption) {
  Train(6);
  // Find a loaded link and corrupt one side well beyond tolerance.
  LinkId victim = LinkId::Invalid();
  for (LinkId e : net.topo.LinkIds()) {
    if (net.sim.carried[e.value()] > 5.0) {
      victim = e;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  const auto snap = net.Snapshot(
      999, faults::CorruptLinkCounter(victim, faults::CounterSide::kTx,
                                      faults::CounterCorruption::kScale, 2.0));
  EXPECT_FALSE(miner.Check(snap).ok());
}

TEST_F(MinerFixture, SpuriousInvariantsFromDrainedHistory) {
  // The paper's §3.1 failure mode, reproduced: ATLAM5 stays drained (no
  // traffic on its only link) throughout the training window, so the miner
  // learns its counters "are always ~zero-equal" to each other AND to other
  // idle signals. When the router is undrained, those spurious invariants
  // erupt into false positives — on a perfectly healthy network.
  const NodeId pop = net.topo.FindNode("ATLAM5").value();

  // Training regime: ATLAM5 drained (its demand removed -> idle link).
  testing::HealthyNetwork drained_net = testing::MakeAbilene();
  for (NodeId j : drained_net.topo.NodeIds()) {
    if (j != pop) {
      drained_net.demand.Set(pop, j, 0.0);
      drained_net.demand.Set(j, pop, 0.0);
    }
  }
  drained_net.plan = flow::ShortestPathRouting(
      drained_net.topo, drained_net.demand, net::AllLinks());
  drained_net.sim = flow::SimulateFlow(drained_net.topo, drained_net.state,
                                       drained_net.demand, drained_net.plan);
  InvariantMiner trained(drained_net.topo);
  for (std::size_t i = 0; i < 6; ++i) {
    trained.Observe(drained_net.Snapshot(200 + i));
  }
  trained.Mine();

  // More invariants mined than on the busy network (the spurious ones).
  Train(6);
  EXPECT_GT(trained.invariants().size(), miner.invariants().size());

  // Deployment: the POP is undrained and carries real traffic — honest
  // snapshot, yet the mined model rejects it.
  const auto r = trained.Check(net.Snapshot(999));
  EXPECT_FALSE(r.ok())
      << "expected spurious-invariant false positives (paper §3.1)";
}

TEST_F(MinerFixture, MissingSignalsSkippedAtCheckTime) {
  Train(6);
  const NodeId victim = net.topo.FindNode("IPLSng").value();
  const auto snap = net.Snapshot(999, faults::UnresponsiveRouter(victim));
  const auto r = miner.Check(snap);
  // The victim's invariants are unevaluable, not violations; far links
  // still check clean.
  for (const std::string& v : r.violations) {
    EXPECT_EQ(v.find("IPLSng"), std::string::npos) << v;
  }
}


TEST_F(MinerFixture, DiscoversConservationSumRelations) {
  // §3.1 "which should sum to others": per-router balance relations are
  // mined from data (R2 rediscovered).
  Train(6);
  EXPECT_EQ(miner.conservation_invariants().size(), net.topo.node_count());
}

TEST_F(MinerFixture, MinedConservationCatchesScalarCorruption) {
  // An ext counter lie breaks the router's mined balance relation even
  // though no counter *pair* disagrees.
  Train(6);
  const NodeId victim = net.topo.FindNode("IPLSng").value();
  const auto snap = net.Snapshot(999, [victim](telemetry::NetworkSnapshot& s) {
    if (s.ExtInRate(victim)) {
      s.frame().SetExtInRate(victim, *s.ExtInRate(victim) * 2.0 + 5.0);
    }
  });
  const auto r = miner.Check(snap);
  bool conservation_broken = false;
  for (const std::string& v : r.violations) {
    if (v.find("conservation(IPLSng)") != std::string::npos) {
      conservation_broken = true;
    }
  }
  EXPECT_TRUE(conservation_broken);
}

TEST_F(MinerFixture, ConservationMiningCanBeDisabled) {
  InvariantMinerOptions opts;
  opts.mine_conservation = false;
  InvariantMiner no_sum(net.topo, opts);
  for (std::size_t i = 0; i < 6; ++i) no_sum.Observe(net.Snapshot(100 + i));
  no_sum.Mine();
  EXPECT_TRUE(no_sum.conservation_invariants().empty());
}

}  // namespace
}  // namespace hodor::core::baselines
