
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controlplane/controller_input.cc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/controller_input.cc.o" "gcc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/controller_input.cc.o.d"
  "/root/repo/src/controlplane/pipeline.cc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/pipeline.cc.o" "gcc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/pipeline.cc.o.d"
  "/root/repo/src/controlplane/sdn_controller.cc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/sdn_controller.cc.o" "gcc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/sdn_controller.cc.o.d"
  "/root/repo/src/controlplane/services.cc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/services.cc.o" "gcc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/services.cc.o.d"
  "/root/repo/src/controlplane/trace.cc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/trace.cc.o" "gcc" "src/controlplane/CMakeFiles/hodor_controlplane.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/hodor_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/hodor_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hodor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
