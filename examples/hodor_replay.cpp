// hodor_replay: the flight-recorder CLI.
//
//   record  — run a small validated pipeline (with one injected demand
//             fault) and flight-record every epoch to a binary log. This
//             is also how tests/data/golden_abilene.hlog is generated.
//   inspect — print a log's header and a per-epoch verdict table without
//             re-running anything.
//   replay  — re-run core::Validator over every recorded epoch and diff
//             fresh decision digests against the recorded ones. Same
//             binary, stock options => clean. Exit code 1 on divergence,
//             so a replay doubles as a regression gate in CI.
//   diff    — replay with overridden validator thresholds: answers "which
//             recorded decisions would change if τ_e were 0.05?" with a
//             precise per-epoch list of flipped invariants.
//
//   ./build/examples/hodor_replay record  /tmp/run.hlog --topo=abilene
//   ./build/examples/hodor_replay inspect /tmp/run.hlog
//   ./build/examples/hodor_replay replay  /tmp/run.hlog
//   ./build/examples/hodor_replay diff    /tmp/run.hlog --demand-tau=0.5
//
// Recorded logs come from here or from any pipeline with a
// replay::PipelineRecorder installed (e.g. live_pipeline with
// HODOR_RECORD_PATH). Not to be confused with examples/outage_replay,
// which replays *synthetic scenario scripts* from the fault catalog, not
// recorded epoch logs.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "controlplane/pipeline.h"
#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "replay/epoch_log.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace hodor;

int Usage() {
  std::cerr <<
      "usage: hodor_replay <command> <log> [flags]\n"
      "  record <log> [--topo=abilene|geant] [--epochs=N] [--seed=S]\n"
      "               [--fault-epoch=K]   record a fresh validated run\n"
      "  inspect <log>                    header + per-epoch verdicts\n"
      "  replay <log> [--threads=N] [--force-full]\n"
      "                                  re-validate, expect zero divergence\n"
      "  diff <log> [--demand-tau=X] [--min-confidence=X]\n"
      "             [--no-demand] [--no-topology] [--no-drain] [--threads=N]\n"
      "             [--force-full]      re-validate under changed options\n"
      "--threads=N runs hardening + the three checks over N workers; replay\n"
      "must stay digest-clean at any N (the determinism gate).\n"
      "--force-full (or HODOR_FORCE_FULL=1) disables the incremental\n"
      "validation path; the default incremental replay must match the\n"
      "recorded full-recompute digests bit for bit (the delta gate).\n";
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, double* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atof(arg.c_str() + prefix.size());
  return true;
}

bool ParseFlag(const std::string& arg, const char* name, std::uint64_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
  return true;
}

// Deterministic small run: drifting gravity demand over the chosen
// topology, Hodor validating every epoch, one buggy demand-aggregation
// epoch in the middle. Everything derives from --seed, so the same flags
// always produce a byte-identical log.
int RunRecord(const std::string& path, const std::vector<std::string>& flags) {
  std::string topo_name = "abilene";
  std::uint64_t epochs = 5;
  std::uint64_t seed = 7;
  std::uint64_t fault_epoch = 2;
  for (const std::string& f : flags) {
    if (f == "--topo=abilene" || f == "--topo=geant") {
      topo_name = f.substr(7);
    } else if (ParseFlag(f, "--epochs", &epochs) ||
               ParseFlag(f, "--seed", &seed) ||
               ParseFlag(f, "--fault-epoch", &fault_epoch)) {
    } else {
      std::cerr << "unknown flag: " << f << "\n";
      return Usage();
    }
  }

  const net::Topology topo =
      topo_name == "geant" ? net::GeantLike() : net::Abilene();
  const net::GroundTruthState state(topo);
  util::Rng demand_rng(seed);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.45, base);

  controlplane::Pipeline pipeline(topo, {}, util::Rng(seed + 1));
  const core::Validator validator(topo);
  pipeline.SetValidator(validator.AsPipelineValidator());
  pipeline.Bootstrap(state, base);

  replay::PipelineRecorder recorder;
  const util::Status opened = recorder.Open(path, topo);
  if (!opened.ok()) {
    std::cerr << "open " << path << ": " << opened.ToString() << "\n";
    return 1;
  }
  pipeline.AddEpochSink(recorder.Hook());

  for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
    util::Rng drift_rng(seed * 1000 + epoch);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j,
                 base.At(i, j) * (1.0 + drift_rng.Uniform(-0.04, 0.04)));
    }
    controlplane::AggregationFaultHooks hooks;
    if (epoch == fault_epoch) {
      hooks.demand = faults::DemandEntriesDropped(0.33, seed + 4242);
    }
    const auto r = pipeline.RunEpoch(state, demand, nullptr, hooks);
    std::cout << "epoch " << r.epoch << ": "
              << (r.decision.accept ? "accept" : "REJECT")
              << (r.used_fallback ? " -> fallback" : "")
              << (epoch == fault_epoch ? "   [demand fault injected]" : "")
              << "\n";
  }
  const util::Status closed = recorder.Close();
  if (!closed.ok()) {
    std::cerr << "close: " << closed.ToString() << "\n";
    return 1;
  }
  std::cout << "recorded " << recorder.recorded_epochs() << " epochs ("
            << topo.name() << ") to " << path << "\n";
  return 0;
}

int RunInspect(const std::string& path) {
  replay::EpochLogReader reader;
  const util::Status opened = reader.Open(path);
  if (!opened.ok()) {
    std::cerr << path << ": " << opened.ToString() << "\n";
    return 1;
  }
  const net::Topology& topo = reader.topology();
  std::cout << path << ": format v" << reader.format_version() << ", "
            << topo.name() << " (" << topo.node_count() << " nodes, "
            << topo.physical_link_count() << " links), "
            << reader.epoch_count() << " epochs, "
            << (reader.had_index() ? "indexed" : "recovered by scan") << "\n";
  if (reader.tail_truncated()) {
    std::cout << "torn tail: " << reader.tail_message() << "\n";
  }

  util::TablePrinter table(
      {"epoch", "verdict", "invariants", "failed", "digest"});
  for (std::size_t i = 0; i < reader.epoch_count(); ++i) {
    auto rec = reader.Read(i);
    if (!rec.ok()) {
      std::cerr << "record " << i << ": " << rec.status().ToString() << "\n";
      return 1;
    }
    const replay::EpochVerdict& v = rec.value().verdict;
    std::string verdict = !v.validated ? "(unvalidated)"
                          : v.accept   ? "accept"
                                       : "REJECT";
    if (v.used_fallback) verdict += " -> fallback";
    char digest[20];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(v.decision_digest));
    table.AddRowValues(rec.value().epoch, verdict, v.evaluated, v.failed,
                       digest);
  }
  std::cout << table.ToString();
  return 0;
}

int RunReplay(const std::string& path, const std::vector<std::string>& flags,
              bool is_diff) {
  replay::ReplayOptions opts;
  std::uint64_t threads = 1;
  for (const std::string& f : flags) {
    if (ParseFlag(f, "--demand-tau", &opts.validator.demand.tau_e) ||
        ParseFlag(f, "--min-confidence",
                  &opts.validator.topology.min_confidence) ||
        ParseFlag(f, "--threads", &threads)) {
    } else if (f == "--no-demand") {
      opts.validator.check_demand = false;
    } else if (f == "--no-topology") {
      opts.validator.check_topology = false;
    } else if (f == "--no-drain") {
      opts.validator.check_drain = false;
    } else if (f == "--force-full") {
      opts.force_full = true;
    } else {
      std::cerr << "unknown flag: " << f << "\n";
      return Usage();
    }
  }
  const char* force_env = std::getenv("HODOR_FORCE_FULL");
  if (force_env != nullptr && force_env[0] == '1') opts.force_full = true;

  opts.validator.hardening.num_threads = static_cast<std::size_t>(threads);

  replay::Replayer replayer(opts);
  auto report_or = replayer.ReplayFile(path);
  if (!report_or.ok()) {
    std::cerr << path << ": " << report_or.status().ToString() << "\n";
    return 1;
  }
  const replay::ReplayReport& report = report_or.value();
  std::cout << report.Summary() << "\n";
  for (const replay::EpochDiff& diff : report.epochs) {
    if (!diff.diverged()) continue;
    std::cout << "epoch " << diff.epoch << ": recorded "
              << (diff.recorded_accept ? "accept" : "reject") << ", fresh "
              << (diff.fresh_accept ? "accept" : "reject")
              << (diff.verdict_flipped() ? "   ** verdict flipped **" : "")
              << "\n";
    for (const replay::InvariantFlip& flip : diff.flips) {
      std::cout << "  " << flip.ToString() << "\n";
    }
    if (diff.flips.empty()) {
      std::cout << "  (no verdict flips; residual values moved)\n";
    }
  }
  // `replay` is a regression gate: divergence is a failure. `diff` is a
  // what-if tool: divergence is the expected, interesting output.
  if (is_diff) return 0;
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  std::vector<std::string> flags(argv + 3, argv + argc);

  if (command == "record") return RunRecord(path, flags);
  if (command == "inspect") {
    if (!flags.empty()) return Usage();
    return RunInspect(path);
  }
  if (command == "replay") return RunReplay(path, flags, /*is_diff=*/false);
  if (command == "diff") return RunReplay(path, flags, /*is_diff=*/true);
  return Usage();
}
