// The staged epoch engine: the explicit execution model behind
// controlplane::Pipeline.
//
// Where the historical RunEpoch was a hard-coded call sequence, the engine
// makes the epoch's structure first-class:
//
//   - An explicit stage graph. kEpochStageGraph lists the six stages
//     (simulate → collect → aggregate → validate → program → measure) with
//     their dependencies as data; the runner executes them in topological
//     order and HODOR_CHECKs every dependency, so reordering bugs fail
//     loudly instead of silently changing semantics. Parallelism is
//     *intra*-stage — collect shards router agents over a thread pool, the
//     validator runs its three checks as sibling tasks — which keeps the
//     inter-stage dataflow (and thus determinism) trivially auditable.
//
//   - An owned EpochState value: the snapshot workspace, aggregated input,
//     verdict + provenance, outcome, and stage timings for one epoch live
//     in one buffer the engine reuses. With threaded sinks the engine
//     double-buffers EpochState: the control thread fills one buffer while
//     the sink thread renders/records the previous one, handing buffers
//     back and forth through two bounded SPSC queues (backpressure blocks,
//     never drops — the replay log stays complete).
//
//   - A deterministic registry discipline. The (single-threaded)
//     MetricsRegistry is only ever mutated by its owning thread: stage
//     code writes the control thread's registry, parallel sections write
//     per-worker shards merged back in fixed order (obs/metrics.h), and
//     sinks render from a per-epoch mirror the control thread copies at
//     the epoch boundary.
//
// Determinism contract: for identical inputs and seeds, every output that
// feeds DecisionRecord::CanonicalDigest — and the snapshot, input, and
// outcome bytes themselves — is identical at any num_threads and with
// sinks threaded or synchronous. The golden replay gate
// (scripts/check_build.sh --replay-gate) enforces this against a recorded
// log at threads 1 and 4.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "controlplane/pipeline.h"
#include "obs/exec_timeline.h"
#include "obs/metrics.h"
#include "util/exec_trace.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/spsc_queue.h"

namespace hodor::controlplane {

// The stages of one epoch, in graph order.
enum class EpochStageId : std::uint32_t {
  kSimulate = 0,  // traffic under the installed plan (what telemetry sees)
  kCollect,       // router agents fill the snapshot (sharded when threaded)
  kAggregate,     // control infra aggregates the controller's inputs
  kValidate,      // optional validator + rejection policy
  kProgram,       // controller programs a plan from the chosen input
  kMeasure,       // outcome simulation + metrics under the new plan
};

inline constexpr std::size_t kEpochStageCount = 6;

// One node of the stage graph. `deps` is a bitmask of EpochStageId bits
// that must have completed before this stage may run.
struct EpochStageNode {
  EpochStageId id;
  const char* name;
  obs::Stage span;     // the obs/span.h taxonomy label this stage times
  std::uint32_t deps;  // bitmask: 1u << static_cast<uint32_t>(dep)
};

// The epoch stage DAG as data. Today's graph is a chain — each stage
// consumes its predecessor's output — but the runner only requires a
// topological order, and the explicit dependency masks are validated on
// every run.
const std::array<EpochStageNode, kEpochStageCount>& EpochStageGraph();

// One epoch's owned state: the workspace the stages fill in place and the
// sinks read. The engine allocates one (synchronous sinks) or two
// (threaded sinks, double-buffered) and reuses them forever — steady-state
// epochs allocate nothing beyond what the stages themselves need.
struct EpochState {
  explicit EpochState(const net::Topology& topo)
      : result{0,
               ControllerInput{},
               false,
               ValidationDecision{},
               false,
               flow::NetworkMetrics{},
               flow::SimulationResult{},
               telemetry::NetworkSnapshot(topo, 0),
               {},
               nullptr,
               {}} {}

  // The completed epoch as sinks and the caller see it. result.snapshot
  // doubles as the collect stage's workspace (filled in place).
  EpochResult result;
  // Stage 1 output: traffic under the *old* plan — telemetry's input.
  flow::SimulationResult measured;
  // Which input the program stage used (raw or last-good fallback).
  const ControllerInput* chosen = nullptr;
  // Per-epoch value mirror of the control thread's registry, rendered by
  // the sink thread while the control thread runs ahead (threaded mode).
  obs::MetricsRegistry metrics_mirror;
};

// The engine owns everything Pipeline::RunEpoch needs across epochs:
// collector, controller, validator, installed plan, last-good input, the
// EpochState buffers, and (optionally) the sink thread. Pipeline is a thin
// facade over this class; see pipeline.h for the user-facing contract.
class EpochEngine {
 public:
  EpochEngine(const net::Topology& topo, PipelineOptions opts, util::Rng rng);
  ~EpochEngine();

  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  void Bootstrap(const net::GroundTruthState& state,
                 const flow::DemandMatrix& true_demand);

  void SetValidator(InputValidatorFn validator);
  void SetDeltaValidator(DeltaInputValidatorFn validator);
  void AddEpochSink(EpochSinkFn sink);

  EpochResult RunEpoch(const net::GroundTruthState& state,
                       const flow::DemandMatrix& true_demand,
                       const telemetry::SnapshotMutator& snapshot_fault,
                       const AggregationFaultHooks& aggregation_faults);

  // Fault-class stamping (see Pipeline::SetFaultStamp). While a stamp is
  // set it overrides per-epoch inference from the RunEpoch fault hooks.
  void SetFaultStamp(std::vector<std::string> classes);
  void ClearFaultStamp();

  // Blocks until every epoch submitted so far has been delivered to all
  // sinks (no-op in synchronous mode).
  void DrainSinks();

  const flow::RoutingPlan& installed_plan() const { return installed_plan_; }
  const std::optional<ControllerInput>& last_good_input() const {
    return last_good_input_;
  }
  const PipelineOptions& options() const { return opts_; }

  // Execution-trace surfaces; nullptr while opts_.exec_trace is false.
  // The timeline is polled/analyzed by the control thread only.
  obs::ExecTimeline* exec_timeline() { return timeline_.get(); }
  util::ExecTracer* exec_tracer() { return tracer_.get(); }

 private:
  // Everything one stage needs, threaded through the runner.
  struct StageContext {
    const net::GroundTruthState* state;
    const flow::DemandMatrix* demand;
    const telemetry::SnapshotMutator* fault;
    const AggregationFaultHooks* hooks;
    EpochState* st;
    std::uint64_t epoch;
  };

  void RunStage(EpochStageId id, StageContext& ctx);
  void DispatchStage(EpochStageId id, StageContext& ctx);
  void StageSimulate(StageContext& ctx);
  void StageCollect(StageContext& ctx);
  void StageAggregate(StageContext& ctx);
  void StageValidate(StageContext& ctx);
  void StageProgram(StageContext& ctx);
  void StageMeasure(StageContext& ctx);

  EpochState& AcquireState();
  EpochResult FinishAndDispatch(EpochState& st);
  void SinkLoop();
  void InvokeSinks(const EpochResult& result);
  void StopSinkThread();

  const net::Topology* topo_;
  PipelineOptions opts_;
  util::Rng rng_;
  telemetry::Collector collector_;
  SdnController controller_;
  InputValidatorFn validator_;
  DeltaInputValidatorFn delta_validator_;

  // Incremental-validation state (DESIGN.md §12): the engine's private
  // copy of the previous epoch's collected snapshot (the other EpochState
  // buffer may be in the sink thread's hands, so diffing against it would
  // race), the delta scratch handed to the validator, and whether a
  // previous epoch exists to diff against. Control-thread-only.
  telemetry::NetworkSnapshot prev_snapshot_;
  telemetry::FrameDelta frame_delta_;
  bool have_prev_snapshot_ = false;
  std::vector<EpochSinkFn> sinks_;
  flow::RoutingPlan installed_plan_;
  std::optional<ControllerInput> last_good_input_;
  std::uint64_t next_epoch_ = 0;

  // Fault-class ground truth for EpochResult::fault_classes: the sticky
  // caller stamp (overrides inference while set) and every class name ever
  // active, so hodor_fault_active gauges return to 0 instead of going
  // stale when a fault window closes. Control-thread-only.
  std::optional<std::vector<std::string>> fault_stamp_;
  std::vector<std::string> seen_fault_classes_;

  // Execution tracer + analyzer. Declared before the pool, queues, and
  // sink thread so every emitter (pool workers, queue hand-offs, the sink
  // loop) is torn down before the rings it writes into.
  std::unique_ptr<util::ExecTracer> tracer_;
  std::unique_ptr<obs::ExecTimeline> timeline_;
  util::ExecThreadHandle control_handle_;
  util::ExecThreadHandle sink_handle_;

  // Worker pool for the intra-epoch sharded stages; null while
  // opts_.num_threads <= 1.
  std::unique_ptr<util::ThreadPool> pool_;

  // EpochState buffers plus the two hand-off queues of the threaded-sink
  // runtime: free_ holds buffers the control thread may fill, ready_ holds
  // completed epochs awaiting the sink thread. In synchronous mode only
  // states_[0] exists and the queues/thread stay unused.
  std::vector<std::unique_ptr<EpochState>> states_;
  util::BoundedSpscQueue<EpochState*> free_;
  util::BoundedSpscQueue<EpochState*> ready_;
  std::thread sink_thread_;
  // submitted_ is control-thread-only; delivered_ advances under mu_ so
  // DrainSinks can wait on the pair.
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
  std::mutex mu_;
  std::condition_variable drained_cv_;
};

}  // namespace hodor::controlplane
