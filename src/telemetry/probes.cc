#include "telemetry/probes.h"

namespace hodor::telemetry {

std::vector<ProbeResult> ProbeAllLinks(const net::Topology& topo,
                                       const net::GroundTruthState& state,
                                       const ProbeOptions& opts,
                                       util::Rng& rng) {
  HODOR_CHECK(opts.attempts >= 1);
  HODOR_CHECK(opts.false_loss_rate >= 0.0 && opts.false_loss_rate < 1.0);
  std::vector<ProbeResult> out;
  out.reserve(topo.link_count());
  for (net::LinkId e : topo.LinkIds()) {
    ProbeResult res;
    res.link = e;
    if (state.LinkPhysicallyUsable(e)) {
      // Healthy link: succeeds unless every attempt is falsely lost.
      bool ok = false;
      for (int a = 0; a < opts.attempts && !ok; ++a) {
        ok = !rng.Bernoulli(opts.false_loss_rate);
      }
      res.success = ok;
    } else {
      res.success = false;
    }
    out.push_back(res);
  }
  return out;
}

}  // namespace hodor::telemetry
