// E-epoch-engine — staged epoch engine: what moving the epoch sinks off
// the critical path and sharding the intra-epoch stages buys.
//
// Two configurations of the identical pipeline run side by side at three
// network sizes (Abilene n=12, Waxman n=100, Waxman n=400), both with the
// full operability load attached — flight recorder plus serving sinks
// (signal-health board rendering trust gauges, telemetry-server snapshot
// rendering):
//
//   serial — the historical loop: one thread, sinks inline in RunEpoch.
//   staged — the DESIGN §9 engine: worker threads for collection + the
//            validator's sibling checks, sinks on the dedicated sink
//            thread fed by the double-buffered EpochState queue.
//
// The controller is IGP-style shortest-path routing over a sparse WAN
// demand (each site talks to a handful of peers). That keeps the program
// stage proportionate to the operability load this bench measures: the
// default GreedyTe controller on a *dense* n=400 gravity matrix spends
// ~90 s/epoch in k-shortest-paths, which would drown the sink and
// collection cost in the thing the engine cannot displace.
//
// Reported per size: median RunEpoch wall time (the epoch critical path —
// in staged mode sink cost overlaps the next epoch instead of adding to
// it), the speedup, and — the determinism contract — whether every
// epoch's decision digest matched bit for bit across the two
// configurations. Acceptance floor: >= 20% critical-path improvement at
// n=400 with both sink kinds enabled, zero digest divergence anywhere.
// The floor needs a second hardware thread to be physically expressible
// (displaced work must overlap on another core); on a single-CPU host the
// bench reports the measurement and enforces only the digest contract.
//
// Flags:
//   --trace-out=PATH   also write each configuration's execution trace as
//       Chrome/Perfetto JSON; the tag and mode are inserted before the
//       extension (trace.json -> trace.waxman400_staged.json).
//   --trace-overhead   instead of the main comparison, gate the tracer's
//       own cost: waxman100 serial with tracing off vs on, fail (exit 1)
//       if the fastest epoch regresses more than 3% or digests diverge.
//   --steady-state     instead of the main comparison, gate the DESIGN §12
//       incremental-validation payoff: waxman400 with zero telemetry noise
//       and ~1% of links nudged per epoch, incremental vs HODOR_FORCE_FULL
//       arms; fail (exit 1) if the median validate+harden call is not at
//       least 3x faster incrementally, or any digest diverges.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "controlplane/pipeline.h"
#include "obs/exec_timeline.h"
#include "obs/health/signal_health.h"
#include "obs/observatory.h"
#include "obs/provenance.h"
#include "obs/serve/telemetry_server.h"
#include "replay/recorder.h"
#include "util/logging.h"

namespace {

using namespace hodor;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kThreads = 4;
constexpr int kWarmupEpochs = 2;
constexpr int kMeasuredEpochs = 10;

// Staged-mode worker threads, bounded by what the host can actually run
// concurrently. Digests are thread-count-invariant by design, so the
// serial/staged comparison stays valid at any value.
std::size_t StagedThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc >= kThreads) return kThreads;
  return hc >= 2 ? hc : 1;
}

// Gravity demand, sparsified to ~2 peers-per-site rows beyond Abilene
// scale (WAN matrices are sparse; a dense 400-node matrix is neither
// realistic nor measurable), re-normalised to 50% peak utilisation.
flow::DemandMatrix BenchDemand(const net::Topology& topo) {
  util::Rng demand_rng(11);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  const std::size_t n = topo.node_count();
  if (n > 12) {
    const auto pairs = base.Pairs();
    const double keep = std::min(
        1.0, 2.0 * static_cast<double>(n) / static_cast<double>(pairs.size()));
    util::Rng sparsify_rng(29);
    for (const auto& [i, j] : pairs) {
      if (sparsify_rng.Uniform(0.0, 1.0) > keep) base.Set(i, j, 0.0);
    }
  }
  flow::NormalizeToMaxUtilization(topo, 0.5, base);
  return base;
}

struct RunResult {
  double median_ms = 0.0;
  // Fastest measured epoch — the overhead gate compares minima because
  // they are robust to load spikes from whatever else the host is doing.
  double min_ms = 0.0;
  std::vector<std::uint64_t> digests;
  // Execution-trace aggregate over the measured epochs (per-stage
  // self/wait, modal bottleneck, pool occupancy, sink health); valid only
  // when the run traced.
  obs::ExecSummary trace;
  bool has_trace = false;
};

// Inserts "<tag>_<mode>" before the path's extension so one --trace-out
// value yields a distinct file per configuration.
std::string TracePathFor(const std::string& base, const char* tag,
                         bool staged) {
  const std::string suffix =
      std::string(tag) + (staged ? "_staged" : "_serial");
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + "." + suffix;
  }
  return base.substr(0, dot) + "." + suffix + base.substr(dot);
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

// One full run: validator + flight recorder + serving sinks attached,
// kWarmupEpochs discarded, `measured_epochs` timed around RunEpoch only.
// `with_observatory` swaps the hand-rolled serving sink for the full
// obs::Observatory (trust + detection tracking + per-epoch time-series
// sampling + /slo + /query publication) — the extra cost the
// --timeseries-overhead gate measures.
RunResult RunConfig(const net::Topology& topo, bool staged,
                    const char* log_tag, bool exec_trace = true,
                    const std::string& trace_out = "",
                    int measured_epochs = kMeasuredEpochs,
                    bool with_observatory = false) {
  const net::GroundTruthState state(topo);
  const flow::DemandMatrix base = BenchDemand(topo);

  controlplane::PipelineOptions opts;
  opts.collector = bench::DefaultCollector();
  opts.controller.algorithm = controlplane::RoutingAlgorithm::kShortestPath;
  opts.num_threads = staged ? StagedThreads() : 1;
  opts.threaded_sinks = staged;
  opts.exec_trace = exec_trace;
  controlplane::Pipeline pipeline(topo, opts, util::Rng(13));
  core::ValidatorOptions vopts;
  vopts.hardening.num_threads = opts.num_threads;
  const core::Validator validator(topo, vopts);
  pipeline.SetValidator(validator.AsPipelineValidator());
  pipeline.Bootstrap(state, base);

  // The operability load: flight recorder + health board + HTTP snapshot
  // rendering, all as epoch sinks (the cost the staged engine displaces).
  std::string log_path = std::string("bench_epoch_engine_") + log_tag +
                         (staged ? "_staged" : "_serial") + ".hlog";
  replay::PipelineRecorder recorder;
  if (recorder.Open(log_path, topo).ok()) {
    pipeline.AddEpochSink(recorder.Hook());
  }
  obs::SignalHealthBoard board;
  obs::MetricsRegistry serving_registry;
  obs::TelemetryServer server;  // not Started: pure snapshot rendering
  obs::Observatory observatory;
  RunResult result;
  if (with_observatory) {
    pipeline.AddEpochSink([&](const controlplane::EpochResult& r) {
      observatory.ObserveAndPublish(r.epoch, r.metrics_mirror,
                                    r.decision.provenance, r.fault_classes,
                                    &server);
    });
  } else {
    pipeline.AddEpochSink([&](const controlplane::EpochResult& r) {
      serving_registry.CopyFrom(r.metrics_mirror
                                    ? *r.metrics_mirror
                                    : obs::MetricsRegistry::Global());
      board.ObserveEpoch(r.decision.provenance);
      board.PublishGauges(&serving_registry);
      server.PublishMetrics(&serving_registry);
      server.PublishSignals(board);
      server.PublishDecision(r.decision.provenance);
    });
  }

  std::vector<double> samples;
  samples.reserve(measured_epochs);
  for (int epoch = 0; epoch < kWarmupEpochs + measured_epochs; ++epoch) {
    util::Rng drift_rng(1000 + epoch);
    flow::DemandMatrix demand = base;
    for (const auto& [i, j] : base.Pairs()) {
      demand.Set(i, j,
                 base.At(i, j) * (1.0 + drift_rng.Uniform(-0.04, 0.04)));
    }
    const Clock::time_point t0 = Clock::now();
    const auto r = pipeline.RunEpoch(state, demand);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (epoch >= kWarmupEpochs) samples.push_back(ms);
    result.digests.push_back(r.decision.provenance.CanonicalDigest());
  }
  pipeline.DrainSinks();
  if (obs::ExecTimeline* tl = pipeline.exec_timeline()) {
    result.trace = obs::Summarize(
        tl->Recent(static_cast<std::size_t>(measured_epochs)));
    result.has_trace = result.trace.epochs > 0;
    if (!trace_out.empty()) {
      const std::string path = TracePathFor(trace_out, log_tag, staged);
      if (pipeline.WriteExecTrace(path)) {
        std::cout << "[trace] " << path << "\n";
      } else {
        std::cout << "[trace] could not write " << path << "\n";
      }
    }
  }
  (void)recorder.Close();
  std::remove(log_path.c_str());
  result.min_ms = *std::min_element(samples.begin(), samples.end());
  result.median_ms = MedianMs(std::move(samples));
  return result;
}

// --trace-overhead: the tracer must stay cheap enough to leave on. Runs
// waxman100 serial (the smallest size where the epoch is non-trivial but
// the tracer's fixed cost is proportionally largest among the bench
// sizes) with tracing disabled, then enabled, and compares the fastest
// epoch of each run — the minimum isolates the tracer's cost from load
// spikes that inflate medians on a busy host. Digest parity doubles as
// the determinism check.
int RunTraceOverheadGate() {
  constexpr int kOverheadEpochs = 20;
  constexpr double kMaxRatio = 1.03;
  util::Rng topo_rng(21);
  const net::Topology topo = net::Waxman(100, topo_rng);
  bench::PrintHeader(
      "epoch_engine --trace-overhead",
      "execution tracer overhead gate (tracer on vs off)",
      "waxman100 seed=21 serial, " + std::to_string(kOverheadEpochs) +
          " measured epochs after 2 warm-up; pass: min-epoch ratio <= 1.03 "
          "and digest parity");
  // Two interleaved rounds per configuration: a load spike during one
  // measurement window then penalises (at most) one round of one config,
  // and the min over both rounds discards it.
  RunResult off = RunConfig(topo, /*staged=*/false, "overhead_off",
                            /*exec_trace=*/false, "", kOverheadEpochs);
  RunResult on = RunConfig(topo, /*staged=*/false, "overhead_on",
                           /*exec_trace=*/true, "", kOverheadEpochs);
  const RunResult off2 = RunConfig(topo, /*staged=*/false, "overhead_off",
                                   /*exec_trace=*/false, "", kOverheadEpochs);
  const RunResult on2 = RunConfig(topo, /*staged=*/false, "overhead_on",
                                  /*exec_trace=*/true, "", kOverheadEpochs);
  off.min_ms = std::min(off.min_ms, off2.min_ms);
  on.min_ms = std::min(on.min_ms, on2.min_ms);
  const double ratio = on.min_ms / off.min_ms;
  const bool digests_match = off.digests == on.digests &&
                             off.digests == off2.digests &&
                             on.digests == on2.digests;
  util::TablePrinter table(
      {"config", "ms/epoch (min)", "ms/epoch (median)", "ratio", "digests"});
  table.AddRowValues("trace off", util::FormatDouble(off.min_ms, 3),
                     util::FormatDouble(off.median_ms, 3), "-", "-");
  table.AddRowValues("trace on", util::FormatDouble(on.min_ms, 3),
                     util::FormatDouble(on.median_ms, 3),
                     util::FormatDouble(ratio, 4),
                     digests_match ? "match" : "DIVERGED");
  std::cout << table.ToString();
  if (on.has_trace) {
    std::cout << "bottleneck stage: " << on.trace.bottleneck
              << ", mean critical path "
              << util::FormatDouble(on.trace.mean_critical_path_ms, 3)
              << " ms\n";
  }
  const bool ratio_ok = ratio <= kMaxRatio;
  std::cout << "tracer overhead " << util::FormatPercent(ratio - 1.0, 2)
            << " (gate " << util::FormatPercent(kMaxRatio - 1.0, 0)
            << "): " << (ratio_ok ? "PASS" : "FAIL") << "; digests "
            << (digests_match ? "bit-identical" : "DIVERGED") << "\n";
  return ratio_ok && digests_match ? 0 : 1;
}

// --timeseries-overhead: the observatory's per-epoch cost — detection
// tracking, time-series sampling, /slo + /query publication — must fit
// inside the same ≤3% budget as the tracer. Waxman n=400 serial (the
// acceptance size: the absolute budget is smallest relative to noise
// there), hand-rolled serving sink vs full Observatory, interleaved
// rounds, min-epoch comparison. Digest parity doubles as the proof that
// observation never feeds back into decisions.
int RunTimeseriesOverheadGate() {
  constexpr int kOverheadRounds = 4;
  constexpr int kOverheadEpochs = 6;
  constexpr double kMaxRatio = 1.03;
  util::Rng topo_rng(21);
  const net::Topology topo = net::Waxman(400, topo_rng);
  bench::PrintHeader(
      "epoch_engine --timeseries-overhead",
      "observatory sampling overhead gate (observatory on vs off)",
      "waxman400 seed=21 serial, " + std::to_string(kOverheadRounds) + "x" +
          std::to_string(kOverheadEpochs) +
          " interleaved measured epochs after 2 warm-up per round; pass: "
          "min-epoch ratio <= 1.03 and digest parity");
  // A discarded settle round absorbs decaying host load from whatever ran
  // before the gate (ctest, the 60s serve window in check_build.sh
  // --dashboard-gate); without it the first config systematically pays
  // for the cool-down and the ratio drifts either way.
  (void)RunConfig(topo, /*staged=*/false, "ts_settle", true, "", 2,
                  /*with_observatory=*/false);
  // Interleaved rounds, like --trace-overhead but finer-grained: off/on
  // alternate kOverheadRounds times so any load window — spike or slow
  // decay — is sampled by both configs, and the min discards it.
  RunResult off;
  RunResult on;
  bool digests_match = true;
  for (int round = 0; round < kOverheadRounds; ++round) {
    RunResult off_r = RunConfig(topo, /*staged=*/false, "ts_off", true, "",
                                kOverheadEpochs, /*with_observatory=*/false);
    RunResult on_r = RunConfig(topo, /*staged=*/false, "ts_on", true, "",
                               kOverheadEpochs, /*with_observatory=*/true);
    digests_match = digests_match && off_r.digests == on_r.digests;
    if (round == 0) {
      off = std::move(off_r);
      on = std::move(on_r);
    } else {
      digests_match = digests_match && off.digests == off_r.digests &&
                      on.digests == on_r.digests;
      off.min_ms = std::min(off.min_ms, off_r.min_ms);
      on.min_ms = std::min(on.min_ms, on_r.min_ms);
      // Display-only: the best round's median, same robustness story.
      off.median_ms = std::min(off.median_ms, off_r.median_ms);
      on.median_ms = std::min(on.median_ms, on_r.median_ms);
    }
  }
  const double ratio = on.min_ms / off.min_ms;
  util::TablePrinter table(
      {"config", "ms/epoch (min)", "ms/epoch (median)", "ratio", "digests"});
  table.AddRowValues("observatory off", util::FormatDouble(off.min_ms, 3),
                     util::FormatDouble(off.median_ms, 3), "-", "-");
  table.AddRowValues("observatory on", util::FormatDouble(on.min_ms, 3),
                     util::FormatDouble(on.median_ms, 3),
                     util::FormatDouble(ratio, 4),
                     digests_match ? "match" : "DIVERGED");
  std::cout << table.ToString();
  const bool ratio_ok = ratio <= kMaxRatio;
  std::cout << "observatory overhead " << util::FormatPercent(ratio - 1.0, 2)
            << " (gate " << util::FormatPercent(kMaxRatio - 1.0, 0)
            << "): " << (ratio_ok ? "PASS" : "FAIL") << "; digests "
            << (digests_match ? "bit-identical" : "DIVERGED") << "\n";
  return ratio_ok && digests_match ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --steady-state: the incremental-validation payoff (DESIGN §12).
//
// Production WANs between faults are boring: with zero telemetry noise and
// a fixed demand matrix, consecutive snapshots differ only where something
// actually moved. This gate manufactures that regime at the acceptance
// size (waxman400): rate jitter and probe loss are zeroed, demand never
// drifts, and a SnapshotMutator nudges the tx/rx counters of a fixed ~1%
// of directed links by an epoch-varying factor (tx == rx, so R1 keeps
// agreeing and the repair working set stays empty). Two arms run the
// identical schedule — incremental (FrameDelta threaded through the
// engine) and force-full (PipelineOptions::force_full, the pre-§12
// behavior) — and the wrapped validator times each Validate call, i.e.
// exactly the harden + three-checks work the delta machinery avoids.
// (The diff itself is an O(signals) word-compare in the collect stage,
// orders of magnitude below one full harden; it is deliberately outside
// the timed window.)
//
// Pass: median incremental validate+harden >= 3x faster than full, and
// every epoch digest bit-identical across the arms.

constexpr int kSteadyWarmup = 2;  // epoch 0 is full by definition (no prev)
constexpr int kSteadyMeasured = 8;
constexpr double kSteadyMinRatio = 3.0;

struct SteadyArm {
  std::vector<double> validate_ms;  // measured epochs only
  std::vector<std::uint64_t> digests;
};

SteadyArm RunSteadyArm(const net::Topology& topo,
                       const flow::DemandMatrix& base, bool force_full) {
  const net::GroundTruthState state(topo);

  controlplane::PipelineOptions opts;
  opts.collector = bench::DefaultCollector();
  opts.collector.agent.rate_jitter = 0.0;  // steady state: honest signals repeat
  opts.infra.demand.measurement_noise = 0.0;  // aggregated demand repeats too
  opts.controller.algorithm = controlplane::RoutingAlgorithm::kShortestPath;
  opts.num_threads = 1;
  opts.force_full = force_full;
  controlplane::Pipeline pipeline(topo, opts, util::Rng(13));

  core::ValidatorOptions vopts;
  vopts.hardening.num_threads = 1;
  const core::Validator validator(topo, vopts);
  SteadyArm arm;
  const auto inner = validator.AsDeltaPipelineValidator();
  pipeline.SetDeltaValidator(
      [&arm, inner](const controlplane::ControllerInput& input,
                    const telemetry::NetworkSnapshot& snapshot,
                    const telemetry::FrameDelta* delta) {
        const Clock::time_point t0 = Clock::now();
        auto decision = inner(input, snapshot, delta);
        arm.validate_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
        return decision;
      });
  pipeline.Bootstrap(state, base);

  const std::size_t links = topo.link_count();
  const std::size_t perturbed = std::max<std::size_t>(1, links / 100);
  for (int epoch = 0; epoch < kSteadyWarmup + kSteadyMeasured; ++epoch) {
    // Same 1% window every epoch, epoch-varying factor: the changed-signal
    // set is exactly these links' tx+rx columns, nothing reverts behind
    // the window's back.
    const telemetry::SnapshotMutator nudge =
        [perturbed, epoch](telemetry::NetworkSnapshot& snap) {
          telemetry::SignalFrame& frame = snap.frame();
          const double factor = 1.0 + 0.001 * (epoch + 1);
          for (std::size_t k = 0; k < perturbed; ++k) {
            const net::LinkId e = static_cast<net::LinkId>(k);
            const std::optional<double> tx = frame.TxRate(e);
            if (!tx) continue;
            const double v = *tx * factor;
            frame.SetTxRate(e, v);
            frame.SetRxRate(e, v);  // symmetric: R1 keeps agreeing
          }
        };
    const auto r = pipeline.RunEpoch(state, base, nudge, {});
    arm.digests.push_back(r.decision.provenance.CanonicalDigest());
  }
  arm.validate_ms.erase(arm.validate_ms.begin(),
                        arm.validate_ms.begin() + kSteadyWarmup);
  return arm;
}

struct SteadyStateResult {
  double full_ms = 0.0;  // median validate+harden call, full recompute
  double inc_ms = 0.0;   // same, incremental
  double ratio = 0.0;
  bool digests_match = false;
  std::size_t perturbed_links = 0;
  std::size_t total_links = 0;
  // Incremental-arm skip counts per stage (out of warmup+measured epochs):
  // how often each stage rode the cache instead of recomputing.
  double skips_harden = 0.0;
  double skips_demand = 0.0;
  double skips_topology = 0.0;
  double skips_drain = 0.0;

  bool pass() const { return digests_match && ratio >= kSteadyMinRatio; }
  std::string ToJson() const {
    std::ostringstream os;
    os << "{\"topology\":\"waxman400\",\"measured_epochs\":" << kSteadyMeasured
       << ",\"perturbed_links_per_epoch\":" << perturbed_links
       << ",\"total_links\":" << total_links
       << ",\"full_validate_ms\":" << obs::JsonNumber(full_ms)
       << ",\"incremental_validate_ms\":" << obs::JsonNumber(inc_ms)
       << ",\"ratio\":" << obs::JsonNumber(ratio)
       << ",\"min_ratio\":" << obs::JsonNumber(kSteadyMinRatio)
       << ",\"digests_match\":" << (digests_match ? "true" : "false")
       << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
       << "}";
    return os.str();
  }
};

SteadyStateResult MeasureSteadyState() {
  util::Rng topo_rng(21);
  const net::Topology topo = net::Waxman(400, topo_rng);
  const flow::DemandMatrix base = BenchDemand(topo);

  const auto skip_count = [](const char* stage) {
    const obs::Counter* c = obs::MetricsRegistry::Global().FindCounter(
        "hodor_incremental_skips_total", {{"stage", stage}});
    return c ? c->value() : 0.0;
  };

  const SteadyArm full = RunSteadyArm(topo, base, /*force_full=*/true);
  const double base_harden = skip_count("harden");
  const double base_demand = skip_count("check-demand");
  const double base_topology = skip_count("check-topology");
  const double base_drain = skip_count("check-drain");
  const SteadyArm inc = RunSteadyArm(topo, base, /*force_full=*/false);

  SteadyStateResult r;
  r.skips_harden = skip_count("harden") - base_harden;
  r.skips_demand = skip_count("check-demand") - base_demand;
  r.skips_topology = skip_count("check-topology") - base_topology;
  r.skips_drain = skip_count("check-drain") - base_drain;
  r.full_ms = MedianMs(full.validate_ms);
  r.inc_ms = MedianMs(inc.validate_ms);
  r.ratio = r.inc_ms > 0.0 ? r.full_ms / r.inc_ms : 0.0;
  r.digests_match = full.digests == inc.digests;
  r.total_links = topo.link_count();
  r.perturbed_links = std::max<std::size_t>(1, r.total_links / 100);
  return r;
}

void PrintSteadyState(const SteadyStateResult& r) {
  util::TablePrinter table({"config", "validate+harden ms (median)", "ratio",
                            "digests"});
  table.AddRowValues("full recompute", util::FormatDouble(r.full_ms, 3), "-",
                     "-");
  table.AddRowValues("incremental", util::FormatDouble(r.inc_ms, 3),
                     util::FormatDouble(r.ratio, 2) + "x",
                     r.digests_match ? "match" : "DIVERGED");
  std::cout << table.ToString();
  std::cout << "incremental-arm cache hits (of "
            << kSteadyWarmup + kSteadyMeasured << " epochs): harden "
            << util::FormatDouble(r.skips_harden, 0) << ", demand "
            << util::FormatDouble(r.skips_demand, 0) << ", topology "
            << util::FormatDouble(r.skips_topology, 0) << ", drain "
            << util::FormatDouble(r.skips_drain, 0) << "\n";
  std::cout << "steady-state speedup " << util::FormatDouble(r.ratio, 2)
            << "x (floor " << util::FormatDouble(kSteadyMinRatio, 0)
            << "x): " << (r.ratio >= kSteadyMinRatio ? "PASS" : "FAIL")
            << "; digests "
            << (r.digests_match ? "bit-identical" : "DIVERGED") << "\n";
}

int RunSteadyStateGate() {
  bench::PrintHeader(
      "epoch_engine --steady-state",
      "incremental validation payoff gate (DESIGN §12)",
      "waxman400 seed=21 serial, zero noise, fixed demand, ~1% of links "
      "nudged per epoch (tx==rx), " + std::to_string(kSteadyMeasured) +
          " measured epochs after " + std::to_string(kSteadyWarmup) +
          " warm-up; pass: median validate+harden >= " +
          util::FormatDouble(kSteadyMinRatio, 0) +
          "x faster incrementally and digest parity");
  const SteadyStateResult r = MeasureSteadyState();
  PrintSteadyState(r);
  return r.pass() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  std::string trace_out;
  bool trace_overhead = false;
  bool timeseries_overhead = false;
  bool steady_state = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = std::string(arg.substr(12));
    } else if (arg == "--trace-overhead") {
      trace_overhead = true;
    } else if (arg == "--timeseries-overhead") {
      timeseries_overhead = true;
    } else if (arg == "--steady-state") {
      steady_state = true;
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nusage: bench_epoch_engine [--trace-out=PATH] "
                   "[--trace-overhead] [--timeseries-overhead] "
                   "[--steady-state]\n";
      return 2;
    }
  }
  if (trace_overhead) return RunTraceOverheadGate();
  if (timeseries_overhead) return RunTimeseriesOverheadGate();
  if (steady_state) return RunSteadyStateGate();
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool can_overlap = hardware_threads >= 2;
  bench::PrintHeader(
      "epoch_engine",
      "staged epoch engine: critical-path latency vs the serial loop",
      "sizes: Abilene n=12, Waxman n=100/400 seed=21 (sparse demand, SPF "
      "controller); staged threads=" + std::to_string(StagedThreads()) +
      "; sinks: flight recorder + health board + server rendering; "
      "10 measured epochs after 2 warm-up; demand drift as live_pipeline");

  struct Size {
    const char* tag;
    net::Topology topo;
  };
  util::Rng topo_rng(21);
  std::vector<Size> sizes;
  sizes.push_back({"abilene12", net::Abilene()});
  sizes.push_back({"waxman100", net::Waxman(100, topo_rng)});
  sizes.push_back({"waxman400", net::Waxman(400, topo_rng)});

  util::TablePrinter table({"topology", "nodes", "serial ms/epoch",
                            "staged ms/epoch", "speedup", "bottleneck",
                            "digests"});
  std::ostringstream reports;
  reports << "[";
  bool all_match = true;
  double improvement_400 = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Size& s = sizes[i];
    const RunResult serial =
        RunConfig(s.topo, /*staged=*/false, s.tag, true, trace_out);
    const RunResult staged =
        RunConfig(s.topo, /*staged=*/true, s.tag, true, trace_out);
    const bool match = serial.digests == staged.digests;
    all_match = all_match && match;
    const double speedup = serial.median_ms / staged.median_ms;
    if (s.topo.node_count() == 400) {
      improvement_400 = 1.0 - staged.median_ms / serial.median_ms;
    }
    table.AddRowValues(s.tag, s.topo.node_count(),
                       util::FormatDouble(serial.median_ms, 3),
                       util::FormatDouble(staged.median_ms, 3),
                       util::FormatDouble(speedup, 2) + "x",
                       staged.has_trace ? staged.trace.bottleneck : "-",
                       match ? "match" : "DIVERGED");
    reports << (i ? "," : "") << "{\"topology\":\"" << s.tag
            << "\",\"nodes\":" << s.topo.node_count()
            << ",\"serial_ms_per_epoch\":" << obs::JsonNumber(serial.median_ms)
            << ",\"staged_ms_per_epoch\":" << obs::JsonNumber(staged.median_ms)
            << ",\"speedup\":" << obs::JsonNumber(speedup)
            << ",\"digests_match\":" << (match ? "true" : "false");
    // Per-stage execution breakdown from the always-on tracer: where each
    // configuration's epoch wall time went, and what bottlenecks it.
    if (serial.has_trace || staged.has_trace) {
      reports << ",\"trace\":{";
      if (serial.has_trace) {
        reports << "\"serial\":" << serial.trace.ToJson();
      }
      if (staged.has_trace) {
        reports << (serial.has_trace ? "," : "")
                << "\"staged\":" << staged.trace.ToJson();
      }
      reports << "}";
    }
    reports << "}";
  }
  // The steady-state column (DESIGN §12): incremental vs full-recompute
  // validate+harden at waxman400 with ~1% of links changing per epoch.
  std::cout << table.ToString();
  std::cout << "\nsteady-state incremental validation (waxman400, ~1% of "
               "links nudged per epoch):\n";
  const SteadyStateResult steady = MeasureSteadyState();
  PrintSteadyState(steady);
  all_match = all_match && steady.digests_match;
  reports << ",{\"staged_threads\":" << StagedThreads()
          << ",\"hardware_threads\":" << hardware_threads
          << ",\"steady_state\":" << steady.ToJson() << "}]";
  std::cout << "\ncritical-path improvement at n=400: "
            << util::FormatPercent(improvement_400, 1)
            << " (acceptance floor 20%)\n"
            << "decision digests " << (all_match ? "bit-identical" : "DIVERGED")
            << " across serial/staged at every size\n";
  if (!can_overlap) {
    std::cout << "single hardware thread: displaced sink work cannot overlap "
                 "on another core, so the floor is reported but not "
                 "enforced; digest parity remains the hard gate\n";
  }
  bench::DumpObsSnapshot("epoch_engine", reports.str());
  const bool floor_ok = improvement_400 >= 0.20 || !can_overlap;
  return all_match && floor_ok ? 0 : 1;
}
