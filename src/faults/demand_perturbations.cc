#include "faults/demand_perturbations.h"

#include <algorithm>

#include "util/status.h"

namespace hodor::faults {

namespace {

std::vector<std::pair<net::NodeId, net::NodeId>> PickPositiveEntries(
    const flow::DemandMatrix& d, std::size_t k, util::Rng& rng) {
  auto pairs = d.Pairs();
  HODOR_CHECK_MSG(pairs.size() >= k, "not enough positive entries to perturb");
  std::vector<std::size_t> idx = rng.SampleWithoutReplacement(pairs.size(), k);
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  out.reserve(k);
  for (std::size_t i : idx) out.push_back(pairs[i]);
  return out;
}

}  // namespace

PerturbedDemand ZeroEntries(const flow::DemandMatrix& d, std::size_t k,
                            util::Rng& rng) {
  PerturbedDemand out{d, PickPositiveEntries(d, k, rng)};
  for (const auto& [i, j] : out.touched) out.matrix.Set(i, j, 0.0);
  return out;
}

PerturbedDemand ScaleEntries(const flow::DemandMatrix& d, std::size_t k,
                             double factor, util::Rng& rng) {
  HODOR_CHECK(factor >= 0.0);
  PerturbedDemand out{d, PickPositiveEntries(d, k, rng)};
  for (const auto& [i, j] : out.touched) {
    out.matrix.Set(i, j, d.At(i, j) * factor);
  }
  return out;
}

PerturbedDemand NoiseAllEntries(const flow::DemandMatrix& d, double sigma,
                                util::Rng& rng) {
  HODOR_CHECK(sigma >= 0.0);
  PerturbedDemand out{d, {}};
  for (const auto& [i, j] : d.Pairs()) {
    const double noisy =
        std::max(0.0, d.At(i, j) * (1.0 + rng.Gaussian(0.0, sigma)));
    out.matrix.Set(i, j, noisy);
    out.touched.emplace_back(i, j);
  }
  return out;
}

PerturbedDemand SwapEntries(const flow::DemandMatrix& d, std::size_t k,
                            util::Rng& rng) {
  PerturbedDemand out{d, PickPositiveEntries(d, k * 2, rng)};
  for (std::size_t p = 0; p + 1 < out.touched.size(); p += 2) {
    const auto& [i1, j1] = out.touched[p];
    const auto& [i2, j2] = out.touched[p + 1];
    const double v1 = out.matrix.At(i1, j1);
    const double v2 = out.matrix.At(i2, j2);
    out.matrix.Set(i1, j1, v2);
    out.matrix.Set(i2, j2, v1);
  }
  return out;
}

}  // namespace hodor::faults
