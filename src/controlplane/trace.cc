#include "controlplane/trace.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace hodor::controlplane {

void EpochTrace::Record(const EpochResult& result, bool fault_active) {
  EpochRecord r;
  r.epoch = result.epoch;
  r.demand_satisfaction = result.metrics.demand_satisfaction;
  r.max_link_utilization = result.metrics.max_link_utilization;
  r.fault_active = fault_active;
  r.validated = result.validated;
  r.rejected = result.validated && !result.decision.accept;
  r.used_fallback = result.used_fallback;
  records_.push_back(r);
}

AvailabilityReport EpochTrace::Summarize(double satisfaction_slo) const {
  AvailabilityReport report;
  report.epochs = records_.size();
  if (records_.empty()) return report;

  double sum = 0.0;
  std::size_t current_run = 0;
  for (const EpochRecord& r : records_) {
    sum += r.demand_satisfaction;
    report.worst_satisfaction =
        std::min(report.worst_satisfaction, r.demand_satisfaction);
    const bool violating = r.demand_satisfaction < satisfaction_slo;
    if (violating) {
      ++report.slo_violations;
      ++current_run;
      if (current_run == 1) ++report.outage_episodes;
      report.longest_outage_epochs =
          std::max(report.longest_outage_epochs, current_run);
    } else {
      current_run = 0;
    }
    if (r.fault_active) {
      ++report.faulty_epochs;
      if (r.rejected) ++report.faulty_epochs_rejected;
    } else if (r.rejected) {
      ++report.clean_epochs_rejected;
    }
  }
  report.mean_satisfaction = sum / static_cast<double>(records_.size());
  report.availability =
      1.0 - static_cast<double>(report.slo_violations) /
                static_cast<double>(report.epochs);
  return report;
}

std::string AvailabilityReport::ToString() const {
  std::ostringstream os;
  os << "availability=" << util::FormatPercent(availability, 2) << " ("
     << slo_violations << "/" << epochs << " epochs below SLO, "
     << outage_episodes << " episodes, longest " << longest_outage_epochs
     << ")  mean_sat=" << util::FormatPercent(mean_satisfaction, 2)
     << " worst=" << util::FormatPercent(worst_satisfaction, 2)
     << "  detection=" << faulty_epochs_rejected << "/" << faulty_epochs
     << " faulty epochs rejected, " << clean_epochs_rejected
     << " clean rejections";
  return os.str();
}

}  // namespace hodor::controlplane
