file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_example.dir/bench_fig3_example.cc.o"
  "CMakeFiles/bench_fig3_example.dir/bench_fig3_example.cc.o.d"
  "bench_fig3_example"
  "bench_fig3_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
