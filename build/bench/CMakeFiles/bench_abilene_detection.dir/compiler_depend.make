# Empty compiler generated dependencies file for bench_abilene_detection.
# This may be replaced when dependencies are built.
