// A small bounded single-producer/single-consumer queue: the hand-off
// between the epoch engine's control thread and its sink thread.
//
// Design constraints, in order:
//   - Bounded + blocking on both ends. The producer blocks when the queue
//     is full (backpressure: the replay log must stay complete, so epochs
//     are never dropped) and the consumer blocks when it is empty.
//   - Drain-on-close. Close() wakes both ends; Pop keeps returning queued
//     items until the ring is empty and only then reports closed, so a
//     stopping engine always delivers every recorded epoch.
//   - Simplicity over throughput. The queue moves a handful of pointers
//     per epoch (milliseconds apart), so a mutex + two condition variables
//     is the right cost/assurance trade-off — TSan can reason about it,
//     and there is no lock-free subtlety to audit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "util/exec_trace.h"
#include "util/status.h"

namespace hodor::util {

template <typename T>
class BoundedSpscQueue {
 public:
  explicit BoundedSpscQueue(std::size_t capacity) : ring_(capacity) {
    HODOR_CHECK_MSG(capacity > 0, "BoundedSpscQueue capacity must be > 0");
  }

  BoundedSpscQueue(const BoundedSpscQueue&) = delete;
  BoundedSpscQueue& operator=(const BoundedSpscQueue&) = delete;

  // Attaches an execution tracer: every Push emits a kQueuePush event on
  // the producer's stream and every Pop a kQueuePop event on the
  // consumer's (arg = queue_id, detail = depth after the operation,
  // duration = time spent blocked, epoch = the tracer's current epoch).
  // Call before the threads start exchanging items — the fields are
  // plain, published to the consumer by whatever starts its thread.
  void AttachTracer(ExecTracer* tracer, std::uint16_t queue_id,
                    ExecThreadHandle producer, ExecThreadHandle consumer) {
    tracer_ = tracer;
    queue_id_ = queue_id;
    producer_ = producer;
    consumer_ = consumer;
  }

  // Blocks while the queue is full. Pushing after Close() is a programmer
  // error (the producer owns the close decision in an SPSC pairing).
  void Push(T value) {
    const std::uint64_t t0 = tracer_ ? tracer_->NowNs() : 0;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return count_ < ring_.size() || closed_; });
      HODOR_CHECK_MSG(!closed_, "Push on a closed BoundedSpscQueue");
      ring_[(head_ + count_) % ring_.size()] = std::move(value);
      depth = ++count_;
    }
    not_empty_.notify_one();
    if (tracer_) {
      tracer_->Emit(producer_,
                    ExecEvent{t0, tracer_->NowNs() - t0,
                              tracer_->current_epoch(),
                              ExecEventKind::kQueuePush, queue_id_,
                              static_cast<std::uint32_t>(depth)});
    }
  }

  // Blocks while the queue is empty and open. Returns false — without
  // touching `out` — once the queue is closed *and* fully drained.
  bool Pop(T& out) {
    const std::uint64_t t0 = tracer_ ? tracer_->NowNs() : 0;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
      if (count_ == 0) return false;  // closed and drained
      out = std::move(ring_[head_]);
      head_ = (head_ + 1) % ring_.size();
      depth = --count_;
    }
    not_full_.notify_one();
    if (tracer_) {
      tracer_->Emit(consumer_,
                    ExecEvent{t0, tracer_->NowNs() - t0,
                              tracer_->current_epoch(),
                              ExecEventKind::kQueuePop, queue_id_,
                              static_cast<std::uint32_t>(depth)});
    }
    return true;
  }

  // Marks the queue closed and wakes both ends. Items already queued stay
  // poppable (drain-on-close); idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return ring_.size(); }

 private:
  ExecTracer* tracer_ = nullptr;
  std::uint16_t queue_id_ = 0;
  ExecThreadHandle producer_;
  ExecThreadHandle consumer_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace hodor::util
