// Hodor step 3 for the demand input (paper §4.1).
//
// The demand matrix D and the hardened external interface counters are
// interdependent: everything entering the WAN at router i is demand from i,
// everything leaving at j is demand to j. This yields 2·|V| invariants:
//
//   ingress(i):  ext_in(i)  ≈ Σ_j D(i, j)   within τ_e
//   egress(j):   ext_out(j) ≈ Σ_i D(i, j)   within τ_e
//
// Not enough to re-derive all v² entries, but enough to significantly
// constrain D — and to catch the §2.2 demand outages (partial aggregation,
// end-host throttling mismatches).
#pragma once

#include <string>
#include <vector>

#include "core/hardened_state.h"
#include "flow/demand_matrix.h"
#include "net/topology.h"

namespace hodor::obs {
class MetricsRegistry;
struct DecisionRecord;
}  // namespace hodor::obs

namespace hodor::core {

enum class DemandInvariantKind { kIngress, kEgress };

struct DemandViolation {
  net::NodeId node;
  DemandInvariantKind kind;
  double counter_value = 0.0;  // hardened external counter
  double demand_sum = 0.0;     // row/column sum of the input D
  double relative_diff = 0.0;
  // The effective tolerance the violation was judged against (τ_e widened
  // by the node's scalar confidence; see DemandCheckOptions).
  double tau_eff = 0.0;
  // The node's hardened scalar confidence at evaluation time.
  double confidence = 0.0;

  std::string ToString(const net::Topology& topo) const;
};

struct DemandCheckResult {
  std::vector<DemandViolation> violations;
  // Invariants evaluated (those whose hardened counter was available).
  std::size_t checked_invariants = 0;
  // Invariants skipped because the hardened counter was unknown.
  std::size_t skipped_invariants = 0;
  // Egress invariants were suppressed because the hardened drop counters
  // show significant in-network loss (see below).
  bool egress_skipped_due_to_loss = false;
  // Observed loss fraction (Σ hardened drops / Σ hardened ext_in).
  double network_loss_fraction = 0.0;

  bool ok() const { return violations.empty(); }
};

struct DemandCheckOptions {
  // τ_e: relative equality tolerance (paper: 0.02).
  double tau_e = 0.02;
  // Below this (Gbps) a counter/sum pair is treated as "both idle" and not
  // compared (avoids flagging noise around zero).
  double idle_floor = 1e-6;
  // The egress invariant (ext_out(j) ≈ Σ_i D(i,j)) presumes a loss-free
  // network: when routers are visibly dropping traffic (e.g. moments after
  // a real failure, before the controller reroutes), egress counters
  // legitimately undershoot the demand. When the hardened drop counters
  // show loss above this fraction of admitted traffic, egress invariants
  // are skipped rather than reported as input violations — the drops
  // themselves are the actionable signal, and ingress invariants still
  // guard the demand input.
  double max_network_loss_fraction = 0.01;

  // Confidence scaling (CrossCheck): the effective tolerance at node v is
  //
  //   τ_eff(v) = τ_e · (1 + confidence_scaling · (1 − c(v)))
  //
  // where c(v) is the hardened scalar confidence of v's external counters
  // (HardenedState::scalar_confidence). A fully corroborated counter
  // (c = 1) keeps τ_e exactly; an uncorroborated one widens up to
  // (1 + confidence_scaling)·τ_e — the check demands less precision from
  // inputs the hardening layer itself could not vouch for, trading a
  // little detection sharpness at suspect nodes for far fewer false
  // positives on miscalibrated-but-honest counters (EXPERIMENTS E16).
  // 0 restores fixed thresholds.
  double confidence_scaling = 1.0;

  // Observability: invariant/violation counters are emitted here
  // (nullptr → the process-global registry).
  obs::MetricsRegistry* metrics = nullptr;
};

// Declared input columns (DESIGN.md §12): on the hardened side the check
// reads only the node scalars (ext_in for ingress, ext_out for egress,
// dropped for the loss gauge, scalar_confidence for the effective
// tolerances — all covered by HardenDelta::scalars_changed); on the
// controller-input side only the demand matrix. When both are unchanged
// between epochs the incremental validator replays the prior verdict
// instead of re-evaluating.
inline constexpr HardenedFacets kDemandCheckFacets{.scalars = true};

// When `provenance` is given, one InvariantRecord per ingress/egress
// invariant (evaluated or skipped) is appended — the paper's 2·|V| demand
// invariants, each with its residual and τ_e.
DemandCheckResult CheckDemand(const net::Topology& topo,
                              const HardenedState& hardened,
                              const flow::DemandMatrix& demand_input,
                              const DemandCheckOptions& opts = {},
                              obs::DecisionRecord* provenance = nullptr);

}  // namespace hodor::core
