// Decision provenance: the operator-facing audit record behind every
// accept/reject.
//
// CrossCheck (PAPERS.md) argues a deployable validator must *explain* its
// verdicts: which invariant fired, with what residual, against what
// threshold. A DecisionRecord captures exactly that for one validated
// epoch — one InvariantRecord per invariant evaluated (the R1–R4 hardening
// repairs, the 2·|V| demand conservation invariants, per-link topology
// comparisons, and drain consistency checks) — and serializes to JSON for
// audit pipelines.
//
// This lives in obs/ (below core/ and controlplane/) so the pipeline can
// carry a DecisionRecord inside each EpochResult without depending on the
// validator that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hodor::obs {

// FNV-1a 64-bit over a byte string: the digest primitive behind
// DecisionRecord::CanonicalDigest (and the flight recorder's recorded
// verdict fingerprints).
std::uint64_t Fnv1a64(std::string_view bytes);

enum class InvariantVerdict {
  kPass = 0,  // evaluated, within threshold
  kFail,      // evaluated, fired (residual beyond threshold)
  kSkipped,   // could not be evaluated (signal unknown / suppressed)
};

const char* InvariantVerdictName(InvariantVerdict verdict);

// One invariant evaluation. `residual` and `threshold` share a unit per
// check family (relative difference for demand, evidence confidence for
// topology, 0/1 mismatch indicators for drain).
struct InvariantRecord {
  std::string check;      // "hardening" | "demand" | "topology" | "drain"
  std::string invariant;  // e.g. "ingress(SEAT)", "link-state(A->B)"
  double residual = 0.0;
  double threshold = 0.0;
  InvariantVerdict verdict = InvariantVerdict::kPass;
  std::string detail;  // optional operator-facing elaboration

  std::string ToJson() const;
};

struct DecisionRecord {
  std::uint64_t epoch = 0;
  bool accept = true;
  std::string summary;  // e.g. the report's one-line verdict
  std::vector<InvariantRecord> invariants;

  std::size_t evaluated_count() const;  // pass + fail
  std::size_t failed_count() const;
  std::size_t skipped_count() const;
  // First firing invariant, nullptr when everything passed. This is the
  // record an alert should lead with.
  const InvariantRecord* FirstFailure() const;

  void Add(InvariantRecord record) { invariants.push_back(std::move(record)); }

  // Schema (see README "Observability"):
  //   {"epoch":N,"accept":bool,"summary":"...","evaluated":N,"failed":N,
  //    "skipped":N,"invariants":[{"check":"demand","invariant":"...",
  //    "residual":x,"threshold":y,"verdict":"fail","detail":"..."}]}
  std::string ToJson() const;

  // Canonical text: every field of every invariant, doubles rendered
  // round-trip exact (%.17g), one line per invariant. Two records have the
  // same canonical text iff they are bit-identical, which is what makes
  // the digest below usable as a replay-divergence fingerprint.
  void AppendCanonicalText(std::string& out) const;

  // Fnv1a64 over the canonical text. The flight recorder stores this per
  // epoch; replay recomputes it from fresh validation and any mismatch
  // pins the exact epoch whose decision changed.
  std::uint64_t CanonicalDigest() const;
};

}  // namespace hodor::obs
