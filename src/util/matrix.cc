#include "util/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace hodor::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

double& Matrix::At(std::size_t r, std::size_t c) {
  HODOR_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  HODOR_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  HODOR_CHECK_MSG(cols_ == other.rows_, "matrix product dimension mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  HODOR_CHECK_MSG(v.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += At(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

std::size_t Matrix::Rank(double tol) const {
  Matrix work = *this;
  std::size_t rank = 0;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
    // Partial pivoting: pick the largest-magnitude entry in this column.
    std::size_t best = pivot_row;
    for (std::size_t r = pivot_row + 1; r < rows_; ++r) {
      if (std::fabs(work.At(r, col)) > std::fabs(work.At(best, col))) best = r;
    }
    if (std::fabs(work.At(best, col)) <= tol) continue;
    if (best != pivot_row) {
      for (std::size_t c = 0; c < cols_; ++c) {
        std::swap(work.At(best, c), work.At(pivot_row, c));
      }
    }
    const double pivot = work.At(pivot_row, col);
    for (std::size_t r = pivot_row + 1; r < rows_; ++r) {
      const double factor = work.At(r, col) / pivot;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < cols_; ++c) {
        work.At(r, c) -= factor * work.At(pivot_row, c);
      }
    }
    ++pivot_row;
    ++rank;
  }
  return rank;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

bool Matrix::AlmostEqual(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace hodor::util
