#include "util/clock.h"

#include <gtest/gtest.h>

#include <chrono>

namespace hodor::util {
namespace {

TEST(FormatUtcTimestamp, RendersKnownInstant) {
  // 2024-11-11T12:30:45.250Z
  const auto tp = std::chrono::system_clock::time_point(
      std::chrono::milliseconds(1731328245250LL));
  EXPECT_EQ(FormatUtcTimestamp(tp), "2024-11-11T12:30:45.250Z");
}

TEST(FormatUtcTimestamp, EpochIsZulu) {
  EXPECT_EQ(FormatUtcTimestamp(std::chrono::system_clock::time_point{}),
            "1970-01-01T00:00:00.000Z");
}

TEST(UtcTimestampNow, HasIso8601Shape) {
  const std::string ts = UtcTimestampNow();
  ASSERT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');
}

}  // namespace
}  // namespace hodor::util
