// A small bounded single-producer/single-consumer queue: the hand-off
// between the epoch engine's control thread and its sink thread.
//
// Design constraints, in order:
//   - Bounded + blocking on both ends. The producer blocks when the queue
//     is full (backpressure: the replay log must stay complete, so epochs
//     are never dropped) and the consumer blocks when it is empty.
//   - Drain-on-close. Close() wakes both ends; Pop keeps returning queued
//     items until the ring is empty and only then reports closed, so a
//     stopping engine always delivers every recorded epoch.
//   - Simplicity over throughput. The queue moves a handful of pointers
//     per epoch (milliseconds apart), so a mutex + two condition variables
//     is the right cost/assurance trade-off — TSan can reason about it,
//     and there is no lock-free subtlety to audit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hodor::util {

template <typename T>
class BoundedSpscQueue {
 public:
  explicit BoundedSpscQueue(std::size_t capacity) : ring_(capacity) {
    HODOR_CHECK_MSG(capacity > 0, "BoundedSpscQueue capacity must be > 0");
  }

  BoundedSpscQueue(const BoundedSpscQueue&) = delete;
  BoundedSpscQueue& operator=(const BoundedSpscQueue&) = delete;

  // Blocks while the queue is full. Pushing after Close() is a programmer
  // error (the producer owns the close decision in an SPSC pairing).
  void Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return count_ < ring_.size() || closed_; });
    HODOR_CHECK_MSG(!closed_, "Push on a closed BoundedSpscQueue");
    ring_[(head_ + count_) % ring_.size()] = std::move(value);
    ++count_;
    lock.unlock();
    not_empty_.notify_one();
  }

  // Blocks while the queue is empty and open. Returns false — without
  // touching `out` — once the queue is closed *and* fully drained.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    if (count_ == 0) return false;  // closed and drained
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Marks the queue closed and wakes both ends. Items already queued stay
  // poppable (drain-on-close); idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace hodor::util
