// Lightweight error-handling vocabulary for the Hodor libraries.
//
// We follow an expected-style discipline: fallible operations return
// StatusOr<T> (or Status when there is no value), and callers must branch on
// ok(). Exceptions are reserved for programmer errors (precondition
// violations), which raise std::logic_error via HODOR_CHECK.
#pragma once

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace hodor::util {

// Error categories. Deliberately small: the libraries in this repo are
// in-process simulators and validators, not RPC surfaces.
enum class StatusCode {
  kOk,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // a referenced entity does not exist
  kFailedPrecondition,// operation not valid in the current state
  kOutOfRange,        // index/value outside the permitted range
  kUnavailable,       // data missing (e.g. signal never collected)
  kInternal,          // invariant violation inside the library
};

// Human-readable name of a StatusCode, e.g. "InvalidArgument".
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

// Value-semantic error carrier: a code plus a message.
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "InvalidArgument: <message>".
  std::string ToString() const {
    if (ok()) return "Ok";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Result-or-error. Accessing value() on an error is a programmer error and
// throws std::logic_error with the underlying status message.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}            // NOLINT(google-explicit-constructor)
  StatusOr(T&& value) : value_(std::move(value)) {}      // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) { // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      throw std::logic_error("StatusOr constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return value_.has_value() ? *value_ : fallback;
  }

 private:
  void EnsureOk() const {
    if (!value_.has_value()) {
      throw std::logic_error("StatusOr::value() on error: " + status_.ToString());
    }
  }

  std::optional<T> value_;
  Status status_ = Status::Ok();
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& extra) {
  std::ostringstream os;
  os << "HODOR_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw std::logic_error(os.str());
}
}  // namespace internal

}  // namespace hodor::util

// Precondition check: throws std::logic_error on failure. Used for
// programmer errors only; data-dependent failures return Status.
#define HODOR_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::hodor::util::internal::CheckFailed(#expr, __FILE__, __LINE__, "");    \
    }                                                                         \
  } while (0)

#define HODOR_CHECK_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::hodor::util::internal::CheckFailed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (0)

// Propagate a non-OK Status from an expression returning Status.
#define HODOR_RETURN_IF_ERROR(expr)                    \
  do {                                                 \
    ::hodor::util::Status hodor_status_ = (expr);      \
    if (!hodor_status_.ok()) return hodor_status_;     \
  } while (0)
