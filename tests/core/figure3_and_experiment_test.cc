#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/figure3_example.h"
#include "core/hardening.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "util/logging.h"

namespace hodor::core {
namespace {

TEST(Figure3Example, HonestSnapshotIsInternallyConsistent) {
  const Figure3Example fig;
  // The constructed counters satisfy flow conservation at every router —
  // otherwise the figure's repair narrative would be ill-posed.
  const HardenedState hs = HardeningEngine().Harden(fig.HonestSnapshot());
  EXPECT_EQ(hs.flagged_rate_count, 0u);
  // And the demand matrix satisfies the 2·v invariants against them.
  const auto check = CheckDemand(fig.topology(), hs, fig.Demand());
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(check.checked_invariants, 6u);
}

TEST(Figure3Example, DemandMatchesFigure) {
  const Figure3Example fig;
  const flow::DemandMatrix d = fig.Demand();
  EXPECT_DOUBLE_EQ(d.RowSum(fig.a()), 76.0);
  EXPECT_DOUBLE_EQ(d.ColSum(fig.b()), 75.0);
  EXPECT_DOUBLE_EQ(d.Total(), 104.0);
}

TEST(Figure3Example, FaultySnapshotHasTheFigureNumbers) {
  const Figure3Example fig;
  const auto snap = fig.FaultySnapshot();
  EXPECT_DOUBLE_EQ(snap.TxRate(fig.ab()).value(),
                   Figure3Example::kFaultyTxAB);
  EXPECT_DOUBLE_EQ(snap.RxRate(fig.ab()).value(),
                   Figure3Example::kTrueRateAB);
}

TEST(Figure3Example, TrueRatesRouteTheDemand) {
  // The figure's link rates are exactly what SPF routing of its demand
  // produces (A->C transits B).
  const Figure3Example fig;
  net::GroundTruthState state(fig.topology());
  flow::RoutingPlan plan;
  auto path = [&](net::NodeId s, net::NodeId t,
                  std::initializer_list<net::LinkId> links) {
    plan.SetPaths(s, t, {flow::WeightedPath{net::Path(links), 1.0}});
  };
  path(fig.a(), fig.b(), {fig.ab()});
  path(fig.a(), fig.c(), {fig.ab(), fig.bc()});
  path(fig.c(), fig.b(), {fig.cb()});
  path(fig.c(), fig.a(), {fig.ca()});
  const auto sim =
      flow::SimulateFlow(fig.topology(), state, fig.Demand(), plan);
  for (net::LinkId e : fig.topology().LinkIds()) {
    EXPECT_NEAR(sim.carried[e.value()], fig.TrueRate(e), 1e-9)
        << fig.topology().LinkName(e);
  }
}

struct ExperimentTest : ::testing::Test {
  static void SetUpTestSuite() {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  }
  static void TearDownTestSuite() {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
  }
};

TEST_F(ExperimentTest, RunScenarioIsDeterministic) {
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);
  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);
  ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;
  const auto* sc = catalog.Find("partial-demand").value();
  const auto a = RunScenario(topo, *sc, demand, opts);
  const auto b = RunScenario(topo, *sc, demand, opts);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_DOUBLE_EQ(a.with_hodor.demand_satisfaction,
                   b.with_hodor.demand_satisfaction);
  EXPECT_DOUBLE_EQ(a.no_validation.demand_satisfaction,
                   b.no_validation.demand_satisfaction);
}

TEST_F(ExperimentTest, OracleArmAlwaysAtLeastAsGoodAsNoValidation) {
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);
  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);
  ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;
  for (const auto& sc : catalog.scenarios()) {
    const auto r = RunScenario(topo, sc, demand, opts);
    EXPECT_GE(r.oracle.demand_satisfaction + 1e-6,
              r.no_validation.demand_satisfaction)
        << sc.id;
  }
}

TEST_F(ExperimentTest, StaleDemandPatternScenarioDetected) {
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);
  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);
  ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;
  const auto* sc = catalog.Find("stale-demand-pattern").value();
  const auto r = RunScenario(topo, *sc, demand, opts);
  EXPECT_TRUE(r.detected) << r.detection_summary;
  // The rotated matrix preserves the total demand — that is the point.
  EXPECT_TRUE(r.fallback_used);
}

}  // namespace
}  // namespace hodor::core
