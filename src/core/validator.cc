#include "core/validator.h"

#include <array>
#include <sstream>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/strings.h"

namespace hodor::core {

namespace {

// "nullptr means global" composes across layers: a validator-level
// registry/trace reaches the hardening engine and the checks unless those
// options name their own.
ValidatorOptions PropagateObs(ValidatorOptions opts) {
  if (!opts.hardening.metrics) opts.hardening.metrics = opts.metrics;
  if (!opts.hardening.trace) opts.hardening.trace = opts.trace;
  if (!opts.demand.metrics) opts.demand.metrics = opts.metrics;
  if (!opts.topology.metrics) opts.topology.metrics = opts.metrics;
  return opts;
}

}  // namespace

Validator::Validator(const net::Topology& topo, ValidatorOptions opts)
    : topo_(&topo), opts_(PropagateObs(opts)), engine_(opts_.hardening) {}

std::string ValidationReport::Describe(const net::Topology& topo) const {
  std::ostringstream os;
  os << hardened.Summary() << "\n";
  for (const auto& v : demand.violations) {
    os << "  [demand]   " << v.ToString(topo) << "\n";
  }
  for (const auto& v : topology.violations) {
    os << "  [topology] " << v.ToString(topo) << "\n";
  }
  for (const auto& v : drain.violations) {
    os << "  [drain]    " << v.ToString(topo) << "\n";
  }
  for (net::NodeId n : drain.warnings_drained_but_active) {
    os << "  [drain]    warning: " << topo.node(n).name
       << " drained but carrying traffic\n";
  }
  return os.str();
}

std::string ValidationReport::Summary() const {
  if (ok()) return "ACCEPT";
  std::ostringstream os;
  os << "REJECT: " << violation_count() << " violations (demand:"
     << demand.violations.size() << " topology:" << topology.violations.size()
     << " drain:" << drain.violations.size() << ")";
  return os.str();
}

ValidationReport Validator::Validate(
    const controlplane::ControllerInput& input,
    const telemetry::NetworkSnapshot& snapshot) const {
  const std::uint64_t epoch = snapshot.epoch();
  ValidationReport report;
  obs::DecisionRecord* prov =
      opts_.record_provenance ? &report.provenance : nullptr;
  if (prov) {
    // Steady state emits one record per directed link (topology), two per
    // physical link (drain symmetry + intent), and four per node (drain
    // intent + liveness, demand ingress + egress) = 2*links + 4*nodes;
    // the slack absorbs hardening-repair records. Pre-sizing keeps the
    // audit trail from reallocating mid-validation.
    prov->invariants.reserve(2 * topo_->link_count() +
                             4 * topo_->node_count() + 128);
  }

  engine_.HardenInto(snapshot, report.hardened);  // emits the "harden" span

  if (prov) AppendHardeningProvenance(report.hardened, *prov);
  util::ThreadPool* pool = engine_.pool();
  const int enabled_checks = static_cast<int>(opts_.check_demand) +
                             static_cast<int>(opts_.check_topology) +
                             static_cast<int>(opts_.check_drain);
  if (pool != nullptr && enabled_checks >= 2) {
    RunChecksParallel(input, epoch, *pool, report, prov);
  } else {
    if (opts_.check_demand) {
      obs::StageSpan span(obs::Stage::kCheckDemand, epoch, opts_.metrics,
                          opts_.trace);
      report.demand = CheckDemand(*topo_, report.hardened, input.demand,
                                  opts_.demand, prov);
    }
    if (opts_.check_topology) {
      obs::StageSpan span(obs::Stage::kCheckTopology, epoch, opts_.metrics,
                          opts_.trace);
      report.topology = CheckTopology(*topo_, report.hardened,
                                      input.link_available, opts_.topology,
                                      prov);
    }
    if (opts_.check_drain) {
      obs::StageSpan span(obs::Stage::kCheckDrain, epoch, opts_.metrics,
                          opts_.trace);
      report.drain = CheckDrains(*topo_, report.hardened, input.node_drained,
                                 input.link_drained, opts_.metrics, prov);
    }
  }

  report.provenance.epoch = epoch;
  report.provenance.accept = report.ok();
  report.provenance.summary = report.Summary();

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_validations_total", {}, "Inputs validated")
      .Increment();
  if (!report.ok()) {
    reg.GetCounter("hodor_validation_rejects_total", {},
                   "Inputs rejected by validation")
        .Increment();
  }
  return report;
}

void Validator::RunChecksParallel(const controlplane::ControllerInput& input,
                                  std::uint64_t epoch, util::ThreadPool& pool,
                                  ValidationReport& report,
                                  obs::DecisionRecord* prov) const {
  // Shard registries inherit the main registry's options so histograms
  // merged back (stage spans, check counters) carry identical bounds.
  for (auto& shard : check_shards_) {
    if (!shard) {
      shard = std::make_unique<obs::MetricsRegistry>(
          obs::ResolveRegistry(opts_.metrics).options());
    }
  }

  // Check slots in the serial order the single-threaded path runs them.
  enum : int { kDemand = 0, kTopology = 1, kDrain = 2 };
  std::array<int, 3> tasks{};
  std::size_t task_count = 0;
  if (opts_.check_demand) tasks[task_count++] = kDemand;
  if (opts_.check_topology) tasks[task_count++] = kTopology;
  if (opts_.check_drain) tasks[task_count++] = kDrain;

  std::array<obs::DecisionRecord, 3> sub;
  std::array<obs::SpanRecord, 3> span_records;
  // Dynamic task assignment is fine here: each check writes only its own
  // report member, sub-record, and shard; determinism comes from the
  // fixed-order integration below, not from which worker ran what.
  pool.Run(task_count, [&](std::size_t i) {
    const int kind = tasks[i];
    obs::MetricsRegistry* shard = check_shards_[kind].get();
    obs::DecisionRecord* sub_prov = prov ? &sub[kind] : nullptr;
    switch (kind) {
      case kDemand: {
        obs::StageSpan span(obs::Stage::kCheckDemand, epoch, shard, nullptr);
        DemandCheckOptions opts = opts_.demand;
        opts.metrics = shard;
        report.demand = CheckDemand(*topo_, report.hardened, input.demand,
                                    opts, sub_prov);
        span_records[kDemand] = span.End();
        break;
      }
      case kTopology: {
        obs::StageSpan span(obs::Stage::kCheckTopology, epoch, shard,
                            nullptr);
        TopologyCheckOptions opts = opts_.topology;
        opts.metrics = shard;
        report.topology = CheckTopology(*topo_, report.hardened,
                                        input.link_available, opts, sub_prov);
        span_records[kTopology] = span.End();
        break;
      }
      case kDrain: {
        obs::StageSpan span(obs::Stage::kCheckDrain, epoch, shard, nullptr);
        report.drain = CheckDrains(*topo_, report.hardened,
                                   input.node_drained, input.link_drained,
                                   shard, sub_prov);
        span_records[kDrain] = span.End();
        break;
      }
    }
  });

  // Deterministic integration, in the serial order: trace lines, metric
  // shard merges, and provenance splices all happen demand → topology →
  // drain on this thread, so every observable output matches the serial
  // path bit for bit.
  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  for (std::size_t i = 0; i < task_count; ++i) {
    const int kind = tasks[i];
    if (opts_.trace) opts_.trace->Write(span_records[kind]);
    reg.MergeFrom(*check_shards_[kind]);
    // Hand the shard back for whichever worker picks it up next epoch
    // (Reset re-binds to this thread, then releases again).
    check_shards_[kind]->ReleaseOwnerThread();
    check_shards_[kind]->Reset();
    if (prov) {
      for (obs::InvariantRecord& rec : sub[kind].invariants) {
        prov->Add(std::move(rec));
      }
    }
  }
}

void Validator::AppendHardeningProvenance(const HardenedState& hardened,
                                          obs::DecisionRecord& record) const {
  const double tau_h = engine_.options().tau_h;
  for (std::uint32_t i = 0; i < topo_->link_count(); ++i) {
    const net::LinkId e(i);
    const HardenedRate& r = hardened.rates[e.value()];
    if (!r.flagged && r.origin == RateOrigin::kAgreeing) continue;
    obs::InvariantRecord rec;
    rec.check = "hardening";
    rec.invariant = "r1-symmetry(" + topo_->LinkNameRef(e) + ")";
    rec.threshold = tau_h;
    if (r.rejected_value.has_value() && r.value.has_value()) {
      rec.residual = util::RelativeDifference(*r.rejected_value, *r.value);
    }
    switch (r.origin) {
      case RateOrigin::kAgreeing:
        continue;  // unflagged handled above; nothing to report
      case RateOrigin::kRepaired:
        rec.verdict = obs::InvariantVerdict::kPass;
        rec.detail = "repaired via flow conservation (R2), confidence " +
                     util::FormatDouble(r.confidence, 2);
        break;
      case RateOrigin::kSingleWitness:
        rec.verdict = obs::InvariantVerdict::kPass;
        rec.detail = "single witness accepted, confidence " +
                     util::FormatDouble(r.confidence, 2);
        break;
      case RateOrigin::kUnknown:
        rec.verdict = obs::InvariantVerdict::kSkipped;
        rec.detail = "rate unrecoverable after R1-R4";
        break;
    }
    record.Add(std::move(rec));
  }
  for (std::uint32_t i = 0; i < topo_->link_count(); ++i) {
    const net::LinkId e(i);
    // Status disagreements, once per physical link.
    if (topo_->link(e).reverse.value() < e.value()) continue;
    const HardenedLinkState& hl = hardened.links[e.value()];
    if (!hl.status_disagreement) continue;
    obs::InvariantRecord rec;
    rec.check = "hardening";
    rec.invariant = "r1-status(" + topo_->LinkNameRef(e) + ")";
    rec.residual = 1.0 - hl.confidence;
    rec.threshold = 0.0;
    rec.verdict = hl.verdict == LinkVerdict::kUnknown
                      ? obs::InvariantVerdict::kSkipped
                      : obs::InvariantVerdict::kPass;
    rec.detail = std::string("endpoint statuses disagree; fused verdict ") +
                 LinkVerdictName(hl.verdict) + " at confidence " +
                 util::FormatDouble(hl.confidence, 2);
    record.Add(std::move(rec));
  }
}

controlplane::InputValidatorFn Validator::AsPipelineValidator() const {
  return [this](const controlplane::ControllerInput& input,
                const telemetry::NetworkSnapshot& snapshot) {
    ValidationReport report = Validate(input, snapshot);
    controlplane::ValidationDecision decision;
    decision.accept = report.ok();
    decision.reason = report.Summary();
    decision.provenance = std::move(report.provenance);
    return decision;
  };
}

}  // namespace hodor::core
