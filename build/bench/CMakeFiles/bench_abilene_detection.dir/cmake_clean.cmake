file(REMOVE_RECURSE
  "CMakeFiles/bench_abilene_detection.dir/bench_abilene_detection.cc.o"
  "CMakeFiles/bench_abilene_detection.dir/bench_abilene_detection.cc.o.d"
  "bench_abilene_detection"
  "bench_abilene_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abilene_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
