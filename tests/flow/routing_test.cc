#include "flow/routing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/state.h"
#include "net/topologies.h"

namespace hodor::flow {
namespace {

using net::LinkId;
using net::NodeId;

TEST(RoutingPlan, SetAndGetPaths) {
  net::Topology topo = net::Line(3);
  const net::Path p =
      net::ShortestPath(topo, NodeId(0), NodeId(2)).value();
  RoutingPlan plan;
  plan.SetPaths(NodeId(0), NodeId(2), {WeightedPath{p, 1.0}});
  EXPECT_TRUE(plan.HasRoute(NodeId(0), NodeId(2)));
  EXPECT_FALSE(plan.HasRoute(NodeId(2), NodeId(0)));
  EXPECT_EQ(plan.PathsFor(NodeId(0), NodeId(2)).size(), 1u);
  EXPECT_TRUE(plan.PathsFor(NodeId(2), NodeId(0)).empty());
  EXPECT_EQ(plan.pair_count(), 1u);
}

TEST(RoutingPlan, WeightsMustSumToOne) {
  net::Topology topo = net::Line(3);
  const net::Path p =
      net::ShortestPath(topo, NodeId(0), NodeId(2)).value();
  RoutingPlan plan;
  EXPECT_THROW(plan.SetPaths(NodeId(0), NodeId(2), {WeightedPath{p, 0.7}}),
               std::logic_error);
  EXPECT_THROW(plan.SetPaths(NodeId(0), NodeId(2),
                             {WeightedPath{p, 0.5}, WeightedPath{p, 0.6}}),
               std::logic_error);
}

TEST(RoutingPlan, EmptyPathRejected) {
  RoutingPlan plan;
  EXPECT_THROW(plan.SetPaths(NodeId(0), NodeId(1), {WeightedPath{{}, 1.0}}),
               std::logic_error);
}

TEST(RoutingPlan, UsedLinksDeduplicates) {
  net::Topology topo = net::Line(4);
  RoutingPlan plan;
  const DemandMatrix d = UniformDemand(topo, 1.0);
  plan = ShortestPathRouting(topo, d, net::AllLinks());
  const auto used = plan.UsedLinks();
  // Line4 fully meshed demand uses every directed link exactly once in
  // the used set.
  EXPECT_EQ(used.size(), topo.link_count());
}

TEST(ShortestPathRouting, RoutesEveryRoutablePair) {
  const net::Topology topo = net::Abilene();
  const DemandMatrix d = UniformDemand(topo, 1.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  EXPECT_EQ(plan.pair_count(), 132u);
  for (const auto& [i, j] : d.Pairs()) {
    const auto& paths = plan.PathsFor(i, j);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(net::PathSource(topo, paths[0].path), i);
    EXPECT_EQ(net::PathDestination(topo, paths[0].path), j);
    EXPECT_DOUBLE_EQ(paths[0].weight, 1.0);
  }
}

TEST(ShortestPathRouting, SkipsUnroutablePairs) {
  net::Topology topo = net::Line(3);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 5.0);
  // Filter cuts the line: no route exists.
  const RoutingPlan plan = ShortestPathRouting(
      topo, d, [](LinkId) { return false; });
  EXPECT_EQ(plan.pair_count(), 0u);
}

TEST(EcmpRouting, SplitsAcrossEqualCostPaths) {
  const net::Topology topo = net::Ring(4);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 8.0);  // two 2-hop paths around the ring
  const RoutingPlan plan = EcmpRouting(topo, d, net::AllLinks());
  const auto& paths = plan.PathsFor(NodeId(0), NodeId(2));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(paths[1].weight, 0.5);
}

TEST(EcmpRouting, SinglePathGetsFullWeight) {
  const net::Topology topo = net::Line(3);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 1.0);
  const RoutingPlan plan = EcmpRouting(topo, d, net::AllLinks());
  const auto& paths = plan.PathsFor(NodeId(0), NodeId(2));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 1.0);
}

TEST(GreedyTeRouting, WeightsSumToOnePerPair) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(23);
  DemandMatrix d = GravityDemand(topo, rng);
  NormalizeToMaxUtilization(topo, 0.8, d);
  const RoutingPlan plan = GreedyTeRouting(topo, d, net::AllLinks());
  for (const auto& [i, j] : d.Pairs()) {
    const auto& paths = plan.PathsFor(i, j);
    ASSERT_FALSE(paths.empty());
    double total = 0.0;
    for (const auto& wp : paths) {
      EXPECT_GT(wp.weight, 0.0);
      EXPECT_TRUE(net::IsValidSimplePath(topo, wp.path));
      total += wp.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GreedyTeRouting, SpreadsLoadBetterThanSpf) {
  // A hotspot between two nodes with several parallel routes: TE must beat
  // single shortest path on max utilisation.
  const net::Topology topo = net::FullMesh(5);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(1), 250.0);  // well above one 100G link

  const net::GroundTruthState state(topo);
  const RoutingPlan spf = ShortestPathRouting(topo, d, net::AllLinks());
  TeOptions te;
  te.k_paths = 4;
  te.chunks_per_pair = 20;
  const RoutingPlan teplan = GreedyTeRouting(topo, d, net::AllLinks(), te);

  auto max_util = [&](const RoutingPlan& plan) {
    const SimulationResult sim = SimulateFlow(topo, state, d, plan);
    double worst = 0.0;
    for (const net::Link& l : topo.links()) {
      worst = std::max(worst, sim.arriving[l.id.value()] / l.capacity);
    }
    return worst;
  };
  EXPECT_GT(max_util(spf), 2.0);
  EXPECT_LT(max_util(teplan), 1.01);
}

TEST(GreedyTeRouting, RespectsLinkFilter) {
  const net::Topology topo = net::Ring(4);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 1.0);
  const LinkId banned = topo.FindLink(NodeId(0), NodeId(1)).value();
  const RoutingPlan plan = GreedyTeRouting(
      topo, d, [banned](LinkId e) { return e != banned; });
  for (const auto& wp : plan.PathsFor(NodeId(0), NodeId(2))) {
    for (LinkId e : wp.path) EXPECT_NE(e, banned);
  }
}

TEST(GreedyTeRouting, DeterministicForSameInputs) {
  const net::Topology topo = net::Abilene();
  DemandMatrix d = UniformDemand(topo, 3.0);
  const RoutingPlan a = GreedyTeRouting(topo, d, net::AllLinks());
  const RoutingPlan b = GreedyTeRouting(topo, d, net::AllLinks());
  for (const auto& [i, j] : d.Pairs()) {
    const auto& pa = a.PathsFor(i, j);
    const auto& pb = b.PathsFor(i, j);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t k = 0; k < pa.size(); ++k) {
      EXPECT_EQ(pa[k].path, pb[k].path);
      EXPECT_DOUBLE_EQ(pa[k].weight, pb[k].weight);
    }
  }
}

}  // namespace
}  // namespace hodor::flow
