#include "net/serialization.h"

#include <gtest/gtest.h>

#include "net/graph_algorithms.h"
#include "net/topologies.h"
#include "util/rng.h"

namespace hodor::net {
namespace {

TEST(Serialization, RoundTripsAbilene) {
  const Topology original = Abilene();
  const std::string text = WriteTopology(original);
  auto parsed = ParseTopology(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Topology& topo = parsed.value();
  EXPECT_EQ(topo.name(), "abilene");
  EXPECT_EQ(topo.node_count(), original.node_count());
  EXPECT_EQ(topo.link_count(), original.link_count());
  for (const Node& n : original.nodes()) {
    const NodeId id = topo.FindNode(n.name).value();
    EXPECT_EQ(topo.node(id).has_external_port, n.has_external_port);
    EXPECT_DOUBLE_EQ(topo.node(id).external_capacity, n.external_capacity);
  }
  for (const Link& l : original.links()) {
    const NodeId src = topo.FindNode(original.node(l.src).name).value();
    const NodeId dst = topo.FindNode(original.node(l.dst).name).value();
    const auto found = topo.FindLink(src, dst);
    ASSERT_TRUE(found.ok());
    EXPECT_DOUBLE_EQ(topo.link(found.value()).capacity, l.capacity);
    EXPECT_DOUBLE_EQ(topo.link(found.value()).metric, l.metric);
  }
}

TEST(Serialization, RoundTripsMetricsAndMixedExternal) {
  Topology t("mixed");
  const NodeId a = t.AddNode("a");
  const NodeId b = t.AddNode("b");
  const NodeId c = t.AddNode("c");
  t.AddExternalPort(a, 123.5);
  t.AddBidirectionalLink(a, b, 40.0, 3.0);
  t.AddBidirectionalLink(b, c, 10.0);
  auto parsed = ParseTopology(WriteTopology(t));
  ASSERT_TRUE(parsed.ok());
  const Topology& topo = parsed.value();
  EXPECT_TRUE(topo.node(topo.FindNode("a").value()).has_external_port);
  EXPECT_FALSE(topo.node(topo.FindNode("b").value()).has_external_port);
  const LinkId ab = topo.FindLink(topo.FindNode("a").value(),
                                  topo.FindNode("b").value())
                        .value();
  EXPECT_DOUBLE_EQ(topo.link(ab).metric, 3.0);
}

TEST(Serialization, ParsesHandWrittenInput) {
  const std::string text = R"(
# my network
topology demo
node west ext 200
node east ext 200
node relay

link west relay 100
link relay east 100 metric 2
)";
  auto parsed = ParseTopology(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Topology& topo = parsed.value();
  EXPECT_EQ(topo.name(), "demo");
  EXPECT_EQ(topo.node_count(), 3u);
  EXPECT_EQ(topo.physical_link_count(), 2u);
  EXPECT_EQ(topo.ExternalNodes().size(), 2u);
  EXPECT_TRUE(IsStronglyConnected(topo));
}

TEST(Serialization, ToleratesExtraWhitespace) {
  auto parsed = ParseTopology("node   a   ext   5\nnode b\nlink  a  b  1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().node_count(), 2u);
}

TEST(Serialization, RejectsUnknownDirective) {
  auto r = ParseTopology("router a\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(r.status().message().find("unknown directive"),
            std::string::npos);
}

TEST(Serialization, RejectsLinkToUnknownNode) {
  auto r = ParseTopology("node a\nlink a ghost 10\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
}

TEST(Serialization, RejectsDuplicateNode) {
  auto r = ParseTopology("node a\nnode a\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate node"), std::string::npos);
}

TEST(Serialization, RejectsBadNumbers) {
  EXPECT_FALSE(ParseTopology("node a ext zero\n").ok());
  EXPECT_FALSE(ParseTopology("node a\nnode b\nlink a b -5\n").ok());
  EXPECT_FALSE(ParseTopology("node a\nnode b\nlink a b 1 metric 0.5\n").ok());
}

TEST(Serialization, RejectsSelfLoopAndBadArity) {
  EXPECT_FALSE(ParseTopology("node a\nlink a a 5\n").ok());
  EXPECT_FALSE(ParseTopology("node\n").ok());
  EXPECT_FALSE(ParseTopology("node a\nnode b\nlink a b\n").ok());
}

TEST(Serialization, RejectsLateOrDuplicateTopologyDirective) {
  EXPECT_FALSE(ParseTopology("node a\ntopology late\n").ok());
  EXPECT_FALSE(ParseTopology("topology a\ntopology b\n").ok());
}

TEST(Serialization, EmptyInputIsEmptyTopology) {
  auto parsed = ParseTopology("# nothing here\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().node_count(), 0u);
}


// Round-trip sweep over every canned topology generator.
class SerializationSweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializationSweep, RoundTripPreservesStructure) {
  util::Rng rng(5);
  const Topology original = [&]() {
    const std::string& name = GetParam();
    if (name == "abilene") return Abilene();
    if (name == "b4like") return B4Like();
    if (name == "geantlike") return GeantLike();
    if (name == "figure3") return Figure3Triangle();
    if (name == "leafspine") return LeafSpine(6, 3);
    if (name == "grid") return Grid(3, 4);
    if (name == "waxman") return Waxman(18, rng);
    return ErdosRenyi(14, 0.3, rng);
  }();
  auto parsed = ParseTopology(WriteTopology(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Topology& topo = parsed.value();
  EXPECT_EQ(topo.name(), original.name());
  EXPECT_EQ(topo.node_count(), original.node_count());
  EXPECT_EQ(topo.link_count(), original.link_count());
  EXPECT_EQ(topo.ExternalNodes().size(), original.ExternalNodes().size());
  EXPECT_TRUE(topo.Validate().ok());
  EXPECT_EQ(IsStronglyConnected(topo), IsStronglyConnected(original));
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, SerializationSweep,
                         ::testing::Values("abilene", "b4like", "geantlike",
                                           "figure3", "leafspine", "grid",
                                           "waxman", "erdosrenyi"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace hodor::net
