#include "faults/snapshot_faults.h"

namespace hodor::faults {

using telemetry::NetworkSnapshot;
using telemetry::SnapshotMutator;

SnapshotMutator ComposeFaults(std::vector<SnapshotMutator> faults) {
  return [faults = std::move(faults)](NetworkSnapshot& snapshot) {
    for (const auto& f : faults) {
      if (f) f(snapshot);
    }
  };
}

SnapshotMutator ZeroedCountersFault(net::NodeId router, double probability,
                                    std::uint64_t seed) {
  return [router, probability, seed](NetworkSnapshot& snapshot) {
    util::Rng rng(seed);
    telemetry::RouterSignals& r = snapshot.router(router);
    for (auto& [lid, iface] : r.out_ifaces) {
      if (iface.tx_rate && rng.Bernoulli(probability)) iface.tx_rate = 0.0;
    }
    for (auto& [lid, iface] : r.in_ifaces) {
      if (iface.rx_rate && rng.Bernoulli(probability)) iface.rx_rate = 0.0;
    }
    if (r.ext_in_rate && rng.Bernoulli(probability)) r.ext_in_rate = 0.0;
    if (r.ext_out_rate && rng.Bernoulli(probability)) r.ext_out_rate = 0.0;
  };
}

SnapshotMutator CorruptLinkCounter(net::LinkId link, CounterSide side,
                                   CounterCorruption how, double param) {
  return [link, side, how, param](NetworkSnapshot& snapshot) {
    const net::Topology& topo = snapshot.topology();
    const net::Link& l = topo.link(link);
    auto corrupt = [&](std::optional<double>& value) {
      switch (how) {
        case CounterCorruption::kZero: value = 0.0; break;
        case CounterCorruption::kScale:
          if (value) value = *value * param;
          break;
        case CounterCorruption::kAbsolute: value = param; break;
        case CounterCorruption::kDrop: value.reset(); break;
      }
    };
    if (side == CounterSide::kTx || side == CounterSide::kBoth) {
      auto& r = snapshot.router(l.src);
      auto it = r.out_ifaces.find(link);
      if (it != r.out_ifaces.end()) corrupt(it->second.tx_rate);
    }
    if (side == CounterSide::kRx || side == CounterSide::kBoth) {
      auto& r = snapshot.router(l.dst);
      auto it = r.in_ifaces.find(link);
      if (it != r.in_ifaces.end()) corrupt(it->second.rx_rate);
    }
  };
}

SnapshotMutator UnresponsiveRouter(net::NodeId router) {
  return [router](NetworkSnapshot& snapshot) {
    telemetry::RouterSignals& r = snapshot.router(router);
    r.responded = false;
    r.drained.reset();
    r.dropped_rate.reset();
    r.ext_in_rate.reset();
    r.ext_out_rate.reset();
    r.out_ifaces.clear();
    r.in_ifaces.clear();
  };
}

SnapshotMutator MalformedTelemetry(net::NodeId router, double probability,
                                   std::uint64_t seed) {
  return [router, probability, seed](NetworkSnapshot& snapshot) {
    util::Rng rng(seed);
    telemetry::RouterSignals& r = snapshot.router(router);
    auto maybe_drop = [&](auto& opt) {
      if (opt && rng.Bernoulli(probability)) opt.reset();
    };
    maybe_drop(r.drained);
    maybe_drop(r.dropped_rate);
    maybe_drop(r.ext_in_rate);
    maybe_drop(r.ext_out_rate);
    for (auto& [lid, iface] : r.out_ifaces) {
      maybe_drop(iface.status);
      maybe_drop(iface.tx_rate);
      maybe_drop(iface.link_drained);
    }
    for (auto& [lid, iface] : r.in_ifaces) {
      maybe_drop(iface.rx_rate);
    }
  };
}

SnapshotMutator WrongDrainSignal(net::NodeId router, bool reported) {
  return [router, reported](NetworkSnapshot& snapshot) {
    snapshot.router(router).drained = reported;
  };
}

SnapshotMutator AsymmetricLinkDrain(net::LinkId link) {
  return [link](NetworkSnapshot& snapshot) {
    const net::Topology& topo = snapshot.topology();
    const net::Link& l = topo.link(link);
    auto& src = snapshot.router(l.src);
    auto it = src.out_ifaces.find(link);
    if (it != src.out_ifaces.end()) it->second.link_drained = true;
    auto& dst = snapshot.router(l.dst);
    auto rit = dst.out_ifaces.find(l.reverse);
    if (rit != dst.out_ifaces.end()) rit->second.link_drained = false;
  };
}

SnapshotMutator FalseLinkStatus(net::LinkId link, bool at_src,
                                telemetry::LinkStatus reported) {
  return [link, at_src, reported](NetworkSnapshot& snapshot) {
    const net::Topology& topo = snapshot.topology();
    const net::Link& l = topo.link(link);
    const net::LinkId iface = at_src ? link : l.reverse;
    auto& r = snapshot.router(topo.link(iface).src);
    auto it = r.out_ifaces.find(iface);
    if (it != r.out_ifaces.end()) it->second.status = reported;
  };
}

SnapshotMutator VendorCounterBug(std::vector<net::NodeId> fleet,
                                 double factor) {
  return [fleet = std::move(fleet), factor](NetworkSnapshot& snapshot) {
    for (net::NodeId router : fleet) {
      telemetry::RouterSignals& r = snapshot.router(router);
      auto scale = [&](std::optional<double>& v) {
        if (v) v = *v * factor;
      };
      scale(r.dropped_rate);
      scale(r.ext_in_rate);
      scale(r.ext_out_rate);
      for (auto& [lid, iface] : r.out_ifaces) scale(iface.tx_rate);
      for (auto& [lid, iface] : r.in_ifaces) scale(iface.rx_rate);
    }
  };
}

SnapshotMutator ScaledRouterCounters(net::NodeId router, double factor) {
  return [router, factor](NetworkSnapshot& snapshot) {
    telemetry::RouterSignals& r = snapshot.router(router);
    auto scale = [&](std::optional<double>& v) {
      if (v) v = *v * factor;
    };
    scale(r.dropped_rate);
    scale(r.ext_in_rate);
    scale(r.ext_out_rate);
    for (auto& [lid, iface] : r.out_ifaces) scale(iface.tx_rate);
    for (auto& [lid, iface] : r.in_ifaces) scale(iface.rx_rate);
  };
}

}  // namespace hodor::faults
