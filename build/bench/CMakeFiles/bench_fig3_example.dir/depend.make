# Empty dependencies file for bench_fig3_example.
# This may be replaced when dependencies are built.
