#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hodor::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, EmptyThrowsOnAccess) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.Add(-5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 99), 42.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(Percentile, PreconditionsEnforced) {
  EXPECT_THROW(Percentile({}, 50), std::logic_error);
  EXPECT_THROW(Percentile({1.0}, 101), std::logic_error);
}

TEST(Ewma, FirstObservationSeedsMean) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.mean(), 10.0);
  EXPECT_DOUBLE_EQ(e.variance(), 0.0);
}

TEST(Ewma, ConvergesTowardConstantSignal) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.Add(5.0);
  EXPECT_NEAR(e.mean(), 5.0, 1e-9);
  EXPECT_NEAR(e.stddev(), 0.0, 1e-9);
}

TEST(Ewma, TracksShiftedSignal) {
  Ewma e(0.3);
  for (int i = 0; i < 50; ++i) e.Add(0.0);
  for (int i = 0; i < 50; ++i) e.Add(100.0);
  EXPECT_GT(e.mean(), 95.0);
}

TEST(Ewma, ZScoreOfFlatSignal) {
  Ewma e(0.3);
  for (int i = 0; i < 20; ++i) e.Add(7.0);
  EXPECT_DOUBLE_EQ(e.ZScore(7.0), 0.0);
  EXPECT_GT(e.ZScore(8.0), 1e6);  // any deviation from a flat history
}

TEST(Ewma, ZScoreScalesWithDeviation) {
  Ewma e(0.3);
  // Alternating signal gives non-zero variance.
  for (int i = 0; i < 100; ++i) e.Add(i % 2 == 0 ? 9.0 : 11.0);
  const double z_small = std::fabs(e.ZScore(10.5));
  const double z_big = std::fabs(e.ZScore(20.0));
  EXPECT_LT(z_small, z_big);
}

TEST(Ewma, AlphaValidated) {
  EXPECT_THROW(Ewma(0.0), std::logic_error);
  EXPECT_THROW(Ewma(1.5), std::logic_error);
  EXPECT_NO_THROW(Ewma(1.0));
}

TEST(SafeRate, HandlesZeroDenominator) {
  EXPECT_DOUBLE_EQ(SafeRate(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(SafeRate(3, 4), 0.75);
}

TEST(RelativeDifference, Symmetric) {
  EXPECT_DOUBLE_EQ(RelativeDifference(100, 98), RelativeDifference(98, 100));
}

TEST(RelativeDifference, ZeroWhenBothTiny) {
  EXPECT_DOUBLE_EQ(RelativeDifference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(1e-15, -1e-15), 0.0);
}

TEST(RelativeDifference, KnownValue) {
  EXPECT_NEAR(RelativeDifference(100.0, 98.0), 0.02, 1e-12);
}

TEST(WithinRelativeTolerance, ThresholdIsInclusive) {
  EXPECT_TRUE(WithinRelativeTolerance(100.0, 98.0, 0.02));
  EXPECT_FALSE(WithinRelativeTolerance(100.0, 97.0, 0.02));
  EXPECT_TRUE(WithinRelativeTolerance(0.0, 0.0, 0.0));
}

TEST(WithinRelativeTolerance, OneSideZero) {
  // 0 vs anything nonzero is 100% different.
  EXPECT_FALSE(WithinRelativeTolerance(0.0, 5.0, 0.5));
  EXPECT_TRUE(WithinRelativeTolerance(0.0, 5.0, 1.0));
}

}  // namespace
}  // namespace hodor::util
