// Golden equivalence: the columnar SignalFrame refactor must not change a
// single validation outcome. Three seeded ScenarioCatalog scenarios run
// through the full pipeline (collect → aggregate → validate → program) and
// every epoch's DecisionRecord stream, hardened state (values, origins,
// repairs, confidences), and epoch verdict are fingerprinted. The expected
// fingerprints below were captured from the pre-refactor per-router
// hash-map implementation; matching them proves byte-identical decisions,
// repaired values, and provenance. A second pass asserts num_threads = 4
// reproduces the serial results exactly.
#include <gtest/gtest.h>

#include <string>

#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/tm_generators.h"
#include "integration/equivalence_fingerprint.h"
#include "net/topologies.h"

namespace hodor {
namespace {

struct GoldenEpoch {
  const char* scenario;
  int epoch;
  const char* fingerprint;  // FNV-1a hash + length of the epoch text
};

// Captured from the seed implementation (commit 18e9e70) by running the
// exact pipeline below and printing Fingerprint(text) per epoch.
constexpr GoldenEpoch kGolden[] = {
    {"counter-corruption", 0, "229958100903e3ac:7238"},
    {"counter-corruption", 1, "a7343e34357b8f85:7217"},
    {"counter-corruption", 2, "b90ad370458a9f03:7245"},
    {"counter-corruption", 3, "e1ca864769c981f0:7240"},
    {"phantom-links", 0, "8c6b66e32f141bf0:7277"},
    {"phantom-links", 1, "719dc8367fcfa305:7694"},
    {"phantom-links", 2, "9cf5a2e909b84ded:7692"},
    {"phantom-links", 3, "7b01e3caf7bc01fc:7692"},
    {"partial-demand", 0, "9ad0f52e619af86d:8120"},
    {"partial-demand", 1, "8303e3e59fdb2ab2:7031"},
    {"partial-demand", 2, "2e257c1605dbd7a6:7027"},
    {"partial-demand", 3, "7c390ddd89521a95:7024"},
};

// Runs `scenario` for 4 epochs; returns one fingerprintable text per epoch
// covering provenance + full hardened state + epoch verdict. `num_threads`
// configures the standalone re-hardening engine (the pipeline's inner
// validator always runs the default serial configuration, so golden
// fingerprints stay comparable across the threading axis too).
std::vector<std::string> RunScenario(const std::string& id,
                                     std::size_t num_threads) {
  net::Topology topo = net::Abilene();
  faults::ScenarioCatalog catalog(topo);
  const faults::OutageScenario* sc = catalog.Find(id).value();

  net::GroundTruthState state(topo);
  if (sc->setup) sc->setup(state);
  util::Rng demand_rng(11);
  flow::DemandMatrix demand = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.6, demand);

  controlplane::PipelineOptions opts;
  controlplane::Pipeline pipeline(topo, opts, util::Rng(13));
  pipeline.Bootstrap(state, demand);
  core::Validator validator(topo);
  pipeline.SetValidator(validator.AsPipelineValidator());

  core::HardeningOptions hopts;
  hopts.num_threads = num_threads;
  const core::HardeningEngine engine(hopts);
  std::vector<std::string> epochs;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto result =
        pipeline.RunEpoch(state, demand, sc->snapshot_fault, sc->aggregation);
    std::string text = testing::DecisionText(result.decision.provenance);
    text += testing::HardenedText(engine.Harden(result.snapshot));
    text += testing::EpochVerdictText(result);
    epochs.push_back(std::move(text));
  }
  return epochs;
}

TEST(FrameEquivalence, MatchesPreRefactorGoldens) {
  std::string current_scenario;
  std::vector<std::string> epochs;
  for (const GoldenEpoch& g : kGolden) {
    if (g.scenario != current_scenario) {
      current_scenario = g.scenario;
      epochs = RunScenario(current_scenario, /*num_threads=*/1);
    }
    ASSERT_LT(static_cast<std::size_t>(g.epoch), epochs.size());
    EXPECT_EQ(testing::Fingerprint(epochs[g.epoch]), g.fingerprint)
        << g.scenario << " epoch " << g.epoch;
  }
}

TEST(FrameEquivalence, FourThreadsReproducesSerialExactly) {
  for (const char* id : {"counter-corruption", "phantom-links",
                         "partial-demand"}) {
    const auto serial = RunScenario(id, /*num_threads=*/1);
    const auto threaded = RunScenario(id, /*num_threads=*/4);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], threaded[i]) << id << " epoch " << i;
    }
  }
}

}  // namespace
}  // namespace hodor
