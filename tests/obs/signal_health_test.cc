// SignalHealthBoard: trust scoring, verdict history, residual EWMA.
#include "obs/health/signal_health.h"

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hodor::obs {
namespace {

InvariantRecord Rec(const std::string& check, const std::string& invariant,
                    InvariantVerdict verdict, double residual = 0.0,
                    double threshold = 0.02) {
  InvariantRecord rec;
  rec.check = check;
  rec.invariant = invariant;
  rec.residual = residual;
  rec.threshold = threshold;
  rec.verdict = verdict;
  return rec;
}

DecisionRecord Epoch(std::uint64_t epoch,
                     std::vector<InvariantRecord> invariants) {
  DecisionRecord record;
  record.epoch = epoch;
  for (auto& rec : invariants) record.Add(std::move(rec));
  return record;
}

TEST(ExtractInvariantEntity, ParsesTrailingParens) {
  EXPECT_EQ(ExtractInvariantEntity("ingress(SEAT)"), "SEAT");
  EXPECT_EQ(ExtractInvariantEntity("r1-symmetry(A->B)"), "A->B");
  EXPECT_EQ(ExtractInvariantEntity("link-state(NYCMng->WASHng)"),
            "NYCMng->WASHng");
  EXPECT_EQ(ExtractInvariantEntity("no-parens"), "no-parens");
  EXPECT_EQ(ExtractInvariantEntity(""), "");
  EXPECT_EQ(ExtractInvariantEntity("weird)"), "weird)");
}

TEST(SignalHealthBoard, CleanEpochsKeepFullTrust) {
  SignalHealthBoard board;
  for (std::uint64_t e = 0; e < 5; ++e) {
    board.ObserveEpoch(Epoch(e, {Rec("demand", "ingress(SEAT)",
                                     InvariantVerdict::kPass, 0.001)}));
  }
  const SignalHealth* h = board.Find("demand", "SEAT");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->trust, 100.0);
  EXPECT_EQ(h->fail_epochs, 0u);
  EXPECT_EQ(h->observed_epochs, 5u);
  EXPECT_EQ(h->HistoryString(), "PPPPP");
  EXPECT_DOUBLE_EQ(board.MinTrust(), 100.0);
}

TEST(SignalHealthBoard, FailureDropsTrustAndRecoveryRestoresIt) {
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(0, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kPass, 0.001)}));
  board.ObserveEpoch(Epoch(1, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kFail, 0.3)}));
  const SignalHealth* h = board.Find("demand", "SEAT");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->trust, 60.0);  // 100 - fail_penalty
  EXPECT_EQ(h->consecutive_failures, 1u);
  EXPECT_EQ(h->HistoryString(), "PF");

  // Clean epochs claw trust back by recovery_credit each.
  for (std::uint64_t e = 2; e < 6; ++e) {
    board.ObserveEpoch(Epoch(e, {Rec("demand", "ingress(SEAT)",
                                     InvariantVerdict::kPass, 0.001)}));
  }
  EXPECT_DOUBLE_EQ(h->trust, 100.0);
  EXPECT_EQ(h->consecutive_failures, 0u);
  EXPECT_EQ(h->fail_epochs, 1u);
}

TEST(SignalHealthBoard, WorstVerdictPerEpochWins) {
  // Same source, ingress passes but egress fires: the epoch counts failed.
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(0, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kPass, 0.001),
                               Rec("demand", "egress(SEAT)",
                                   InvariantVerdict::kFail, 0.4)}));
  const SignalHealth* h = board.Find("demand", "SEAT");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->trust, 60.0);
  EXPECT_EQ(h->HistoryString(), "F");
}

TEST(SignalHealthBoard, HardeningPassCountsAsRepair) {
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(0, {Rec("hardening", "r1-symmetry(A->B)",
                                   InvariantVerdict::kPass, 0.5)}));
  const SignalHealth* h = board.Find("hardening", "A->B");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->trust, 90.0);  // repair_penalty
  EXPECT_EQ(h->repair_events, 1u);
  EXPECT_EQ(h->HistoryString(), "R");

  // Hardening sources appear only when flagged: quiet epochs recover.
  board.ObserveEpoch(Epoch(1, {}));
  EXPECT_DOUBLE_EQ(h->trust, 100.0);
  EXPECT_EQ(h->HistoryString(), "R.");
}

TEST(SignalHealthBoard, SkippedSignalLosesTrust) {
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(0, {Rec("topology", "link-state(A->B)",
                                   InvariantVerdict::kSkipped, 1.0)}));
  const SignalHealth* h = board.Find("topology", "A->B");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->trust, 85.0);  // skip_penalty
  EXPECT_EQ(h->skipped_epochs, 1u);
  EXPECT_EQ(h->HistoryString(), "S");
}

TEST(SignalHealthBoard, TrustClampsAtZero) {
  SignalHealthBoard board;
  for (std::uint64_t e = 0; e < 5; ++e) {
    board.ObserveEpoch(Epoch(e, {Rec("demand", "ingress(SEAT)",
                                     InvariantVerdict::kFail, 0.5)}));
  }
  const SignalHealth* h = board.Find("demand", "SEAT");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->trust, 0.0);
  EXPECT_EQ(h->consecutive_failures, 5u);
  EXPECT_DOUBLE_EQ(board.MinTrust(), 0.0);
}

TEST(SignalHealthBoard, ResidualEwmaTracksNormalisedResidual) {
  SignalHealthOptions opts;
  opts.ewma_alpha = 0.5;
  SignalHealthBoard board(opts);
  // residual 0.04 at τ 0.02 → normalised 2.0; EWMA from 0: 1.0.
  board.ObserveEpoch(Epoch(0, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kFail, 0.04, 0.02)}));
  const SignalHealth* h = board.Find("demand", "SEAT");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->last_residual, 2.0);
  EXPECT_DOUBLE_EQ(h->residual_ewma, 1.0);
  board.ObserveEpoch(Epoch(1, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kFail, 0.04, 0.02)}));
  EXPECT_DOUBLE_EQ(h->residual_ewma, 1.5);
}

TEST(SignalHealthBoard, HistoryRingIsCapped) {
  SignalHealthOptions opts;
  opts.window = 4;
  SignalHealthBoard board(opts);
  for (std::uint64_t e = 0; e < 10; ++e) {
    board.ObserveEpoch(Epoch(e, {Rec("demand", "ingress(SEAT)",
                                     e == 9 ? InvariantVerdict::kFail
                                            : InvariantVerdict::kPass)}));
  }
  const SignalHealth* h = board.Find("demand", "SEAT");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->history.size(), 4u);
  EXPECT_EQ(h->HistoryString(), "PPPF");
}

TEST(SignalHealthBoard, SourcesByTrustOrdersWorstFirst) {
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(0, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kFail, 0.3),
                               Rec("demand", "ingress(LOSA)",
                                   InvariantVerdict::kPass, 0.001),
                               Rec("topology", "link-state(A->B)",
                                   InvariantVerdict::kSkipped, 1.0)}));
  const auto sources = board.SourcesByTrust();
  ASSERT_EQ(sources.size(), 3u);
  EXPECT_EQ(sources[0]->entity, "SEAT");   // 60
  EXPECT_EQ(sources[1]->entity, "A->B");   // 85
  EXPECT_EQ(sources[2]->entity, "LOSA");   // 100
}

TEST(SignalHealthBoard, ToJsonIsValidAndCarriesSources) {
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(3, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kFail, 0.3)}));
  const std::string json = board.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"epochs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"entity\":\"SEAT\""), std::string::npos);
  EXPECT_NE(json.find("\"history\":\"F\""), std::string::npos);
  EXPECT_NE(json.find("\"trust\":60"), std::string::npos);
}

TEST(SignalHealthBoard, PublishGaugesExportsTrust) {
  SignalHealthBoard board;
  board.ObserveEpoch(Epoch(0, {Rec("demand", "ingress(SEAT)",
                                   InvariantVerdict::kFail, 0.3)}));
  MetricsRegistry reg;
  board.PublishGauges(&reg);
  const Gauge* g = reg.FindGauge("hodor_signal_trust",
                                 {{"check", "demand"}, {"entity", "SEAT"}});
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), 60.0);
}

}  // namespace
}  // namespace hodor::obs
