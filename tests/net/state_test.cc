#include "net/state.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace hodor::net {
namespace {

class StateTest : public ::testing::Test {
 protected:
  StateTest() : topo_(Line(3)), state_(topo_) {}
  Topology topo_;
  GroundTruthState state_;
};

TEST_F(StateTest, PristineIsAllUsable) {
  for (LinkId e : topo_.LinkIds()) {
    EXPECT_TRUE(state_.link_up(e));
    EXPECT_TRUE(state_.link_dataplane_ok(e));
    EXPECT_TRUE(state_.LinkUsable(e));
    EXPECT_TRUE(state_.LinkPhysicallyUsable(e));
  }
  EXPECT_EQ(state_.UsableLinkCount(), topo_.link_count());
}

TEST_F(StateTest, LinkDownAffectsBothDirections) {
  const LinkId e = topo_.LinkIds()[0];
  state_.SetLinkUp(e, false);
  EXPECT_FALSE(state_.link_up(e));
  EXPECT_FALSE(state_.link_up(topo_.link(e).reverse));
  EXPECT_FALSE(state_.LinkUsable(e));
  state_.SetLinkUp(topo_.link(e).reverse, true);  // restore via reverse
  EXPECT_TRUE(state_.link_up(e));
}

TEST_F(StateTest, DataplaneBreakLeavesLinkUp) {
  const LinkId e = topo_.LinkIds()[0];
  state_.SetLinkDataplaneOk(e, false);
  EXPECT_TRUE(state_.link_up(e));  // light still on
  EXPECT_FALSE(state_.LinkPhysicallyUsable(e));
  EXPECT_FALSE(state_.LinkUsable(e));
}

TEST_F(StateTest, NodeDrainBlocksIncidentLinks) {
  const NodeId middle = topo_.FindNode("n1").value();
  state_.SetNodeDrained(middle, true);
  EXPECT_TRUE(state_.node_drained(middle));
  for (LinkId e : topo_.OutLinks(middle)) {
    EXPECT_FALSE(state_.LinkUsable(e));
    // Physically the link still works (drain is intent).
    EXPECT_TRUE(state_.LinkPhysicallyUsable(e));
  }
}

TEST_F(StateTest, LinkDrainBlocksOnlyThatLink) {
  const LinkId e = topo_.LinkIds()[0];
  state_.SetLinkDrained(e, true);
  EXPECT_TRUE(state_.link_drained(e));
  EXPECT_TRUE(state_.link_drained(topo_.link(e).reverse));
  EXPECT_FALSE(state_.LinkUsable(e));
  EXPECT_TRUE(state_.LinkPhysicallyUsable(e));
}

TEST_F(StateTest, NonForwardingNodeKillsIncidentLinks) {
  const NodeId middle = topo_.FindNode("n1").value();
  state_.SetNodeForwarding(middle, false);
  for (LinkId e : topo_.OutLinks(middle)) {
    EXPECT_FALSE(state_.LinkPhysicallyUsable(e));
  }
  for (LinkId e : topo_.InLinks(middle)) {
    EXPECT_FALSE(state_.LinkPhysicallyUsable(e));
  }
}

TEST_F(StateTest, UsableLinkCountTracksChanges) {
  EXPECT_EQ(state_.UsableLinkCount(), 4u);  // line3: 2 physical = 4 directed
  state_.SetLinkUp(topo_.LinkIds()[0], false);
  EXPECT_EQ(state_.UsableLinkCount(), 2u);
}

}  // namespace
}  // namespace hodor::net
