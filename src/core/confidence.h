// ConfidenceModel: the scoring rules that turn R1–R4 agreement into the
// per-signal confidence columns of HardenedState (CrossCheck's central
// idea: confidence grows with the number of independent redundancy
// sources that corroborate a signal, and dynamic-check thresholds adapt
// to it).
//
// The kernels here are the exact per-entity bodies the hardening engine
// runs — full and incremental paths share them, so confidence columns
// stay bit-identical across both (DESIGN.md §12 contract). They are
// exported so property tests and benches can exercise the scoring in
// isolation.
//
// Guaranteed properties (tested in tests/core/confidence_model_test.cc):
//  - monotonicity: adding a corroborating source never lowers a score;
//  - residual penalty: a repair justified by a looser conservation fit
//    never scores above the same repair with a tighter fit;
//  - ordering: single-witness < repaired-base < agreeing (at defaults).
#pragma once

#include "core/hardened_state.h"
#include "net/topology.h"
#include "telemetry/snapshot.h"

namespace hodor::core {

// Named scoring parameters. Defaults keep the historical ordering
// (agreeing > repaired > single-witness) while adding the repair-residual
// penalty and the scalar conservation-corroboration score.
struct ConfidenceModel {
  // Base score per origin, before corroboration bonuses.
  double agreeing = 1.0;             // two independent witnesses matched
  double repaired_base = 0.7;        // R2 inferred the value
  double single_witness_base = 0.5;  // one counter, nothing to cross-check
  // Independent corroboration bonuses (R4 probes, R1 status channel).
  double probe_bonus = 0.15;
  double status_bonus = 0.1;
  // A repaired value whose justifying conservation equation closed with
  // relative residual ρ loses residual_penalty · min(1, ρ/τ_c) — a repair
  // that barely fits its own equation deserves less trust than an exact
  // solve.
  double residual_penalty = 0.2;
  // Node scalars are single-sourced; their only corroboration is the
  // node's conservation equation closing over the final hardened rates.
  double scalar_base = 0.5;
  double conservation_bonus = 0.5;
};

// Flow-conservation bookkeeping at one router:
//   (Σ_in rates + ext_in)  vs  (Σ_out rates + dropped + ext_out).
// Computable only when the node's own scalar signals and all incident link
// rates are known (an override supplies the candidate value under test;
// pass LinkId::Invalid() for none).
struct ConservationCheck {
  bool computable = false;
  double relative_residual = 0.0;
};

ConservationCheck CheckConservation(const net::Topology& topo,
                                    const HardenedState& hs, net::NodeId v,
                                    net::LinkId override_link,
                                    double override_value);

// Confidence for one hardened rate. Reads the rate's origin, repair
// residual, and the snapshot's probe/status signals on the link.
double RateConfidence(const ConfidenceModel& m, double activity_floor,
                      double conservation_tau,
                      const telemetry::NetworkSnapshot& snapshot,
                      net::LinkId e, const HardenedRate& r);

// Confidence for one node's single-sourced scalars: scalar_base when the
// scalars are present, plus conservation_bonus scaled by how tightly the
// node's equation closes over the final rates. 0.0 when a required scalar
// is missing.
double ScalarConfidence(const ConfidenceModel& m, double conservation_tau,
                        const net::Topology& topo, const HardenedState& hs,
                        net::NodeId v);

}  // namespace hodor::core
