// E3 — sensitivity of demand validation to the equality threshold τ_e and
// to the perturbation type/magnitude (the "wider range of scenarios" the
// paper lists as ongoing work in §4.1).
//
// Rows: perturbation kind x τ_e. Columns: detection rate and the k=0
// false-positive rate under honest jitter. The paper's operating point
// (τ_e = 2%) should sit where detection is high and false positives are 0.
#include <functional>
#include <iostream>

#include "bench_common.h"
#include "core/demand_check.h"
#include "faults/demand_perturbations.h"
#include "util/strings.h"

int main() {
  using namespace hodor;
  constexpr int kTrials = 400;
  constexpr std::uint64_t kBaseSeed = 7000;

  bench::PrintHeader(
      "E3", "§4.1 sensitivity analysis (threshold and perturbation sweep)",
      "abilene, gravity TMs, trials=400/cell, base_seed=7000, "
      "tau_e in {0.5%,1%,2%,5%,10%}");

  struct Perturbation {
    std::string name;
    std::function<flow::DemandMatrix(const flow::DemandMatrix&, util::Rng&)>
        apply;  // empty name marks the unperturbed control
  };
  const std::vector<Perturbation> kinds = {
      {"none (false positives)",
       [](const flow::DemandMatrix& d, util::Rng&) { return d; }},
      {"zero 2 entries",
       [](const flow::DemandMatrix& d, util::Rng& rng) {
         return faults::ZeroEntries(d, 2, rng).matrix;
       }},
      {"zero 1 entry",
       [](const flow::DemandMatrix& d, util::Rng& rng) {
         return faults::ZeroEntries(d, 1, rng).matrix;
       }},
      {"halve 3 entries",
       [](const flow::DemandMatrix& d, util::Rng& rng) {
         return faults::ScaleEntries(d, 3, 0.5, rng).matrix;
       }},
      {"swap 2 pairs",
       [](const flow::DemandMatrix& d, util::Rng& rng) {
         return faults::SwapEntries(d, 2, rng).matrix;
       }},
      {"5% noise everywhere",
       [](const flow::DemandMatrix& d, util::Rng& rng) {
         return faults::NoiseAllEntries(d, 0.05, rng).matrix;
       }},
      {"scale all by 1.05",
       [](const flow::DemandMatrix& d, util::Rng&) {
         flow::DemandMatrix out = d;
         out.Scale(1.05);
         return out;
       }},
  };
  const std::vector<double> taus = {0.005, 0.01, 0.02, 0.05, 0.10};

  // Pre-compute trials once; reuse across cells.
  const auto copts = bench::DefaultCollector();
  std::vector<bench::Trial> trials;
  std::vector<core::HardenedState> hardened;
  trials.reserve(kTrials);
  for (int i = 0; i < kTrials; ++i) {
    trials.emplace_back(net::Abilene(), kBaseSeed + i, 0.5, copts);
    hardened.push_back(core::HardeningEngine().Harden(trials.back().snapshot));
  }

  std::vector<std::string> headers = {"perturbation"};
  for (double tau : taus) headers.push_back("tau_e=" + util::FormatPercent(tau, 1));
  util::TablePrinter table(headers);

  for (const Perturbation& kind : kinds) {
    std::vector<std::string> row = {kind.name};
    for (double tau : taus) {
      core::DemandCheckOptions opts;
      opts.tau_e = tau;
      int detected = 0;
      for (int i = 0; i < kTrials; ++i) {
        util::Rng prng(kBaseSeed + 31 * i + 7);
        const flow::DemandMatrix input = kind.apply(trials[i].demand, prng);
        if (!core::CheckDemand(trials[i].topo, hardened[i], input, opts)
                 .ok()) {
          ++detected;
        }
      }
      row.push_back(
          util::FormatPercent(static_cast<double>(detected) / kTrials, 1));
    }
    table.AddRow(row);
  }
  std::cout << table.ToString();
  std::cout << "\nreading: at the paper's tau_e=2%, perturbations are caught "
               "at high rates while honest jitter (row 1) never fires;\n"
            << "tau_e=0.5% sits below the counter jitter floor and false-"
               "positives, tau_e=10% goes blind to moderate corruption.\n";
  return 0;
}
