// The Hodor validator: the public entry point tying the three steps
// together. Collection is the caller's NetworkSnapshot; the validator
// hardens it and dynamically checks each controller input against the
// hardened state, returning a structured report plus an accept/reject
// decision suitable for the pipeline's rejection policy.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "controlplane/controller_input.h"
#include "controlplane/pipeline.h"
#include "core/demand_check.h"
#include "core/drain_check.h"
#include "core/hardening.h"
#include "core/topology_check.h"
#include "obs/provenance.h"
#include "telemetry/snapshot.h"

namespace hodor::core {

struct ValidatorOptions {
  HardeningOptions hardening;
  DemandCheckOptions demand;
  TopologyCheckOptions topology;

  // Per-input switches (ablations / staged rollout).
  bool check_demand = true;
  bool check_topology = true;
  bool check_drain = true;

  // The three checks are independent of each other (all read only the
  // hardened state and the input), so with hardening.num_threads > 1 they
  // run as sibling stages on the hardening engine's pool. Each check
  // writes its own provenance sub-record and metrics shard; both are
  // merged back in the fixed serial order demand → topology → drain, so
  // the DecisionRecord — and its CanonicalDigest — is bit-identical to
  // the serial path at any thread count.

  // Observability. Stage spans (harden, check-*) and check counters are
  // emitted to `metrics` (nullptr → the process-global registry) and
  // optionally to `trace`; both propagate into the hardening/check options
  // above unless those already name a registry. When `record_provenance`
  // is set, every Validate() fills the report's DecisionRecord with one
  // entry per invariant evaluated.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  bool record_provenance = true;
};

struct ValidationReport {
  HardenedState hardened;
  DemandCheckResult demand;
  TopologyCheckResult topology;
  DrainCheckResult drain;
  // Audit record: every invariant evaluated with residual, threshold, and
  // verdict (populated when ValidatorOptions::record_provenance is set).
  obs::DecisionRecord provenance;

  bool ok() const {
    return demand.ok() && topology.ok() && drain.ok();
  }
  std::size_t violation_count() const {
    return demand.violations.size() + topology.violations.size() +
           drain.violations.size();
  }

  // Operator-facing multi-line description of every violation.
  std::string Describe(const net::Topology& topo) const;
  // One-line summary, e.g. "REJECT: 3 violations (demand:2 topology:1)".
  std::string Summary() const;
};

class Validator {
 public:
  explicit Validator(const net::Topology& topo, ValidatorOptions opts = {});

  const ValidatorOptions& options() const { return opts_; }

  ValidationReport Validate(const controlplane::ControllerInput& input,
                            const telemetry::NetworkSnapshot& snapshot) const;

  // Adapts this validator to the pipeline's callback interface. The
  // returned decision carries the report's DecisionRecord, so EpochResults
  // downstream can name the invariant that fired.
  controlplane::InputValidatorFn AsPipelineValidator() const;

 private:
  // Appends hardening provenance (R1 symmetry detections and their R2-R4
  // resolution) to `record`.
  void AppendHardeningProvenance(const HardenedState& hardened,
                                 obs::DecisionRecord& record) const;

  // The demand/topology/drain checks as sibling stages on the hardening
  // engine's pool (see the ValidatorOptions comment). Fills the report's
  // check results and, when `prov` is set, splices each check's
  // sub-record into it in the fixed serial order.
  void RunChecksParallel(const controlplane::ControllerInput& input,
                         std::uint64_t epoch, util::ThreadPool& pool,
                         ValidationReport& report,
                         obs::DecisionRecord* prov) const;

  const net::Topology* topo_;
  ValidatorOptions opts_;
  HardeningEngine engine_;
  // Per-check metrics shards for the parallel path, lazily created and
  // reused across Validate calls. Like the hardening workspace, this makes
  // a Validator single-validation-at-a-time (distinct Validators may run
  // concurrently).
  mutable std::array<std::unique_ptr<obs::MetricsRegistry>, 3> check_shards_;
};

}  // namespace hodor::core
