# Empty compiler generated dependencies file for telemetry_collector_test.
# This may be replaced when dependencies are built.
