# Empty dependencies file for util_strings_table_test.
# This may be replaced when dependencies are built.
