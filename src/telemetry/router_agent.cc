#include "telemetry/router_agent.h"

namespace hodor::telemetry {

namespace {

double Jitter(double true_rate, const AgentOptions& opts, util::Rng& rng) {
  if (true_rate < opts.zero_floor) return 0.0;
  return true_rate * (1.0 + rng.Uniform(-opts.rate_jitter, opts.rate_jitter));
}

}  // namespace

void ReportRouterSignals(const net::Topology& topo,
                         const net::GroundTruthState& state,
                         const flow::SimulationResult& sim,
                         net::NodeId node, const AgentOptions& opts,
                         util::Rng& rng, NetworkSnapshot& snapshot) {
  RouterSignals& r = snapshot.router(node);
  r.responded = true;
  r.drained = state.node_drained(node);
  r.ext_in_rate = topo.node(node).has_external_port
                      ? std::optional<double>(
                            Jitter(sim.ext_in[node.value()], opts, rng))
                      : std::nullopt;
  r.ext_out_rate = topo.node(node).has_external_port
                       ? std::optional<double>(
                             Jitter(sim.ext_out[node.value()], opts, rng))
                       : std::nullopt;

  // Dropped rate at this router: drops on its out-link egress queues.
  double dropped = 0.0;
  for (net::LinkId e : topo.OutLinks(node)) dropped += sim.dropped[e.value()];
  r.dropped_rate = Jitter(dropped, opts, rng);

  for (net::LinkId e : topo.OutLinks(node)) {
    OutInterfaceSignals s;
    // Optical/admin status: light on unless the link is physically down.
    // A broken dataplane (§4.2) still shows kUp here.
    s.status = state.link_up(e) ? LinkStatus::kUp : LinkStatus::kDown;
    s.tx_rate = Jitter(sim.carried[e.value()], opts, rng);
    s.link_drained = state.link_drained(e);
    r.out_ifaces[e] = s;
  }
  for (net::LinkId e : topo.InLinks(node)) {
    InInterfaceSignals s;
    s.rx_rate = Jitter(sim.carried[e.value()], opts, rng);
    r.in_ifaces[e] = s;
  }
}

}  // namespace hodor::telemetry
