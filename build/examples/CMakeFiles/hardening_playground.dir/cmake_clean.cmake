file(REMOVE_RECURSE
  "CMakeFiles/hardening_playground.dir/hardening_playground.cpp.o"
  "CMakeFiles/hardening_playground.dir/hardening_playground.cpp.o.d"
  "hardening_playground"
  "hardening_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardening_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
