// HTTP parsing/rendering units plus live TelemetryServer smoke tests.
#include "obs/serve/telemetry_server.h"

#include <gtest/gtest.h>

#include "obs/health/signal_health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/serve/http.h"
#include "test_util.h"

namespace hodor::obs {
namespace {

// --- http.h units ----------------------------------------------------------

TEST(ParseHttpRequest, ParsesPlainGet) {
  const auto req = ParseHttpRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/metrics");
  EXPECT_EQ(req->path, "/metrics");
  EXPECT_TRUE(req->query.empty());
}

TEST(ParseHttpRequest, SplitsQueryParameters) {
  const auto req =
      ParseHttpRequest("GET /decisions?last=5&who=a%20b HTTP/1.1\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/decisions");
  EXPECT_EQ(req->query.at("last"), "5");
  EXPECT_EQ(req->query.at("who"), "a b");
}

TEST(ParseHttpRequest, ToleratesBareLf) {
  const auto req = ParseHttpRequest("GET /healthz HTTP/1.0\nHost: x\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/healthz");
}

TEST(ParseHttpRequest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseHttpRequest("").has_value());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n").has_value());
  EXPECT_FALSE(ParseHttpRequest("GET /x SPDY/3\r\n").has_value());
  EXPECT_FALSE(ParseHttpRequest("GET nopath HTTP/1.1\r\n").has_value());
}

TEST(UrlDecode, DecodesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("100%"), "100%");  // bad escape kept verbatim
  EXPECT_EQ(UrlDecode("%2Fpath"), "/path");
}

TEST(BuildHttpResponse, CarriesStatusLengthAndClose) {
  const std::string resp = BuildHttpResponse(200, "text/plain", "hello");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 5), "hello");
}

// --- routing (no sockets) --------------------------------------------------

HttpRequest Get(const std::string& target) {
  const auto req = ParseHttpRequest("GET " + target + " HTTP/1.1\r\n");
  EXPECT_TRUE(req.has_value());
  return *req;
}

TEST(TelemetryServerRouting, ServesPublishedMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_epochs_total").Increment(3);
  TelemetryServer server;
  server.PublishMetrics(&reg);
  const std::string resp = server.HandleRequest(Get("/metrics"));
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("hodor_epochs_total 3"), std::string::npos);
  const std::string json = server.HandleRequest(Get("/metrics.json"));
  EXPECT_NE(json.find("hodor_epochs_total"), std::string::npos);
}

TEST(TelemetryServerRouting, DecisionsRingIsNewestFirstAndTrimmable) {
  TelemetryServer server({.max_decisions = 2});
  for (std::uint64_t e = 1; e <= 3; ++e) {
    DecisionRecord record;
    record.epoch = e;
    server.PublishDecision(record);
  }
  // Ring capacity 2: epoch 1 evicted, epoch 3 first.
  std::string body = testing::HttpBody(server.HandleRequest(Get("/decisions")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_EQ(body.find("\"epoch\":1"), std::string::npos);
  EXPECT_LT(body.find("\"epoch\":3"), body.find("\"epoch\":2"));
  // ?last=1 trims to the newest.
  body = testing::HttpBody(server.HandleRequest(Get("/decisions?last=1")));
  EXPECT_NE(body.find("\"epoch\":3"), std::string::npos);
  EXPECT_EQ(body.find("\"epoch\":2"), std::string::npos);
  // Non-numeric ?last is a client error.
  const std::string bad = server.HandleRequest(Get("/decisions?last=banana"));
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
}

TEST(TelemetryServerRouting, TraceRingIsNewestFirstAndTrimmable) {
  TelemetryServer server({.max_trace_epochs = 2});
  for (std::uint64_t e = 1; e <= 3; ++e) {
    server.PublishTrace(e, "{\"epoch\":" + std::to_string(e) +
                               ",\"bottleneck\":\"program\"}");
  }
  // Ring capacity 2: epoch 1 evicted, newest first.
  std::string body = testing::HttpBody(server.HandleRequest(Get("/trace")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_EQ(body.find("\"epoch\":1"), std::string::npos);
  EXPECT_LT(body.find("\"epoch\":3"), body.find("\"epoch\":2"));
  EXPECT_NE(body.find("\"bottleneck\":\"program\""), std::string::npos);
  // ?last=1 trims to the newest breakdown.
  body = testing::HttpBody(server.HandleRequest(Get("/trace?last=1")));
  EXPECT_NE(body.find("\"epoch\":3"), std::string::npos);
  EXPECT_EQ(body.find("\"epoch\":2"), std::string::npos);
  // Non-numeric ?last is a client error.
  EXPECT_NE(server.HandleRequest(Get("/trace?last=soon")).find(
                "400 Bad Request"),
            std::string::npos);
  // The index advertises the endpoint.
  EXPECT_NE(server.HandleRequest(Get("/")).find("/trace"), std::string::npos);
}

TEST(TelemetryServerRouting, TraceWithNothingPublishedIsAnEmptyArray) {
  TelemetryServer server;
  const std::string body =
      testing::HttpBody(server.HandleRequest(Get("/trace")));
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_EQ(body, "[]");
}

TEST(TelemetryServerRouting, UnknownPathIs404NonGetIs405) {
  TelemetryServer server;
  EXPECT_NE(server.HandleRequest(Get("/nope")).find("404 Not Found"),
            std::string::npos);
  auto post = ParseHttpRequest("POST /metrics HTTP/1.1\r\n");
  ASSERT_TRUE(post.has_value());
  EXPECT_NE(server.HandleRequest(*post).find("405 Method Not Allowed"),
            std::string::npos);
}

// --- live server smoke (real sockets) --------------------------------------

TEST(TelemetryServerSmoke, ServesMetricsAndHealthzOverLoopback) {
  MetricsRegistry reg;
  reg.GetCounter("hodor_epochs_total").Increment(7);

  TelemetryServer server;
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);
  server.PublishMetrics(&reg);

  // /metrics: Prometheus exposition with the published counter.
  const std::string metrics = testing::HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("hodor_epochs_total 7"), std::string::npos);

  // /healthz: valid JSON, status ok, request accounting.
  const std::string healthz = testing::HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  const std::string body = testing::HttpBody(healthz);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

  // The index lists the endpoints.
  EXPECT_NE(testing::HttpGet(server.port(), "/").find("/metrics"),
            std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
  EXPECT_FALSE(server.running());
  // Stopped server no longer answers.
  EXPECT_EQ(testing::HttpGet(server.port(), "/healthz"), "");
}

TEST(TelemetryServerSmoke, ServesSignalsAndAlertsSnapshots) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());

  SignalHealthBoard board;
  DecisionRecord record;
  record.epoch = 4;
  InvariantRecord inv;
  inv.check = "demand";
  inv.invariant = "ingress(SEAT)";
  inv.residual = 0.3;
  inv.threshold = 0.02;
  inv.verdict = InvariantVerdict::kFail;
  record.Add(inv);
  board.ObserveEpoch(record);
  server.PublishSignals(board);
  server.PublishAlerts("{\"active\":[{\"entity\":\"SEAT\"}],\"resolved\":[]}");

  const std::string signals =
      testing::HttpBody(testing::HttpGet(server.port(), "/health/signals"));
  EXPECT_TRUE(IsValidJson(signals)) << signals;
  EXPECT_NE(signals.find("\"entity\":\"SEAT\""), std::string::npos);

  const std::string alerts =
      testing::HttpBody(testing::HttpGet(server.port(), "/alerts"));
  EXPECT_NE(alerts.find("\"entity\":\"SEAT\""), std::string::npos);

  server.Stop();
}

TEST(TelemetryServerSmoke, StartStopIsIdempotentAndRestartSafe) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());
  const std::uint16_t port = server.port();
  EXPECT_NE(port, 0);
  server.Stop();
  server.Stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace hodor::obs
