// A library of concrete topologies.
//
// Canned research topologies (Abilene from SNDlib, a B4-like and a
// GÉANT-like WAN), small regular shapes for unit tests, the three-router
// network from the paper's Figure 3, and seeded random generators
// (Waxman, Erdős–Rényi) for scaling experiments.
//
// All generated topologies give every node an external port so that any
// node can be a demand endpoint, matching how the paper's demand input is
// defined over ingress/egress routers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/topology.h"
#include "util/rng.h"

namespace hodor::net {

// Knobs shared by the generators.
struct TopologyDefaults {
  double link_capacity = 100.0;     // Gbps per direction
  double external_capacity = 400.0; // Gbps per external port
};

// The Abilene backbone as published in SNDlib [Orlowski et al. 2010]:
// 12 PoPs and 15 physical links. Used by the paper's §4.1 preliminary
// evaluation (144-entry demand matrices).
Topology Abilene(const TopologyDefaults& d = {});

// A 12-site, 19-link inter-datacenter WAN modeled on Google's published B4
// topology (Jain et al., SIGCOMM'13).
Topology B4Like(const TopologyDefaults& d = {});

// A 22-node, 37-link pan-European research WAN modeled on the GÉANT
// backbone as distributed with SNDlib.
Topology GeantLike(const TopologyDefaults& d = {});

// The three-router triangle from the paper's Figure 3 (nodes A, B, C, all
// with external ports; links A-B, B-C, A-C).
Topology Figure3Triangle(const TopologyDefaults& d = {});

// --- regular shapes for tests ---------------------------------------------

// n nodes in a line: 0-1-2-...-(n-1). Precondition: n >= 2.
Topology Line(std::size_t n, const TopologyDefaults& d = {});

// n nodes in a cycle. Precondition: n >= 3.
Topology Ring(std::size_t n, const TopologyDefaults& d = {});

// Hub node 0 connected to n-1 leaves. Precondition: n >= 2.
Topology Star(std::size_t n, const TopologyDefaults& d = {});

// Every pair connected. Precondition: n >= 2.
Topology FullMesh(std::size_t n, const TopologyDefaults& d = {});

// rows x cols grid with nearest-neighbour links. Precondition: rows,cols>=1
// and rows*cols >= 2.
Topology Grid(std::size_t rows, std::size_t cols,
              const TopologyDefaults& d = {});

// Two-tier leaf-spine (Clos) fabric: every leaf connects to every spine.
// Only leaves have external ports (they face the servers); spines are pure
// transit — the datacenter environment §6 asks about. Preconditions:
// leaves >= 2, spines >= 1.
Topology LeafSpine(std::size_t leaves, std::size_t spines,
                   const TopologyDefaults& d = {});

// --- random generators ------------------------------------------------------

// Waxman random graph: nodes placed uniformly in the unit square; each pair
// linked with probability alpha * exp(-dist / (beta * L)) where L is the
// maximum pairwise distance. A spanning tree is added first so the result
// is always connected. Typical parameters: alpha=0.4, beta=0.25.
Topology Waxman(std::size_t n, util::Rng& rng, double alpha = 0.4,
                double beta = 0.25, const TopologyDefaults& d = {});

// Erdős–Rényi G(n, p) plus a random spanning tree for connectivity.
Topology ErdosRenyi(std::size_t n, double p, util::Rng& rng,
                    const TopologyDefaults& d = {});

}  // namespace hodor::net
