#include "telemetry/signal_frame.h"

namespace hodor::telemetry {

SignalFrame::SignalFrame(const net::Topology& topo) : topo_(&topo) {
  const std::size_t links = topo.link_count();
  const std::size_t nodes = topo.node_count();
  tx_.resize(links);
  rx_.resize(links);
  status_.resize(links);
  link_drain_.resize(links);
  tx_present_.Resize(links);
  rx_present_.Resize(links);
  status_present_.Resize(links);
  link_drain_present_.Resize(links);

  responded_.assign(nodes, 1);
  node_drain_.resize(nodes);
  dropped_.resize(nodes);
  ext_in_.resize(nodes);
  ext_out_.resize(nodes);
  node_drain_present_.Resize(nodes);
  dropped_present_.Resize(nodes);
  ext_in_present_.Resize(nodes);
  ext_out_present_.Resize(nodes);
  responded_count_ = nodes;
}

void SignalFrame::Clear() {
  tx_present_.Clear();
  rx_present_.Clear();
  status_present_.Clear();
  link_drain_present_.Clear();
  node_drain_present_.Clear();
  dropped_present_.Clear();
  ext_in_present_.Clear();
  ext_out_present_.Clear();
  std::fill(responded_.begin(), responded_.end(), 1);
  responded_count_ = responded_.size();
}

void SignalFrame::MarkHonestPresence() {
  tx_present_.SetAll();
  rx_present_.SetAll();
  status_present_.SetAll();
  link_drain_present_.SetAll();
  node_drain_present_.SetAll();
  dropped_present_.SetAll();
  ext_in_present_.Clear();
  ext_out_present_.Clear();
  for (const net::Node& node : topo_->nodes()) {
    if (!node.has_external_port) continue;
    ext_in_present_.Set(node.id.value());
    ext_out_present_.Set(node.id.value());
  }
}

void SignalFrame::MarkUnresponsive(net::NodeId v) {
  if (responded_[v.value()] == 0) return;
  responded_[v.value()] = 0;
  --responded_count_;
  node_drain_present_.Reset(v.value());
  dropped_present_.Reset(v.value());
  ext_in_present_.Reset(v.value());
  ext_out_present_.Reset(v.value());
  for (net::LinkId e : topo_->OutLinks(v)) {
    tx_present_.Reset(e.value());
    status_present_.Reset(e.value());
    link_drain_present_.Reset(e.value());
  }
  for (net::LinkId e : topo_->InLinks(v)) {
    rx_present_.Reset(e.value());
  }
}

}  // namespace hodor::telemetry
