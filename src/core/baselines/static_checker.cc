#include "core/baselines/static_checker.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace hodor::core::baselines {

std::vector<double> StaticChecker::Features(
    const controlplane::ControllerInput& input) const {
  std::vector<double> f;
  for (net::NodeId v : topo_->ExternalNodes()) {
    f.push_back(input.demand.RowSum(v));
  }
  f.push_back(input.demand.Total());
  f.push_back(static_cast<double>(input.AvailableLinkCount()));
  double drained = 0.0;
  for (bool b : input.node_drained) {
    if (b) drained += 1.0;
  }
  f.push_back(drained);
  return f;
}

void StaticChecker::Observe(const controlplane::ControllerInput& input) {
  const std::vector<double> f = Features(input);
  if (observed_ == 0) {
    feature_min_ = f;
    feature_max_ = f;
  } else {
    for (std::size_t i = 0; i < f.size(); ++i) {
      feature_min_[i] = std::min(feature_min_[i], f[i]);
      feature_max_[i] = std::max(feature_max_[i], f[i]);
    }
  }
  ++observed_;
}

StaticCheckResult StaticChecker::Check(
    const controlplane::ControllerInput& input) const {
  StaticCheckResult result;

  if (opts_.enable_impossible_checks) {
    if (input.demand.node_count() != topo_->node_count()) {
      result.violations.push_back("demand matrix has wrong dimensions");
      return result;
    }
    if (input.link_available.size() != topo_->link_count() ||
        input.node_drained.size() != topo_->node_count() ||
        input.link_drained.size() != topo_->link_count()) {
      result.violations.push_back("input vectors have wrong dimensions");
      return result;
    }
    for (net::NodeId v : topo_->ExternalNodes()) {
      const double cap = topo_->node(v).external_capacity;
      if (input.demand.RowSum(v) > cap * (1.0 + 1e-9)) {
        result.violations.push_back(
            "impossible: demand from " + topo_->node(v).name + " (" +
            util::FormatDouble(input.demand.RowSum(v)) +
            " Gbps) exceeds its external capacity (" +
            util::FormatDouble(cap) + " Gbps)");
      }
    }
  }

  if (opts_.enable_history_checks && observed_ >= opts_.min_history) {
    const std::vector<double> f = Features(input);
    const std::size_t ext = topo_->ExternalNodes().size();
    auto name_of = [&](std::size_t i) -> std::string {
      if (i < ext) {
        return "row_sum(" + topo_->node(topo_->ExternalNodes()[i]).name + ")";
      }
      if (i == ext) return "total_demand";
      if (i == ext + 1) return "available_links";
      return "drained_nodes";
    };
    for (std::size_t i = 0; i < f.size(); ++i) {
      const double span =
          std::max(1e-9, feature_max_[i] - feature_min_[i]);
      const double lo =
          feature_min_[i] - opts_.history_margin * std::max(span, feature_min_[i]);
      const double hi =
          feature_max_[i] + opts_.history_margin * std::max(span, feature_max_[i]);
      if (f[i] < lo || f[i] > hi) {
        result.violations.push_back(
            "historically unlikely: " + name_of(i) + "=" +
            util::FormatDouble(f[i]) + " outside [" + util::FormatDouble(lo) +
            ", " + util::FormatDouble(hi) + "]");
      }
    }
  }
  return result;
}

}  // namespace hodor::core::baselines
