// A NetworkSnapshot is the comprehensive set of router signals gathered in
// one collection round (paper §3 step 1) — the raw material hardening works
// on. It wraps one columnar SignalFrame plus the probe results; accessors
// resolve the "two vantage points" of each signal: TxRate(e)/RxRate(e) are
// the two independent measurements of the rate on directed link e,
// StatusAtSrc/StatusAtDst the two views of a link's state. Every accessor
// is an O(1) array read.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "telemetry/signal_frame.h"
#include "telemetry/signals.h"
#include "util/status.h"

namespace hodor::telemetry {

class NetworkSnapshot {
 public:
  NetworkSnapshot(const net::Topology& topo, std::uint64_t epoch);

  const net::Topology& topology() const { return *topo_; }
  std::uint64_t epoch() const { return epoch_; }

  // Forgets all signals and probe results for a new collection round,
  // reusing every buffer (the pipeline's per-epoch workspace reset).
  void Reset(std::uint64_t epoch);

  // The raw columnar frame: agents and fault injection write through it.
  SignalFrame& frame() { return frame_; }
  const SignalFrame& frame() const { return frame_; }

  bool Responded(net::NodeId v) const { return frame_.Responded(v); }

  // --- resolved signal accessors (empty when missing / unresponsive) ------

  // TX counter for directed link e, as reported by e.src.
  std::optional<double> TxRate(net::LinkId e) const { return frame_.TxRate(e); }
  // RX counter for directed link e, as reported by e.dst.
  std::optional<double> RxRate(net::LinkId e) const { return frame_.RxRate(e); }

  // Status of directed link e as reported by its src / its dst. The dst
  // reports through the reverse direction's out-interface (same physical
  // link).
  std::optional<LinkStatus> StatusAtSrc(net::LinkId e) const {
    return frame_.Status(e);
  }
  std::optional<LinkStatus> StatusAtDst(net::LinkId e) const {
    return frame_.Status(topo_->link(e).reverse);
  }

  std::optional<bool> LinkDrainAtSrc(net::LinkId e) const {
    return frame_.LinkDrain(e);
  }
  std::optional<bool> LinkDrainAtDst(net::LinkId e) const {
    return frame_.LinkDrain(topo_->link(e).reverse);
  }

  std::optional<bool> NodeDrained(net::NodeId v) const {
    return frame_.NodeDrained(v);
  }
  std::optional<double> DroppedRate(net::NodeId v) const {
    return frame_.DroppedRate(v);
  }
  std::optional<double> ExtInRate(net::NodeId v) const {
    return frame_.ExtInRate(v);
  }
  std::optional<double> ExtOutRate(net::NodeId v) const {
    return frame_.ExtOutRate(v);
  }

  // Probe results attached by the ProbeEngine (may be empty if probing is
  // disabled). Indexed lookup by directed link.
  void SetProbeResults(std::vector<ProbeResult> results);
  // Zero-allocation path: the collector fills probe_buffer() in place
  // (capacity survives Reset), then calls IndexProbeResults().
  std::vector<ProbeResult>& probe_buffer() { return probes_; }
  void IndexProbeResults();
  std::optional<bool> ProbeSucceeded(net::LinkId e) const;
  const std::vector<ProbeResult>& probe_results() const { return probes_; }

  // Count of signal values present across all routers — O(1) from the
  // frame's incrementally maintained presence popcounts.
  std::size_t PresentSignalCount() const {
    return frame_.PresentSignalCount();
  }

  // Computes the exact changed-signal set against `prev` — the frame's
  // columns (via SignalFrame::DiffAgainst) plus probe outcomes — and stamps
  // base/target epochs. Both snapshots must be over the same Topology
  // object; otherwise the delta degrades to `full` (assume everything
  // changed), which is always safe for consumers.
  void DiffAgainst(const NetworkSnapshot& prev, FrameDelta& delta) const;

 private:
  const net::Topology* topo_;
  std::uint64_t epoch_;
  SignalFrame frame_;
  std::vector<ProbeResult> probes_;
  std::vector<std::optional<bool>> probe_by_link_;
};

}  // namespace hodor::telemetry
