# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_graph_algorithms_test.
