#include "net/state.h"

namespace hodor::net {

GroundTruthState::GroundTruthState(const Topology& topo)
    : topo_(&topo),
      link_up_(topo.link_count(), true),
      link_dataplane_ok_(topo.link_count(), true),
      link_drained_(topo.link_count(), false),
      node_drained_(topo.node_count(), false),
      node_forwarding_(topo.node_count(), true) {}

void GroundTruthState::SetLinkUp(LinkId link, bool up) {
  const Link& l = topo_->link(link);
  link_up_[l.id.value()] = up;
  link_up_[l.reverse.value()] = up;
}

void GroundTruthState::SetLinkDataplaneOk(LinkId link, bool ok) {
  const Link& l = topo_->link(link);
  link_dataplane_ok_[l.id.value()] = ok;
  link_dataplane_ok_[l.reverse.value()] = ok;
}

void GroundTruthState::SetNodeDrained(NodeId node, bool drained) {
  HODOR_CHECK(node.valid() && node.value() < node_drained_.size());
  node_drained_[node.value()] = drained;
}

void GroundTruthState::SetLinkDrained(LinkId link, bool drained) {
  const Link& l = topo_->link(link);
  link_drained_[l.id.value()] = drained;
  link_drained_[l.reverse.value()] = drained;
}

void GroundTruthState::SetNodeForwarding(NodeId node, bool ok) {
  HODOR_CHECK(node.valid() && node.value() < node_forwarding_.size());
  node_forwarding_[node.value()] = ok;
}

bool GroundTruthState::LinkUsable(LinkId link) const {
  const Link& l = topo_->link(link);
  return LinkPhysicallyUsable(link) && !link_drained_[link.value()] &&
         !node_drained_[l.src.value()] && !node_drained_[l.dst.value()];
}

bool GroundTruthState::LinkPhysicallyUsable(LinkId link) const {
  const Link& l = topo_->link(link);
  return link_up_[link.value()] && link_dataplane_ok_[link.value()] &&
         node_forwarding_[l.src.value()] && node_forwarding_[l.dst.value()];
}

std::size_t GroundTruthState::UsableLinkCount() const {
  std::size_t n = 0;
  for (const Link& l : topo_->links()) {
    if (LinkUsable(l.id)) ++n;
  }
  return n;
}

}  // namespace hodor::net
