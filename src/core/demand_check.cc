#include "core/demand_check.h"

#include <sstream>

#include "util/stats.h"
#include "util/strings.h"

namespace hodor::core {

std::string DemandViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  os << (kind == DemandInvariantKind::kIngress ? "ingress" : "egress")
     << " invariant at " << topo.node(node).name << ": counter="
     << util::FormatDouble(counter_value, 3)
     << " demand_sum=" << util::FormatDouble(demand_sum, 3)
     << " rel_diff=" << util::FormatPercent(relative_diff, 2);
  return os.str();
}

DemandCheckResult CheckDemand(const net::Topology& topo,
                              const HardenedState& hardened,
                              const flow::DemandMatrix& demand_input,
                              const DemandCheckOptions& opts) {
  HODOR_CHECK(demand_input.node_count() == topo.node_count());
  DemandCheckResult result;

  auto evaluate = [&](net::NodeId v, DemandInvariantKind kind,
                      const std::optional<double>& counter, double sum) {
    if (!counter.has_value()) {
      ++result.skipped_invariants;
      return;
    }
    ++result.checked_invariants;
    if (*counter < opts.idle_floor && sum < opts.idle_floor) return;
    const double diff = util::RelativeDifference(*counter, sum);
    if (diff > opts.tau_e) {
      result.violations.push_back(
          DemandViolation{v, kind, *counter, sum, diff});
    }
  };

  // Gauge in-network loss from the hardened drop counters: egress
  // invariants are only meaningful when the network is not eating traffic.
  double total_dropped = 0.0;
  double total_ext_in = 0.0;
  for (const net::Node& n : topo.nodes()) {
    if (hardened.dropped[n.id.value()]) {
      total_dropped += *hardened.dropped[n.id.value()];
    }
    if (hardened.ext_in[n.id.value()]) {
      total_ext_in += *hardened.ext_in[n.id.value()];
    }
  }
  if (total_ext_in > opts.idle_floor) {
    result.network_loss_fraction = total_dropped / total_ext_in;
  }
  const bool check_egress =
      result.network_loss_fraction <= opts.max_network_loss_fraction;
  result.egress_skipped_due_to_loss = !check_egress;

  for (net::NodeId v : topo.ExternalNodes()) {
    evaluate(v, DemandInvariantKind::kIngress, hardened.ext_in[v.value()],
             demand_input.RowSum(v));
    if (check_egress) {
      evaluate(v, DemandInvariantKind::kEgress, hardened.ext_out[v.value()],
               demand_input.ColSum(v));
    } else {
      ++result.skipped_invariants;
    }
  }
  return result;
}

}  // namespace hodor::core
