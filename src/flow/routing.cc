#include "flow/routing.h"

#include <algorithm>
#include <cmath>

namespace hodor::flow {

const std::vector<WeightedPath> RoutingPlan::kEmpty;

void RoutingPlan::SetPaths(net::NodeId src, net::NodeId dst,
                           std::vector<WeightedPath> paths) {
  HODOR_CHECK(!paths.empty());
  double total = 0.0;
  for (const WeightedPath& wp : paths) {
    HODOR_CHECK_MSG(wp.weight > 0.0, "path weights must be positive");
    HODOR_CHECK_MSG(!wp.path.empty(), "paths must be non-empty");
    total += wp.weight;
  }
  HODOR_CHECK_MSG(std::fabs(total - 1.0) < 1e-6, "path weights must sum to 1");
  paths_[NodePair{src, dst}] = std::move(paths);
}

const std::vector<WeightedPath>& RoutingPlan::PathsFor(net::NodeId src,
                                                       net::NodeId dst) const {
  auto it = paths_.find(NodePair{src, dst});
  return it == paths_.end() ? kEmpty : it->second;
}

bool RoutingPlan::HasRoute(net::NodeId src, net::NodeId dst) const {
  return paths_.find(NodePair{src, dst}) != paths_.end();
}

std::vector<net::LinkId> RoutingPlan::UsedLinks() const {
  std::vector<bool> seen;
  std::vector<net::LinkId> out;
  for (const auto& [pair, paths] : paths_) {
    for (const WeightedPath& wp : paths) {
      for (net::LinkId lid : wp.path) {
        if (lid.value() >= seen.size()) seen.resize(lid.value() + 1, false);
        if (!seen[lid.value()]) {
          seen[lid.value()] = true;
          out.push_back(lid);
        }
      }
    }
  }
  return out;
}

RoutingPlan ShortestPathRouting(const net::Topology& topo,
                                const DemandMatrix& demand,
                                const net::LinkFilter& filter) {
  RoutingPlan plan;
  for (const auto& [src, dst] : demand.Pairs()) {
    auto path = net::ShortestPath(topo, src, dst, filter);
    if (!path.ok()) continue;  // unroutable: dropped at ingress
    plan.SetPaths(src, dst, {WeightedPath{std::move(path).value(), 1.0}});
  }
  return plan;
}

RoutingPlan EcmpRouting(const net::Topology& topo, const DemandMatrix& demand,
                        const net::LinkFilter& filter, std::size_t k_max) {
  RoutingPlan plan;
  for (const auto& [src, dst] : demand.Pairs()) {
    std::vector<net::Path> candidates =
        net::KShortestPaths(topo, src, dst, k_max, filter);
    if (candidates.empty()) continue;
    const double best = net::PathMetric(topo, candidates.front());
    std::vector<WeightedPath> equal_cost;
    for (net::Path& p : candidates) {
      if (net::PathMetric(topo, p) <= best + 1e-9) {
        equal_cost.push_back(WeightedPath{std::move(p), 0.0});
      }
    }
    const double w = 1.0 / static_cast<double>(equal_cost.size());
    for (WeightedPath& wp : equal_cost) wp.weight = w;
    plan.SetPaths(src, dst, std::move(equal_cost));
  }
  return plan;
}

RoutingPlan GreedyTeRouting(const net::Topology& topo,
                            const DemandMatrix& demand,
                            const net::LinkFilter& filter,
                            const TeOptions& opts) {
  HODOR_CHECK(opts.k_paths >= 1 && opts.chunks_per_pair >= 1);
  RoutingPlan plan;

  // Candidate paths per pair.
  struct PairState {
    net::NodeId src, dst;
    double demand_gbps;
    std::vector<net::Path> candidates;
    std::vector<double> placed;  // Gbps per candidate
  };
  std::vector<PairState> pairs;
  for (const auto& [src, dst] : demand.Pairs()) {
    PairState ps;
    ps.src = src;
    ps.dst = dst;
    ps.demand_gbps = demand.At(src, dst);
    ps.candidates = net::KShortestPaths(topo, src, dst, opts.k_paths, filter);
    if (ps.candidates.empty()) continue;
    ps.placed.assign(ps.candidates.size(), 0.0);
    pairs.push_back(std::move(ps));
  }

  // Largest pairs first, chunk by chunk, each chunk on the candidate that
  // minimises the resulting maximum utilisation along its links.
  std::sort(pairs.begin(), pairs.end(),
            [](const PairState& a, const PairState& b) {
              if (a.demand_gbps != b.demand_gbps) {
                return a.demand_gbps > b.demand_gbps;
              }
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });

  std::vector<double> load(topo.link_count(), 0.0);
  auto path_cost = [&](const net::Path& p, double extra) {
    double worst = 0.0;
    for (net::LinkId lid : p) {
      const double u =
          (load[lid.value()] + extra) / topo.link(lid).capacity;
      worst = std::max(worst, u);
    }
    return worst;
  };

  for (PairState& ps : pairs) {
    const double chunk =
        ps.demand_gbps / static_cast<double>(opts.chunks_per_pair);
    for (std::size_t c = 0; c < opts.chunks_per_pair; ++c) {
      std::size_t best = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < ps.candidates.size(); ++i) {
        const double cost = path_cost(ps.candidates[i], chunk);
        if (cost < best_cost) {
          best_cost = cost;
          best = i;
        }
      }
      ps.placed[best] += chunk;
      for (net::LinkId lid : ps.candidates[best]) {
        load[lid.value()] += chunk;
      }
    }
  }

  for (PairState& ps : pairs) {
    std::vector<WeightedPath> weighted;
    for (std::size_t i = 0; i < ps.candidates.size(); ++i) {
      if (ps.placed[i] <= 0.0) continue;
      weighted.push_back(WeightedPath{std::move(ps.candidates[i]),
                                      ps.placed[i] / ps.demand_gbps});
    }
    if (!weighted.empty()) {
      // Normalise away floating accumulation error.
      double total = 0.0;
      for (const WeightedPath& wp : weighted) total += wp.weight;
      for (WeightedPath& wp : weighted) wp.weight /= total;
      plan.SetPaths(ps.src, ps.dst, std::move(weighted));
    }
  }
  return plan;
}

}  // namespace hodor::flow
