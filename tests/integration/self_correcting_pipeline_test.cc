// Integration: routers that self-correct (§6) in front of the Hodor
// validator — defense in depth along the full pipeline.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "faults/snapshot_faults.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "telemetry/self_correction.h"
#include "util/logging.h"

namespace hodor {
namespace {

using net::LinkId;
using net::NodeId;

struct SelfCorrectingPipelineTest : ::testing::Test {
  SelfCorrectingPipelineTest()
      : topo(net::Abilene()), state(topo) {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
    util::Rng rng(8);
    demand = flow::GravityDemand(topo, rng);
    flow::NormalizeToMaxUtilization(topo, 0.5, demand);
  }
  ~SelfCorrectingPipelineTest() override {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
  }

  controlplane::EpochResult RunOneEpoch(
      const telemetry::SnapshotMutator& fault) {
    controlplane::PipelineOptions opts;
    opts.collector.probes.false_loss_rate = 0.0;
    controlplane::Pipeline pipeline(topo, opts, util::Rng(3));
    pipeline.Bootstrap(state, demand);
    core::Validator validator(topo);
    pipeline.SetValidator(validator.AsPipelineValidator());
    return pipeline.RunEpoch(state, demand, fault);
  }

  net::Topology topo;
  net::GroundTruthState state;
  flow::DemandMatrix demand;
};

TEST_F(SelfCorrectingPipelineTest, CounterLieCleanedBeforeValidation) {
  // Pick a loaded link and corrupt its TX counter.
  const flow::RoutingPlan plan =
      flow::ShortestPathRouting(topo, demand, net::AllLinks());
  const auto sim = flow::SimulateFlow(topo, state, demand, plan);
  LinkId victim = LinkId::Invalid();
  for (LinkId e : topo.LinkIds()) {
    if (sim.carried[e.value()] > 5.0) {
      victim = e;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  auto lie = faults::CorruptLinkCounter(victim, faults::CounterSide::kTx,
                                        faults::CounterCorruption::kScale,
                                        1.5);

  // Without self-correction: the validator's hardener sees and repairs the
  // lie (flagged > 0 at the hardening layer; still accepted as an input).
  const auto raw = RunOneEpoch(lie);
  core::Validator validator(topo);
  const auto raw_report = validator.Validate(raw.raw_input, raw.snapshot);
  EXPECT_GT(raw_report.hardened.flagged_rate_count, 0u);

  // With on-router self-correction composed after the bug: the lie never
  // leaves the router, the central hardener sees a clean network.
  auto corrected = faults::ComposeFaults(
      {lie, telemetry::SelfCorrectionStage()});
  const auto clean = RunOneEpoch(corrected);
  const auto clean_report =
      validator.Validate(clean.raw_input, clean.snapshot);
  EXPECT_EQ(clean_report.hardened.flagged_rate_count, 0u);
  EXPECT_TRUE(clean_report.ok());
  EXPECT_TRUE(clean.decision.accept);
}

TEST_F(SelfCorrectingPipelineTest, BothLayersAcceptHealthyEpochs) {
  auto healthy_with_stage =
      faults::ComposeFaults({telemetry::SelfCorrectionStage()});
  const auto result = RunOneEpoch(healthy_with_stage);
  EXPECT_TRUE(result.decision.accept) << result.decision.reason;
  EXPECT_GT(result.metrics.demand_satisfaction, 0.999);
}

TEST_F(SelfCorrectingPipelineTest, SelfCorrectionCannotFixExternalCounters) {
  // Zero a router's external ingress counter: no neighbour measures it, so
  // self-correction is powerless and the demand check (rightly) fires —
  // central validation remains necessary (§6's point that these techniques
  // complement, not replace, Hodor).
  const NodeId victim = topo.FindNode("IPLSng").value();
  auto fault = faults::ComposeFaults(
      {[victim](telemetry::NetworkSnapshot& snap) {
         snap.frame().SetExtInRate(victim, 0.0);
       },
       telemetry::SelfCorrectionStage()});
  const auto result = RunOneEpoch(fault);
  EXPECT_FALSE(result.decision.accept);
  EXPECT_NE(result.decision.reason.find("demand"), std::string::npos);
}

}  // namespace
}  // namespace hodor
