// The outage-scenario catalog: one reproducible scenario per outage class
// described in the paper's §2 (plus two controls). This stands in for the
// paper's five-year production root-cause dataset (DESIGN.md §2): each
// scenario wires ground-truth setup, router-signal faults, and
// aggregation faults so that running it through the control pipeline
// recreates the corresponding incident mechanism.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "controlplane/services.h"
#include "net/state.h"
#include "net/topology.h"
#include "telemetry/collector.h"
#include "util/status.h"

namespace hodor::faults {

enum class FaultClass {
  kRouterSignal,   // §2.1: routers produce incorrect signals
  kAggregation,    // §2.2: correct signals aggregated incorrectly
  kExternalInput,  // §2.2: inputs measured outside the network (demand)
  kNone,           // control scenario: nothing is wrong with the inputs
};

constexpr const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kRouterSignal: return "router-signal";
    case FaultClass::kAggregation: return "aggregation";
    case FaultClass::kExternalInput: return "external-input";
    case FaultClass::kNone: return "none";
  }
  return "?";
}

struct OutageScenario {
  std::string id;
  std::string description;  // the incident, as told in the paper
  std::string paper_ref;    // section of the paper it reproduces
  FaultClass fault_class = FaultClass::kNone;

  // True when the controller's inputs end up not reflecting current network
  // state (i.e. a validator *should* reject). The disaster control is the
  // false-positive probe: inputs are atypical but correct.
  bool input_fault = true;

  // True when the scenario corrupts raw counters in a way hardening should
  // flag (and usually repair) even if the derived inputs stay correct —
  // e.g. the Figure 3 single-counter corruption.
  bool expect_hardening_flags = false;

  // Which Hodor mechanism is expected to catch it (reporting only).
  std::string expected_detection;

  // Mutates ground truth before the epoch (real drains, dead links…).
  std::function<void(net::GroundTruthState&)> setup;
  // §2.1 router-signal corruption; may be null.
  telemetry::SnapshotMutator snapshot_fault;
  // §2.2 aggregation corruption; hooks may be null.
  controlplane::AggregationFaultHooks aggregation;
};

// The fault classes a scenario actually injects into the pipeline's
// inputs, as FaultClassName strings for Pipeline::SetFaultStamp /
// EpochResult::fault_classes. Usually just the scenario's fault_class,
// but control scenarios (kNone, input_fault = false) return an empty
// vector — nothing is wrong with the inputs, so detection-latency scoring
// must treat their epochs as clean.
inline std::vector<std::string> ActiveFaultClasses(
    const OutageScenario& scenario) {
  if (scenario.fault_class == FaultClass::kNone) return {};
  // Hardening-only corruptions (e.g. the Figure 3 single counter) still
  // count: a detector flagging them is a hit, not a false positive.
  if (!scenario.input_fault && !scenario.expect_hardening_flags) return {};
  return {FaultClassName(scenario.fault_class)};
}

class ScenarioCatalog {
 public:
  // Scenarios pick concrete routers/links deterministically from `topo`
  // (by degree, then name), so a given topology+seed always reproduces the
  // same incident. `topo` must outlive the catalog.
  explicit ScenarioCatalog(const net::Topology& topo,
                           std::uint64_t seed = 42);

  const std::vector<OutageScenario>& scenarios() const { return scenarios_; }

  util::StatusOr<const OutageScenario*> Find(std::string_view id) const;

 private:
  const net::Topology* topo_;
  std::vector<OutageScenario> scenarios_;
};

}  // namespace hodor::faults
