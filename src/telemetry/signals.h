// The router-signal vocabulary (paper §2.1, §3 step 1).
//
// Every quantity a router can report is modeled here, always as an
// std::optional so that *missing* telemetry (delayed, malformed, dropped)
// is a first-class state distinct from any value. The two ends of a
// physical link observe overlapping quantities, which is precisely the
// redundancy (R1) the hardening step exploits:
//   - the rate on directed link e is reported twice: by src as a TX counter
//     and by dst as an RX counter;
//   - the status of a physical link is reported by both ends.
#pragma once

#include <optional>
#include <unordered_map>

#include "net/ids.h"

namespace hodor::telemetry {

// Link status as reported at one end (optical / admin view — a link whose
// dataplane is broken can still honestly report kUp; see §4.2).
enum class LinkStatus { kDown = 0, kUp = 1 };

constexpr const char* LinkStatusName(LinkStatus s) {
  return s == LinkStatus::kUp ? "up" : "down";
}

// Signals a router reports about one of its *outgoing* interfaces
// (the src end of directed link e).
struct OutInterfaceSignals {
  std::optional<LinkStatus> status;  // operational status of the link
  std::optional<double> tx_rate;     // Gbps transmitted, rolling window
  std::optional<bool> link_drained;  // intent: this link is drained
};

// Signals a router reports about one of its *incoming* interfaces
// (the dst end of directed link e).
struct InInterfaceSignals {
  std::optional<double> rx_rate;  // Gbps received, rolling window
};

// Everything one router reports in one collection round.
struct RouterSignals {
  net::NodeId router;

  // False when the router's telemetry endpoint did not answer at all; all
  // other fields are then meaningless and should be empty.
  bool responded = true;

  std::optional<bool> drained;        // router-level drain intent signal
  std::optional<double> dropped_rate; // Gbps dropped at this router
  std::optional<double> ext_in_rate;  // external-port ingress counter
  std::optional<double> ext_out_rate; // external-port egress counter

  // Keyed by the directed LinkId whose src is this router.
  std::unordered_map<net::LinkId, OutInterfaceSignals> out_ifaces;
  // Keyed by the directed LinkId whose dst is this router.
  std::unordered_map<net::LinkId, InInterfaceSignals> in_ifaces;
};

// Result of one active neighbor probe over a physical link (R4).
struct ProbeResult {
  net::LinkId link;  // the probed direction
  bool success = false;
};

}  // namespace hodor::telemetry
