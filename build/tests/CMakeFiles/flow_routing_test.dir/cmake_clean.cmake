file(REMOVE_RECURSE
  "CMakeFiles/flow_routing_test.dir/flow/routing_test.cc.o"
  "CMakeFiles/flow_routing_test.dir/flow/routing_test.cc.o.d"
  "flow_routing_test"
  "flow_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
