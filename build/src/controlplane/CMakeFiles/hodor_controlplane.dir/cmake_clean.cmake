file(REMOVE_RECURSE
  "CMakeFiles/hodor_controlplane.dir/controller_input.cc.o"
  "CMakeFiles/hodor_controlplane.dir/controller_input.cc.o.d"
  "CMakeFiles/hodor_controlplane.dir/pipeline.cc.o"
  "CMakeFiles/hodor_controlplane.dir/pipeline.cc.o.d"
  "CMakeFiles/hodor_controlplane.dir/sdn_controller.cc.o"
  "CMakeFiles/hodor_controlplane.dir/sdn_controller.cc.o.d"
  "CMakeFiles/hodor_controlplane.dir/services.cc.o"
  "CMakeFiles/hodor_controlplane.dir/services.cc.o.d"
  "CMakeFiles/hodor_controlplane.dir/trace.cc.o"
  "CMakeFiles/hodor_controlplane.dir/trace.cc.o.d"
  "libhodor_controlplane.a"
  "libhodor_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
