file(REMOVE_RECURSE
  "CMakeFiles/telemetry_signal_catalog_test.dir/telemetry/signal_catalog_test.cc.o"
  "CMakeFiles/telemetry_signal_catalog_test.dir/telemetry/signal_catalog_test.cc.o.d"
  "telemetry_signal_catalog_test"
  "telemetry_signal_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_signal_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
