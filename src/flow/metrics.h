// Outcome metrics: how well the network served the demand.
//
// The outage-scenario experiments (E5) quantify "impact" with these
// numbers: a scenario whose routing was computed from bad inputs shows up
// as congestion (high max utilisation), drops, and low demand satisfaction.
#pragma once

#include <string>

#include "flow/simulator.h"
#include "net/topology.h"

namespace hodor::flow {

struct NetworkMetrics {
  // max over links of arriving/capacity (can exceed 1: offered overload).
  double max_link_utilization = 0.0;
  // mean of carried/capacity over links carrying any traffic.
  double mean_link_utilization = 0.0;
  // Links whose offered load exceeds capacity.
  std::size_t congested_link_count = 0;
  double total_dropped_gbps = 0.0;
  double unrouted_gbps = 0.0;
  // delivered / total true demand (1.0 == every byte arrived).
  double demand_satisfaction = 1.0;

  std::string ToString() const;
};

NetworkMetrics ComputeMetrics(const net::Topology& topo,
                              const DemandMatrix& true_demand,
                              const SimulationResult& result);

// An operator-facing judgement used by the outage benches: a simulation
// counts as a "major outage" when satisfaction drops below `threshold`
// or any link is congested beyond `overload`.
bool IsMajorOutage(const NetworkMetrics& m, double satisfaction_threshold = 0.999,
                   double overload = 1.0);

}  // namespace hodor::flow
