# Empty compiler generated dependencies file for hodor_core.
# This may be replaced when dependencies are built.
