file(REMOVE_RECURSE
  "libhodor_faults.a"
)
