// E8 — §4.2 topology validation and §4.3 drain validation.
//
// Part A: the link-state fusion truth table the paper says it "leaves out"
//         but describes by example ("if one side of a link reports up and
//         the other down, but rate counters are all large and a probe
//         succeeds, the link is likely up"): we enumerate the signal
//         combinations and print the fused verdict, with and without the
//         R3/R4 redundancies.
// Part B: verdict accuracy against ground truth across randomized fault
//         mixes (lying statuses, broken dataplanes, dead links).
// Part C: drain-validation outcomes for the §4.3 case taxonomy.
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/figure3_example.h"
#include "faults/scenario_catalog.h"
#include "faults/snapshot_faults.h"
#include "util/stats.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

using namespace hodor;

// Part A helper: a two-node network whose single link we feed controlled
// signal combinations.
struct TruthTableRow {
  std::optional<telemetry::LinkStatus> status_src, status_dst;
  std::optional<double> rate;   // both directions
  std::optional<bool> probe;    // both directions
};

core::LinkVerdict Fuse(const TruthTableRow& row,
                       const core::HardeningOptions& opts) {
  net::Topology topo;
  const net::NodeId a = topo.AddNode("a");
  const net::NodeId b = topo.AddNode("b");
  topo.AddExternalPort(a, 100.0);
  topo.AddExternalPort(b, 100.0);
  const net::LinkId ab = topo.AddBidirectionalLink(a, b, 100.0);
  const net::LinkId ba = topo.link(ab).reverse;

  telemetry::NetworkSnapshot snap(topo, 0);
  telemetry::SignalFrame& frame = snap.frame();
  auto fill = [&](net::NodeId v, net::LinkId out, net::LinkId in,
                  std::optional<telemetry::LinkStatus> status) {
    frame.SetNodeDrained(v, false);
    frame.SetDroppedRate(v, 0.0);
    frame.SetExtInRate(v, row.rate.value_or(0.0));
    frame.SetExtOutRate(v, row.rate.value_or(0.0));
    if (status) frame.SetStatus(out, *status);
    if (row.rate) frame.SetTxRate(out, *row.rate);
    frame.SetLinkDrain(out, false);
    if (row.rate) frame.SetRxRate(in, *row.rate);
  };
  fill(a, ab, ba, row.status_src);
  fill(b, ba, ab, row.status_dst);
  if (row.probe.has_value()) {
    snap.SetProbeResults({telemetry::ProbeResult{ab, *row.probe},
                          telemetry::ProbeResult{ba, *row.probe}});
  }
  return core::HardeningEngine(opts).Harden(snap).links[ab.value()].verdict;
}

std::string Show(const std::optional<telemetry::LinkStatus>& s) {
  return s ? telemetry::LinkStatusName(*s) : "-";
}

void PartA() {
  std::cout << "\n--- Part A: link-state fusion truth table (§4.2) ---\n";
  using LS = telemetry::LinkStatus;
  const std::vector<TruthTableRow> rows = {
      {LS::kUp, LS::kUp, 50.0, true},      // healthy busy link
      {LS::kUp, LS::kUp, 0.0, true},       // healthy idle link
      {LS::kUp, LS::kDown, 50.0, true},    // the paper's example
      {LS::kUp, LS::kDown, 0.0, false},    // disagreement, all else down
      {LS::kDown, LS::kDown, 0.0, false},  // plainly dead
      {LS::kUp, LS::kUp, 0.0, false},      // up status, dead dataplane
      {std::nullopt, std::nullopt, 50.0, true},   // silent routers
      {std::nullopt, std::nullopt, std::nullopt, std::nullopt},  // nothing
      {LS::kUp, std::nullopt, 0.0, false}, // one silent end, probe fails
  };
  core::HardeningOptions full;
  core::HardeningOptions status_only;
  status_only.use_alternative_signals = false;
  status_only.use_probes = false;

  util::TablePrinter table({"status src", "status dst", "rate", "probe",
                            "fused (R1+R3+R4)", "status-only (R1)"});
  for (const TruthTableRow& row : rows) {
    table.AddRowValues(
        Show(row.status_src), Show(row.status_dst),
        row.rate ? util::FormatDouble(*row.rate, 0) : "-",
        row.probe ? (*row.probe ? "ok" : "fail") : "-",
        core::LinkVerdictName(Fuse(row, full)),
        core::LinkVerdictName(Fuse(row, status_only)));
  }
  std::cout << table.ToString();
}

void PartB() {
  std::cout << "\n--- Part B: verdict accuracy under randomized faults ---\n";
  constexpr int kTrials = 200;
  struct Config {
    std::string name;
    core::HardeningOptions opts;
  };
  std::vector<Config> configs;
  configs.push_back({"R1+R3+R4 (full)", {}});
  {
    core::HardeningOptions o;
    o.use_probes = false;
    configs.push_back({"R1+R3 (no probes)", o});
  }
  {
    core::HardeningOptions o;
    o.use_alternative_signals = false;
    o.use_probes = false;
    configs.push_back({"R1 only (statuses)", o});
  }

  util::TablePrinter table(
      {"fusion config", "correct", "wrong", "unknown", "accuracy"});
  for (const Config& cfg : configs) {
    std::size_t correct = 0, wrong = 0, unknown = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const std::uint64_t seed = 21000 + trial;
      bench::Trial t(net::Abilene(), seed, 0.5, bench::DefaultCollector());
      util::Rng rng(seed ^ 0x77);
      // Ground-truth damage: some links die, some dataplanes break.
      for (net::LinkId e : t.topo.LinkIds()) {
        if (t.topo.link(e).reverse.value() < e.value()) continue;
        if (rng.Bernoulli(0.08)) t.state.SetLinkUp(e, false);
        else if (rng.Bernoulli(0.05)) t.state.SetLinkDataplaneOk(e, false);
      }
      t.sim = flow::SimulateFlow(t.topo, t.state, t.demand, t.plan);
      util::Rng crng(seed ^ 0x88);
      telemetry::Collector collector(t.topo, bench::DefaultCollector());
      // A couple of lying statuses on top.
      auto fault = faults::ComposeFaults(
          {faults::FalseLinkStatus(t.topo.LinkIds()[rng.Index(
                                       t.topo.link_count())],
                                   rng.Bernoulli(0.5),
                                   telemetry::LinkStatus::kDown),
           faults::FalseLinkStatus(t.topo.LinkIds()[rng.Index(
                                       t.topo.link_count())],
                                   rng.Bernoulli(0.5),
                                   telemetry::LinkStatus::kUp)});
      const auto snap = collector.Collect(t.state, t.sim, 0, crng, fault);
      const auto hs = core::HardeningEngine(cfg.opts).Harden(snap);
      for (net::LinkId e : t.topo.LinkIds()) {
        if (t.topo.link(e).reverse.value() < e.value()) continue;
        const bool truly_up = t.state.LinkPhysicallyUsable(e);
        switch (hs.links[e.value()].verdict) {
          case core::LinkVerdict::kUp:
            truly_up ? ++correct : ++wrong;
            break;
          case core::LinkVerdict::kDown:
            truly_up ? ++wrong : ++correct;
            break;
          case core::LinkVerdict::kUnknown:
            ++unknown;
            break;
        }
      }
    }
    table.AddRowValues(
        cfg.name, correct, wrong, unknown,
        util::FormatPercent(
            util::SafeRate(correct, correct + wrong + unknown), 2));
  }
  std::cout << table.ToString();
}

void PartC() {
  std::cout << "\n--- Part C: drain validation outcomes (§4.3) ---\n";
  const net::Topology topo = net::Abilene();
  const faults::ScenarioCatalog catalog(topo);
  util::Rng rng(77);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.35, demand);
  core::ScenarioRunOptions opts;
  opts.seed = 5;
  opts.pipeline.collector.probes.false_loss_rate = 0.0;

  util::TablePrinter table({"case", "scenario", "outcome"});
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"case 1: not marked, cannot carry", "drain-restart-race"},
      {"case 2: marked, could still carry", "erroneous-auto-drain"},
      {"aggregation drops a valid drain", "ignored-drain"},
  };
  for (const auto& [label, id] : cases) {
    const auto* sc = catalog.Find(id).value();
    const auto r = core::RunScenario(topo, *sc, demand, opts);
    std::string outcome =
        r.detected ? "violation raised"
                   : (r.warned ? "warning raised (ambiguous by design)"
                               : "missed");
    table.AddRowValues(label, id, outcome);
  }
  std::cout << table.ToString();
  std::cout << "\nCase 2 yields a warning, not a violation: without the "
               "drain-reason mechanism the paper proposes, a drained-but-"
               "capable router is indistinguishable from a pre-emptive "
               "maintenance drain (§4.3).\n";
}

}  // namespace

int main() {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  bench::PrintHeader("E8", "§4.2 topology + §4.3 drain validation",
                     "two-node fusion table; abilene accuracy sweep "
                     "(200 trials); drain case taxonomy at scenario seed 5");
  PartA();
  PartB();
  PartC();
  return 0;
}
