// Stage spans: taxonomy, RAII timing into the registry, JSONL tracing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/span.h"

namespace hodor::obs {
namespace {

TEST(Stage, NamesAreUniqueAndKnown) {
  std::set<std::string> names;
  for (Stage stage : kAllStages) {
    const std::string name = StageName(stage);
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kAllStages.size());
  EXPECT_EQ(StageName(Stage::kCheckDemand), std::string("check-demand"));
}

TEST(StageSpan, RecordsOneHistogramObservation) {
  MetricsRegistry reg;
  {
    StageSpan span(Stage::kCollect, /*epoch=*/3, &reg);
    // Burn a little time so the duration is visibly positive.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink += i * 0.5;
    (void)sink;
  }
  const Histogram* h =
      reg.FindHistogram("hodor_stage_duration_us", {{"stage", "collect"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->sum(), 0.0);
}

TEST(StageSpan, EndIsIdempotentAndReturnsFinalRecord) {
  MetricsRegistry reg;
  StageSpan span(Stage::kHarden, /*epoch=*/7, &reg);
  const SpanRecord first = span.End();
  const SpanRecord second = span.End();
  EXPECT_EQ(first.stage, Stage::kHarden);
  EXPECT_EQ(first.epoch, 7u);
  EXPECT_DOUBLE_EQ(first.duration_us, second.duration_us);
  // The destructor must not observe again either.
  const Histogram* h =
      reg.FindHistogram("hodor_stage_duration_us", {{"stage", "harden"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  // elapsed_us is frozen once ended.
  EXPECT_DOUBLE_EQ(span.elapsed_us(), first.duration_us);
}

TEST(StageSpan, DurationIsPositiveAndFrozen) {
  MetricsRegistry reg;
  StageSpan span(Stage::kSimulate, 0, &reg);
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += i * 0.5;
  (void)sink;
  const SpanRecord record = span.End();
  EXPECT_GT(record.duration_us, 0.0);
}

TEST(SpanRecord, ToJsonIsOneValidObject) {
  SpanRecord r;
  r.stage = Stage::kValidate;
  r.epoch = 12;
  r.duration_us = 42.7;
  const std::string json = r.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"stage\":\"validate\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":12"), std::string::npos);
  EXPECT_NE(json.find("\"duration_us\":"), std::string::npos);
}

TEST(TraceWriter, AppendsOneJsonLinePerSpan) {
  std::ostringstream out;
  MetricsRegistry reg;
  TraceWriter trace(out);
  {
    StageSpan a(Stage::kCollect, 1, &reg, &trace);
    StageSpan b(Stage::kAggregate, 1, &reg, &trace);
  }
  EXPECT_EQ(trace.written(), 2u);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
  EXPECT_EQ(count, 2u);
}

TEST(TraceWriter, OpenFileWritesJsonl) {
  const std::string path = ::testing::TempDir() + "/hodor_span_trace.jsonl";
  {
    auto trace = TraceWriter::OpenFile(path);
    ASSERT_NE(trace, nullptr);
    MetricsRegistry reg;
    StageSpan span(Stage::kProgram, 5, &reg, trace.get());
    span.End();
    EXPECT_EQ(trace->written(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(IsValidJson(line)) << line;
  EXPECT_NE(line.find("\"stage\":\"program\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hodor::obs
