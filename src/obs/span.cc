#include "obs/span.h"

#include <sstream>

#include "obs/json.h"
#include "util/clock.h"

namespace hodor::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kEpoch: return "epoch";
    case Stage::kCollect: return "collect";
    case Stage::kAggregate: return "aggregate";
    case Stage::kValidate: return "validate";
    case Stage::kHarden: return "harden";
    case Stage::kCheckDemand: return "check-demand";
    case Stage::kCheckTopology: return "check-topology";
    case Stage::kCheckDrain: return "check-drain";
    case Stage::kProgram: return "program";
    case Stage::kSimulate: return "simulate";
    case Stage::kTimeseriesSample: return "timeseries-sample";
    case Stage::kConfidenceScore: return "confidence-score";
  }
  return "?";
}

std::string SpanRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"stage\":\"" << StageName(stage) << "\",\"epoch\":" << epoch
     << ",\"duration_us\":" << JsonNumber(duration_us);
  if (!wall_time.empty()) os << ",\"ts\":\"" << JsonEscape(wall_time) << "\"";
  os << "}";
  return os.str();
}

std::unique_ptr<TraceWriter> TraceWriter::OpenFile(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!file->is_open()) return nullptr;
  std::unique_ptr<TraceWriter> writer(new TraceWriter());
  writer->out_ = file.get();
  writer->owned_ = std::move(file);
  return writer;
}

void TraceWriter::Write(const SpanRecord& record) {
  *out_ << record.ToJson() << "\n";
  ++written_;
}

StageSpan::StageSpan(Stage stage, std::uint64_t epoch,
                     MetricsRegistry* registry, TraceWriter* trace)
    : registry_(registry),
      trace_(trace),
      start_(std::chrono::steady_clock::now()) {
  record_.stage = stage;
  record_.epoch = epoch;
  // Wall time is stamped only when the span will be traced: registry
  // histograms don't carry it, and skipping the gettimeofday keeps the
  // hot path (every stage of every epoch) cheap.
  if (trace_) record_.wall_time = util::UtcTimestampNow();
}

StageSpan::~StageSpan() { End(); }

SpanRecord StageSpan::End() {
  if (ended_) return record_;
  record_.duration_us = elapsed_us();
  ended_ = true;
  ResolveRegistry(registry_)
      .GetHistogram("hodor_stage_duration_us",
                    {{"stage", StageName(record_.stage)}}, {},
                    "Wall-clock duration of one pipeline stage execution")
      .Observe(record_.duration_us);
  if (trace_) trace_->Write(record_);
  return record_;
}

double StageSpan::elapsed_us() const {
  if (ended_) return record_.duration_us;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

}  // namespace hodor::obs
