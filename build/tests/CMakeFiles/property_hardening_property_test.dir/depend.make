# Empty dependencies file for property_hardening_property_test.
# This may be replaced when dependencies are built.
