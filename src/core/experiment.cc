#include "core/experiment.h"

namespace hodor::core {

namespace {

// One pipeline arm: healthy bootstrap epoch, then the scenario epoch.
controlplane::EpochResult RunArm(const net::Topology& topo,
                                 const faults::OutageScenario& scenario,
                                 const flow::DemandMatrix& demand,
                                 const ScenarioRunOptions& opts,
                                 const Validator* validator,
                                 bool honest_inputs) {
  controlplane::Pipeline pipeline(topo, opts.pipeline, util::Rng(opts.seed));
  if (validator != nullptr) {
    pipeline.SetValidator(validator->AsPipelineValidator());
  }

  net::GroundTruthState state(topo);
  pipeline.Bootstrap(state, demand);
  (void)pipeline.RunEpoch(state, demand);  // healthy epoch: trains last-good

  if (scenario.setup) scenario.setup(state);
  if (honest_inputs) {
    return pipeline.RunEpoch(state, demand);
  }
  return pipeline.RunEpoch(state, demand, scenario.snapshot_fault,
                           scenario.aggregation);
}

}  // namespace

ScenarioRunResult RunScenario(const net::Topology& topo,
                              const faults::OutageScenario& scenario,
                              const flow::DemandMatrix& demand,
                              const ScenarioRunOptions& opts) {
  ScenarioRunResult result;
  result.scenario_id = scenario.id;

  const Validator validator(topo, opts.validator);

  const auto unvalidated =
      RunArm(topo, scenario, demand, opts, nullptr, /*honest=*/false);
  result.no_validation = unvalidated.metrics;

  const auto hodor =
      RunArm(topo, scenario, demand, opts, &validator, /*honest=*/false);
  result.with_hodor = hodor.metrics;
  result.fallback_used = hodor.used_fallback;

  const auto oracle =
      RunArm(topo, scenario, demand, opts, nullptr, /*honest=*/true);
  result.oracle = oracle.metrics;

  // Detection verdict: validate the faulted epoch's raw input against the
  // snapshot the validator saw (deterministic replay of the hodor arm).
  const ValidationReport report =
      validator.Validate(hodor.raw_input, hodor.snapshot);
  result.detected = !report.ok();
  result.warned = !report.drain.warnings_drained_but_active.empty();
  result.violation_count = report.violation_count();
  result.flagged_rates = report.hardened.flagged_rate_count;
  result.detection_summary = report.Summary();
  return result;
}

}  // namespace hodor::core
