# Empty compiler generated dependencies file for core_invariant_miner_test.
# This may be replaced when dependencies are built.
