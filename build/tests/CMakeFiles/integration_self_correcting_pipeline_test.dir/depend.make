# Empty dependencies file for integration_self_correcting_pipeline_test.
# This may be replaced when dependencies are built.
