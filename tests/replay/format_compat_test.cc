// Wire-format compatibility across the v1 → v2 bump (repair provenance:
// per-invariant source + confidence, absent on the v1 wire). The contract:
// this build writes v2 by default but can still write v1 on request, and
// a v1 log — whatever binary produced it — decodes and replays cleanly,
// with the provenance fields at their documented defaults.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "replay/epoch_log.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "test_util.h"

namespace hodor {
namespace {

std::string TempLogPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

replay::EpochVerdict VerdictWithProvenance() {
  replay::EpochVerdict verdict;
  verdict.validated = true;
  verdict.accept = false;
  verdict.reason = "demand check failed";
  verdict.decision_digest = 0xabcdef12u;
  verdict.evaluated = 2;
  verdict.failed = 1;
  replay::RecordedInvariant inv;
  inv.check = "demand";
  inv.invariant = "ingress(SEAT)";
  inv.residual = 0.21;
  inv.threshold = 0.02;
  inv.verdict = obs::InvariantVerdict::kFail;
  inv.source = "r2-pairwise";
  inv.confidence = 0.55;
  verdict.invariants.push_back(inv);
  return verdict;
}

// Writes a one-epoch log at the requested wire version, with an invariant
// that carries provenance, and returns its path.
std::string WriteLogAtVersion(const testing::HealthyNetwork& net,
                              const std::string& name,
                              std::uint32_t version) {
  const std::string path = TempLogPath(name);
  replay::EpochLogWriterOptions opts;
  opts.format_version = version;
  replay::EpochLogWriter writer;
  EXPECT_TRUE(writer.Open(path, net.topo, opts).ok());
  const telemetry::NetworkSnapshot snapshot = net.Snapshot(1);
  const controlplane::ControllerInput input = net.Input(snapshot, 2);
  EXPECT_TRUE(writer.Append(7, snapshot, input, VerdictWithProvenance()).ok());
  EXPECT_TRUE(writer.Close().ok());
  return path;
}

TEST(FormatCompat, V1LogDecodesWithDefaultProvenance) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path = WriteLogAtVersion(net, "v1.hlog", 1);

  replay::EpochLogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.format_version(), 1u);
  auto rec = reader.Read(0);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();

  // Everything the v1 wire carries survives; the v2-only provenance
  // fields come back at their decode defaults.
  const replay::EpochVerdict& v = rec.value().verdict;
  EXPECT_FALSE(v.accept);
  EXPECT_EQ(v.decision_digest, 0xabcdef12u);
  ASSERT_EQ(v.invariants.size(), 1u);
  EXPECT_EQ(v.invariants[0].invariant, "ingress(SEAT)");
  EXPECT_EQ(v.invariants[0].verdict, obs::InvariantVerdict::kFail);
  EXPECT_EQ(v.invariants[0].source, "");
  EXPECT_EQ(v.invariants[0].confidence, 0.0);
}

TEST(FormatCompat, V2LogRoundTripsProvenance) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  const std::string path =
      WriteLogAtVersion(net, "v2.hlog", replay::kFormatVersion);

  replay::EpochLogReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.format_version(), replay::kFormatVersion);
  auto rec = reader.Read(0);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec.value().verdict.invariants.size(), 1u);
  EXPECT_EQ(rec.value().verdict.invariants[0].source, "r2-pairwise");
  EXPECT_DOUBLE_EQ(rec.value().verdict.invariants[0].confidence, 0.55);
}

TEST(FormatCompat, WriterRejectsUnknownVersions) {
  const testing::HealthyNetwork net = testing::MakeAbilene();
  replay::EpochLogWriterOptions opts;
  opts.format_version = replay::kFormatVersion + 1;
  replay::EpochLogWriter writer;
  EXPECT_EQ(writer.Open(TempLogPath("vnext.hlog"), net.topo, opts).code(),
            util::StatusCode::kInvalidArgument);
  opts.format_version = 0;
  EXPECT_EQ(writer.Open(TempLogPath("v0.hlog"), net.topo, opts).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(FormatCompat, V1RecordingReplaysClean) {
  // A real pipeline run recorded on the v1 wire — what an operator's
  // pre-bump flight recorder produced — must still replay with zero
  // divergence: the digest is a passthrough and the validator re-runs
  // from the recorded inputs, neither of which needs the v2 fields.
  const net::Topology topo = net::Abilene();
  const net::GroundTruthState state(topo);
  util::Rng demand_rng(7);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.45, base);

  controlplane::Pipeline pipeline(topo, {}, util::Rng(8));
  const core::Validator validator(topo);
  pipeline.SetValidator(validator.AsPipelineValidator());
  pipeline.Bootstrap(state, base);

  const std::string path = TempLogPath("v1_run.hlog");
  replay::EpochLogWriterOptions opts;
  opts.format_version = 1;
  replay::PipelineRecorder recorder;
  ASSERT_TRUE(recorder.Open(path, topo, opts).ok());
  pipeline.AddEpochSink(recorder.Hook());
  for (int epoch = 0; epoch < 3; ++epoch) {
    pipeline.RunEpoch(state, base, nullptr, {});
  }
  ASSERT_TRUE(recorder.status().ok());
  ASSERT_TRUE(recorder.Close().ok());

  const replay::Replayer replayer;
  auto report = replayer.ReplayFile(path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().epochs_replayed, 3u);
  EXPECT_TRUE(report.value().clean()) << report.value().Summary();
}

}  // namespace
}  // namespace hodor
