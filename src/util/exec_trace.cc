#include "util/exec_trace.h"

#include "util/status.h"

namespace hodor::util {

namespace {

std::size_t RoundUpPowerOfTwo(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ExecRing::ExecRing(std::size_t capacity)
    : slots_(RoundUpPowerOfTwo(capacity)),
      mask_(RoundUpPowerOfTwo(capacity) - 1) {}

std::uint64_t ExecRing::DrainInto(std::uint64_t* cursor,
                                  std::vector<ExecEvent>* out) const {
  HODOR_CHECK(cursor != nullptr && out != nullptr);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t from = *cursor;
  HODOR_CHECK_MSG(from <= head, "ExecRing drain cursor ran ahead of head");
  std::uint64_t dropped = 0;
  // Everything older than one ring's worth below head has been (or is
  // being) overwritten; count it lost and start at the oldest survivor.
  const std::uint64_t cap = mask_ + 1;
  if (head > cap && from < head - cap) {
    dropped += (head - cap) - from;
    from = head - cap;
  }
  out->reserve(out->size() + static_cast<std::size_t>(head - from));
  for (std::uint64_t n = from; n < head; ++n) {
    const Slot& slot = slots_[n & mask_];
    // Per-slot seqlock, reader protocol: the slot must hold exactly event
    // n, before and after the copy, or the writer lapped us mid-read.
    const std::uint64_t expected = 2 * n + 2;
    if (slot.seq.load(std::memory_order_acquire) != expected) {
      ++dropped;
      continue;
    }
    ExecEvent ev;
    ev.start_ns = slot.word[0].load(std::memory_order_relaxed);
    ev.duration_ns = slot.word[1].load(std::memory_order_relaxed);
    ev.epoch = slot.word[2].load(std::memory_order_relaxed);
    Unpack(slot.word[3].load(std::memory_order_relaxed), &ev);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != expected) {
      ++dropped;
      continue;
    }
    out->push_back(ev);
  }
  *cursor = head;
  return dropped;
}

ExecTracer::ExecTracer(std::size_t ring_capacity)
    : base_(std::chrono::steady_clock::now()),
      ring_capacity_(ring_capacity) {}

ExecThreadHandle ExecTracer::RegisterThread(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (threads_.size() >= kMaxThreads) return {};
  ThreadStream stream;
  stream.name = std::move(name);
  stream.ring = std::make_unique<ExecRing>(ring_capacity_);
  threads_.push_back(std::move(stream));
  return {threads_.back().ring.get(),
          static_cast<std::uint16_t>(threads_.size() - 1)};
}

void ExecTracer::Drain(std::vector<ThreadEvents>* out) {
  HODOR_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    ThreadStream& stream = threads_[i];
    ThreadEvents batch;
    batch.tid = static_cast<std::uint16_t>(i);
    batch.name = stream.name;
    dropped_total_ +=
        stream.ring->DrainInto(&stream.drain_cursor, &batch.events);
    if (!batch.events.empty()) out->push_back(std::move(batch));
  }
}

std::uint64_t ExecTracer::dropped_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

std::size_t ExecTracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

std::string ExecTracer::thread_name(std::uint16_t tid) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tid >= threads_.size()) return {};
  return threads_[tid].name;
}

}  // namespace hodor::util
