file(REMOVE_RECURSE
  "CMakeFiles/net_topologies_test.dir/net/topologies_test.cc.o"
  "CMakeFiles/net_topologies_test.dir/net/topologies_test.cc.o.d"
  "net_topologies_test"
  "net_topologies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_topologies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
