// Byte-level plumbing for the flight-recorder codec: a growing
// little-endian ByteWriter, a bounds-checked ByteReader whose every read
// can fail with a structured util::Status (truncated or bit-flipped logs
// must surface as clean errors, never UB), and CRC32C (Castagnoli) for the
// per-record integrity check.
//
// The wire format is declared little-endian regardless of host; on
// little-endian hosts the bulk array paths degenerate to memcpy, which is
// what makes frame decode run at memory speed.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace hodor::replay {

// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected) over `size` bytes.
// Software slicing-by-8; tables are built on first use.
std::uint32_t Crc32c(const void* data, std::size_t size);
inline std::uint32_t Crc32c(std::string_view s) {
  return Crc32c(s.data(), s.size());
}

// Appends little-endian primitives to a caller-owned byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(&out) {}

  std::size_t size() const { return out_->size(); }

  void U8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    char b[4];
    b[0] = static_cast<char>(v);
    b[1] = static_cast<char>(v >> 8);
    b[2] = static_cast<char>(v >> 16);
    b[3] = static_cast<char>(v >> 24);
    out_->append(b, 4);
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(const void* data, std::size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  // Length-prefixed string (u32 length + raw bytes).
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

  // Bulk little-endian arrays: memcpy on little-endian hosts.
  void F64Array(const double* v, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      Bytes(v, n * sizeof(double));
    } else {
      for (std::size_t i = 0; i < n; ++i) F64(v[i]);
    }
  }
  void U64Array(const std::uint64_t* v, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      Bytes(v, n * sizeof(std::uint64_t));
    } else {
      for (std::size_t i = 0; i < n; ++i) U64(v[i]);
    }
  }

 private:
  std::string* out_;
};

// Cursor over an immutable byte span. Every accessor checks bounds and
// returns kOutOfRange when the payload is shorter than the field it
// promises — the decoder's only defense against torn and corrupted logs.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  util::Status U8(std::uint8_t& out) {
    HODOR_RETURN_IF_ERROR(Need(1));
    out = static_cast<std::uint8_t>(data_[pos_++]);
    return util::Status::Ok();
  }
  util::Status U32(std::uint32_t& out) {
    HODOR_RETURN_IF_ERROR(Need(4));
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data_ + pos_);
    out = static_cast<std::uint32_t>(p[0]) |
          (static_cast<std::uint32_t>(p[1]) << 8) |
          (static_cast<std::uint32_t>(p[2]) << 16) |
          (static_cast<std::uint32_t>(p[3]) << 24);
    pos_ += 4;
    return util::Status::Ok();
  }
  util::Status U64(std::uint64_t& out) {
    std::uint32_t lo = 0, hi = 0;
    HODOR_RETURN_IF_ERROR(U32(lo));
    HODOR_RETURN_IF_ERROR(U32(hi));
    out = static_cast<std::uint64_t>(lo) |
          (static_cast<std::uint64_t>(hi) << 32);
    return util::Status::Ok();
  }
  util::Status F64(double& out) {
    std::uint64_t bits = 0;
    HODOR_RETURN_IF_ERROR(U64(bits));
    std::memcpy(&out, &bits, sizeof(out));
    return util::Status::Ok();
  }
  util::Status Bytes(void* out, std::size_t n) {
    HODOR_RETURN_IF_ERROR(Need(n));
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return util::Status::Ok();
  }
  // Length-prefixed string. Fails cleanly when the prefix promises more
  // bytes than the payload holds.
  util::Status Str(std::string& out) {
    std::uint32_t len = 0;
    HODOR_RETURN_IF_ERROR(U32(len));
    HODOR_RETURN_IF_ERROR(Need(len));
    out.assign(data_ + pos_, len);
    pos_ += len;
    return util::Status::Ok();
  }

  util::Status F64Array(double* out, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      return Bytes(out, n * sizeof(double));
    } else {
      for (std::size_t i = 0; i < n; ++i) HODOR_RETURN_IF_ERROR(F64(out[i]));
      return util::Status::Ok();
    }
  }
  util::Status U64Array(std::uint64_t* out, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      return Bytes(out, n * sizeof(std::uint64_t));
    } else {
      for (std::size_t i = 0; i < n; ++i) HODOR_RETURN_IF_ERROR(U64(out[i]));
      return util::Status::Ok();
    }
  }

 private:
  util::Status Need(std::size_t n) const {
    if (remaining() < n) {
      return util::OutOfRangeError(
          "truncated payload: need " + std::to_string(n) + " bytes at offset " +
          std::to_string(pos_) + ", " + std::to_string(remaining()) + " left");
    }
    return util::Status::Ok();
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hodor::replay
