file(REMOVE_RECURSE
  "CMakeFiles/controlplane_trace_test.dir/controlplane/trace_test.cc.o"
  "CMakeFiles/controlplane_trace_test.dir/controlplane/trace_test.cc.o.d"
  "controlplane_trace_test"
  "controlplane_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controlplane_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
