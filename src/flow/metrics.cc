#include "flow/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace hodor::flow {

std::string NetworkMetrics::ToString() const {
  std::ostringstream os;
  os << "max_util=" << util::FormatDouble(max_link_utilization, 3)
     << " mean_util=" << util::FormatDouble(mean_link_utilization, 3)
     << " congested_links=" << congested_link_count
     << " dropped=" << util::FormatDouble(total_dropped_gbps, 2) << "Gbps"
     << " unrouted=" << util::FormatDouble(unrouted_gbps, 2) << "Gbps"
     << " satisfaction=" << util::FormatPercent(demand_satisfaction, 2);
  return os.str();
}

NetworkMetrics ComputeMetrics(const net::Topology& topo,
                              const DemandMatrix& true_demand,
                              const SimulationResult& result) {
  NetworkMetrics m;
  double util_sum = 0.0;
  std::size_t loaded_links = 0;
  for (const net::Link& l : topo.links()) {
    const double cap = l.capacity;
    const double offered = result.arriving[l.id.value()];
    const double carried = result.carried[l.id.value()];
    m.max_link_utilization = std::max(m.max_link_utilization, offered / cap);
    if (carried > 0.0) {
      util_sum += carried / cap;
      ++loaded_links;
    }
    if (offered > cap * (1.0 + 1e-9)) ++m.congested_link_count;
  }
  if (loaded_links > 0) {
    m.mean_link_utilization = util_sum / static_cast<double>(loaded_links);
  }
  m.total_dropped_gbps = result.total_dropped_gbps;
  m.unrouted_gbps = result.unrouted_gbps;
  const double want = true_demand.Total();
  m.demand_satisfaction =
      want <= 0.0 ? 1.0 : result.total_delivered_gbps / want;
  return m;
}

bool IsMajorOutage(const NetworkMetrics& m, double satisfaction_threshold,
                   double overload) {
  return m.demand_satisfaction < satisfaction_threshold ||
         m.max_link_utilization > overload + 1e-9;
}

}  // namespace hodor::flow
