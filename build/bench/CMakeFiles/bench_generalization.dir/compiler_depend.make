# Empty compiler generated dependencies file for bench_generalization.
# This may be replaced when dependencies are built.
