#include "telemetry/self_correction.h"

#include <cmath>
#include <optional>

#include "util/stats.h"

namespace hodor::telemetry {

namespace {

// Relative flow-conservation residual at router v when directed link
// `link` takes `candidate` as its rate; empty when the router is missing
// any other term it needs (silent neighbours, dropped signals).
std::optional<double> LocalResidual(const net::Topology& topo,
                                    const NetworkSnapshot& snap,
                                    net::NodeId v, net::LinkId link,
                                    double candidate) {
  const std::optional<double> dropped = snap.DroppedRate(v);
  if (!snap.Responded(v) || !dropped) return std::nullopt;
  const bool is_external = topo.node(v).has_external_port;
  const std::optional<double> ext_in = snap.ExtInRate(v);
  const std::optional<double> ext_out = snap.ExtOutRate(v);
  if (is_external && (!ext_in || !ext_out)) return std::nullopt;

  double in_sum = is_external ? *ext_in : 0.0;
  for (net::LinkId e : topo.InLinks(v)) {
    if (e == link) {
      in_sum += candidate;
      continue;
    }
    const std::optional<double> rx = snap.RxRate(e);
    if (!rx) return std::nullopt;
    in_sum += *rx;
  }
  double out_sum = *dropped + (is_external ? *ext_out : 0.0);
  for (net::LinkId e : topo.OutLinks(v)) {
    if (e == link) {
      out_sum += candidate;
      continue;
    }
    const std::optional<double> tx = snap.TxRate(e);
    if (!tx) return std::nullopt;
    out_sum += *tx;
  }
  return util::RelativeDifference(in_sum, out_sum);
}

}  // namespace

SelfCorrectionStats SelfCorrectSnapshot(NetworkSnapshot& snapshot,
                                        const SelfCorrectionOptions& opts) {
  const net::Topology& topo = snapshot.topology();
  SelfCorrectionStats stats;

  // Decide all corrections from the pre-exchange values, then apply: each
  // router sees its neighbours' *reported* counters, not their corrected
  // ones (one synchronous exchange round).
  struct Correction {
    net::LinkId link;
    bool fix_tx;  // overwrite the TX side (at src) vs the RX side (at dst)
    double value;
  };
  std::vector<Correction> corrections;

  // First sweep: find every mismatched pair and tally per-router mismatch
  // counts. A router whose software zeroes *all* its counters stays
  // self-consistent (zero in = zero out), so local books alone cannot
  // convict it; being out of step with many neighbours at once can.
  std::vector<net::LinkId> mismatched;
  std::vector<std::size_t> mismatches_of(topo.node_count(), 0);
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId e(i);
    const auto tx = snapshot.TxRate(e);
    const auto rx = snapshot.RxRate(e);
    if (!tx || !rx) continue;  // nothing to exchange
    if (util::WithinRelativeTolerance(*tx, *rx, opts.mismatch_tau)) continue;
    mismatched.push_back(e);
    const net::Link& l = topo.link(e);
    ++mismatches_of[l.src.value()];
    ++mismatches_of[l.dst.value()];
  }
  stats.mismatched_pairs = mismatched.size();

  for (net::LinkId e : mismatched) {
    const auto tx = snapshot.TxRate(e);
    const auto rx = snapshot.RxRate(e);
    const net::Link& l = topo.link(e);
    // Each end tests its own value against its local books.
    const auto tx_resid = LocalResidual(topo, snapshot, l.src, e, *tx);
    const auto rx_resid = LocalResidual(topo, snapshot, l.dst, e, *rx);
    const bool tx_fits = tx_resid && *tx_resid <= opts.conservation_tau;
    const bool rx_fits = rx_resid && *rx_resid <= opts.conservation_tau;

    if (tx_fits && !rx_fits) {
      corrections.push_back(Correction{e, /*fix_tx=*/false, *tx});
    } else if (rx_fits && !tx_fits) {
      corrections.push_back(Correction{e, /*fix_tx=*/true, *rx});
    } else if (tx_fits && rx_fits) {
      // Both self-consistent: quorum tie-break. The router disagreeing
      // with strictly more neighbours is presumed the liar.
      const std::size_t src_m = mismatches_of[l.src.value()];
      const std::size_t dst_m = mismatches_of[l.dst.value()];
      if (src_m >= dst_m + 2) {
        corrections.push_back(Correction{e, /*fix_tx=*/true, *rx});
      } else if (dst_m >= src_m + 2) {
        corrections.push_back(Correction{e, /*fix_tx=*/false, *tx});
      } else {
        ++stats.unresolved;
      }
    } else {
      ++stats.unresolved;
    }
  }

  SignalFrame& frame = snapshot.frame();
  for (const Correction& c : corrections) {
    if (c.fix_tx) {
      if (frame.TxRate(c.link)) frame.SetTxRate(c.link, c.value);
    } else {
      if (frame.RxRate(c.link)) frame.SetRxRate(c.link, c.value);
    }
    ++stats.corrected;
  }
  return stats;
}

SnapshotMutator SelfCorrectionStage(const SelfCorrectionOptions& opts) {
  return [opts](NetworkSnapshot& snapshot) {
    (void)SelfCorrectSnapshot(snapshot, opts);
  };
}

}  // namespace hodor::telemetry
