// Replays every catalog outage scenario (the §2 incident classes) through
// the full pipeline and checks the paper's qualitative claims:
//   - every input-fault scenario is detected (or at least warned about);
//   - control scenarios (healthy, legitimate disaster) are accepted;
//   - for aggregation faults, fallback-to-last-good averts the outage.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "util/logging.h"

namespace hodor::core {
namespace {

struct ScenarioSweep : ::testing::TestWithParam<std::string> {
  static void SetUpTestSuite() {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  }
  static void TearDownTestSuite() {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
  }
};

ScenarioRunResult RunById(const std::string& id) {
  static const net::Topology topo = net::Abilene();
  static const faults::ScenarioCatalog catalog(topo);
  static const flow::DemandMatrix demand = [] {
    util::Rng rng(77);
    flow::DemandMatrix d = flow::GravityDemand(topo, rng);
    // Light load: the disaster control must remain drop-free on the
    // surviving links, or even honest inputs look inconsistent.
    flow::NormalizeToMaxUtilization(topo, 0.35, d);
    return d;
  }();
  const faults::OutageScenario* scenario = catalog.Find(id).value();
  ScenarioRunOptions opts;
  opts.seed = 5;
  // Deterministic probes for reproducible verdicts.
  opts.pipeline.collector.probes.false_loss_rate = 0.0;
  return RunScenario(topo, *scenario, demand, opts);
}

TEST_P(ScenarioSweep, DetectionMatchesExpectation) {
  const std::string id = GetParam();
  const ScenarioRunResult r = RunById(id);

  static const net::Topology topo = net::Abilene();
  static const faults::ScenarioCatalog catalog(topo);
  const faults::OutageScenario* scenario = catalog.Find(id).value();

  if (scenario->input_fault) {
    EXPECT_TRUE(r.detected || r.warned)
        << id << ": " << r.detection_summary;
  } else {
    EXPECT_FALSE(r.detected) << id << ": " << r.detection_summary
                             << " (false positive on correct inputs)";
  }
  if (scenario->expect_hardening_flags) {
    EXPECT_GT(r.flagged_rates, 0u)
        << id << ": hardening should flag the corrupted counters";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSweep,
    ::testing::Values("telemetry-dup-zero", "malformed-telemetry",
                      "delayed-telemetry", "drain-restart-race",
                      "erroneous-auto-drain", "counter-corruption",
                      "partial-topology-stitch", "liveness-misreport",
                      "ignored-drain", "phantom-links", "partial-demand",
                      "throttle-mismatch", "stale-demand-pattern", "healthy",
                      "disaster-legit"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScenarioImpact, AggregationFaultsAvertedByFallback) {
  // For pure aggregation faults the network itself is healthy, so falling
  // back to the last good input fully averts the outage.
  for (const char* id :
       {"partial-topology-stitch", "liveness-misreport", "partial-demand"}) {
    const ScenarioRunResult r = RunById(id);
    EXPECT_TRUE(r.detected) << id;
    EXPECT_TRUE(r.fallback_used) << id;
    EXPECT_GT(r.with_hodor.demand_satisfaction, 0.999) << id;
    EXPECT_LE(r.with_hodor.congested_link_count, 0u) << id;
  }
}

TEST(ScenarioImpact, PartialDemandHurtsWithoutValidation) {
  const ScenarioRunResult r = RunById("partial-demand");
  // The two biggest sources' demand is invisible to the controller: their
  // traffic is unrouted or congests whatever paths exist.
  EXPECT_LT(r.no_validation.demand_satisfaction, 0.95);
  EXPECT_GT(r.with_hodor.demand_satisfaction,
            r.no_validation.demand_satisfaction);
}

TEST(ScenarioImpact, PhantomLinksBlackholeWithoutValidation) {
  const ScenarioRunResult r = RunById("phantom-links");
  EXPECT_LT(r.no_validation.demand_satisfaction, 0.999);
  EXPECT_TRUE(r.detected);
  // Oracle (controller told the truth) routes around the dead links.
  EXPECT_GT(r.oracle.demand_satisfaction, 0.999);
}

TEST(ScenarioImpact, HealthyControlHasNoCost) {
  const ScenarioRunResult r = RunById("healthy");
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.fallback_used);
  EXPECT_GT(r.with_hodor.demand_satisfaction, 0.999);
  EXPECT_NEAR(r.with_hodor.demand_satisfaction,
              r.no_validation.demand_satisfaction, 1e-6);
}

TEST(ScenarioImpact, DisasterControlAcceptedAndCarried) {
  const ScenarioRunResult r = RunById("disaster-legit");
  EXPECT_FALSE(r.detected) << r.detection_summary;
  EXPECT_FALSE(r.fallback_used);
  // Whatever satisfaction the shrunken network physically allows, the
  // validator must not make it worse than the honest-input oracle.
  EXPECT_NEAR(r.with_hodor.demand_satisfaction,
              r.oracle.demand_satisfaction, 1e-6);
}

}  // namespace
}  // namespace hodor::core
