file(REMOVE_RECURSE
  "CMakeFiles/hodor_net.dir/graph_algorithms.cc.o"
  "CMakeFiles/hodor_net.dir/graph_algorithms.cc.o.d"
  "CMakeFiles/hodor_net.dir/serialization.cc.o"
  "CMakeFiles/hodor_net.dir/serialization.cc.o.d"
  "CMakeFiles/hodor_net.dir/state.cc.o"
  "CMakeFiles/hodor_net.dir/state.cc.o.d"
  "CMakeFiles/hodor_net.dir/topologies.cc.o"
  "CMakeFiles/hodor_net.dir/topologies.cc.o.d"
  "CMakeFiles/hodor_net.dir/topology.cc.o"
  "CMakeFiles/hodor_net.dir/topology.cc.o.d"
  "libhodor_net.a"
  "libhodor_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
