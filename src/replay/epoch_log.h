// The flight-recorder container: an append-only binary log of control
// epochs with crash-tolerant framing.
//
// File layout (the header stamps the payload format version; this build
// writes v2 by default and reads [kMinFormatVersion, kFormatVersion]):
//
//   header   : "HODORLOG" (8)  format_version u32  endian_tag u32
//   records  : [payload_len u32][crc32c u32][payload ...]        repeated
//              payload[0] is the record kind; the first record must be the
//              topology prologue (net::WriteTopology text), the rest are
//              epoch records (replay/frame_codec.h), and a clean Close()
//              appends one index record.
//   trailer  : footer_offset u64  "HODORIDX" (8)                 optional
//
// The trailing index maps epoch id -> file offset, giving O(1) Seek after
// a clean shutdown; when the trailer is missing or damaged (crash, torn
// write, truncation) the reader falls back to a full forward scan. A torn
// final record is *reported and skipped* — everything before it stays
// readable — while corruption anywhere else surfaces as a structured
// util::Status from Read(), never UB or an abort.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/topology.h"
#include "replay/frame_codec.h"
#include "util/status.h"

namespace hodor::replay {

// Record kinds (first payload byte).
enum class RecordKind : std::uint8_t {
  kTopology = 1,
  kEpoch = 2,
  kIndex = 3,
};

struct EpochLogWriterOptions {
  // When false, Close() skips the index footer; readers then take the
  // full-scan path (exercised by tests, useful for crash simulations).
  bool write_index = true;
  // Payload format version stamped in the header and used by every
  // Append. Defaults to the current format; set to an older supported
  // version (≥ kMinFormatVersion) to record a genuinely downlevel log —
  // e.g. the backward-compat tests record v1 files with a v2 build. Open
  // rejects versions this build cannot encode.
  std::uint32_t format_version = kFormatVersion;
};

// Appends epoch records to a log file. Not thread-safe; one writer per
// file. Close() (or destruction) finishes the file with the index footer.
class EpochLogWriter {
 public:
  EpochLogWriter() = default;
  ~EpochLogWriter();
  EpochLogWriter(const EpochLogWriter&) = delete;
  EpochLogWriter& operator=(const EpochLogWriter&) = delete;

  // Creates/truncates `path` and writes the header plus the topology
  // prologue. The topology must outlive the writer.
  util::Status Open(const std::string& path, const net::Topology& topo,
                    EpochLogWriterOptions opts = {});

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  std::size_t record_count() const { return index_.size(); }
  std::uint64_t bytes_written() const { return offset_; }

  util::Status Append(std::uint64_t epoch,
                      const telemetry::NetworkSnapshot& snapshot,
                      const controlplane::ControllerInput& input,
                      const EpochVerdict& verdict);

  // Writes the index footer (unless disabled) and closes the file.
  // Idempotent; returns the first error encountered.
  util::Status Close();

 private:
  util::Status WriteRecord(const std::string& payload);

  std::FILE* file_ = nullptr;
  std::string path_;
  EpochLogWriterOptions opts_;
  std::uint64_t offset_ = 0;                               // bytes written
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index_;  // epoch, off
  std::string scratch_;  // payload buffer reused across Append calls
};

// Reads a log back. Open() decodes the header, the topology prologue, and
// the record index (from the footer when present, otherwise by scanning);
// individual epoch records decode lazily via Read()/Seek().
class EpochLogReader {
 public:
  util::Status Open(const std::string& path);

  const net::Topology& topology() const { return *topo_; }
  std::uint32_t format_version() const { return version_; }

  // Epoch records available (excludes a torn final record).
  std::size_t epoch_count() const { return offsets_.size(); }
  // Epoch id of record `i`, in file order.
  std::uint64_t epoch_at(std::size_t i) const { return epochs_[i]; }
  // True when the footer index was present and intact (O(1) Seek, no scan).
  bool had_index() const { return had_index_; }
  // Torn-tail report: true when trailing bytes did not form a complete,
  // CRC-clean record; `tail_message` says what was skipped.
  bool tail_truncated() const { return tail_truncated_; }
  const std::string& tail_message() const { return tail_message_; }

  // Decodes record `i` (0-based file order). The returned record's
  // snapshot points at this reader's topology: it must not outlive the
  // reader. CRC and structural errors come back as Status.
  util::StatusOr<EpochRecord> Read(std::size_t i) const;

  // O(1) lookup by epoch id (hash over the index), then Read.
  util::StatusOr<EpochRecord> Seek(std::uint64_t epoch) const;

 private:
  util::Status IndexFromFooter();
  void IndexByScan(std::size_t first_record_end);

  // Validates framing at `offset` and returns the payload span.
  util::StatusOr<std::string_view> PayloadAt(std::uint64_t offset) const;

  std::string buffer_;  // the whole file
  std::unique_ptr<net::Topology> topo_;
  std::uint32_t version_ = 0;
  bool had_index_ = false;
  bool tail_truncated_ = false;
  std::string tail_message_;
  std::vector<std::uint64_t> offsets_;  // offset of each epoch record
  std::vector<std::uint64_t> epochs_;   // epoch id of each record
  std::unordered_map<std::uint64_t, std::size_t> by_epoch_;
};

}  // namespace hodor::replay
