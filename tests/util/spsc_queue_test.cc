#include "util/spsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace hodor::util {
namespace {

TEST(BoundedSpscQueue, PushPopSingleThread) {
  BoundedSpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.size(), 2u);
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedSpscQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedSpscQueue<int>(0), std::logic_error);
}

TEST(BoundedSpscQueue, PushBlocksWhenFull) {
  BoundedSpscQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(3);  // must block until a slot frees
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());  // still blocked on the full queue
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 3);
}

TEST(BoundedSpscQueue, OrderedDeliveryAcrossThreads) {
  // A small ring forces constant wrap-around and backpressure; every item
  // must still arrive exactly once, in order.
  BoundedSpscQueue<int> q(3);
  constexpr int kItems = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  std::vector<int> got;
  got.reserve(kItems);
  int v = 0;
  while (q.Pop(v)) got.push_back(v);
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

TEST(BoundedSpscQueue, CloseDrainsQueuedItemsThenReportsEmpty) {
  BoundedSpscQueue<int> q(4);
  q.Push(7);
  q.Push(8);
  q.Close();
  EXPECT_TRUE(q.closed());
  int v = 0;
  EXPECT_TRUE(q.Pop(v));  // queued items survive Close
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(v));  // drained + closed → false, no block
}

TEST(BoundedSpscQueue, PopUnblocksOnClose) {
  BoundedSpscQueue<int> q(2);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.Pop(v));  // wakes when the producer closes
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(BoundedSpscQueue, PushOnClosedThrows) {
  BoundedSpscQueue<int> q(2);
  q.Close();
  EXPECT_THROW(q.Push(1), std::logic_error);
}

// Two-thread stress: the TSan configuration of check_build.sh runs this to
// vet the mutex/condvar protocol under contention.
TEST(BoundedSpscQueue, StressPingPong) {
  BoundedSpscQueue<std::uint64_t> q(2);
  constexpr std::uint64_t kItems = 50000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (q.Pop(v)) sum += v;
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) q.Push(i);
  q.Close();
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace hodor::util
