# Empty dependencies file for telemetry_self_correction_test.
# This may be replaced when dependencies are built.
