file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_drain.dir/bench_topology_drain.cc.o"
  "CMakeFiles/bench_topology_drain.dir/bench_topology_drain.cc.o.d"
  "bench_topology_drain"
  "bench_topology_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
