// E4 — hardening efficacy: detection and repair accuracy of the R1+R2
// machinery as corruption spreads (the "open question" of §3 the paper
// says it is actively exploring).
//
// Part A: k corrupted TX counters (random links, random corruption mode) on
//         three topologies; report flag rate, repair rate, and median
//         relative repair error vs ground truth.
// Part B: the rank limit — flow conservation can recover at most |V|-1
//         unknowns (paper §4.1 citing rank(M)); we corrupt entire counter
//         pairs so repairs must come from conservation alone and show
//         recovery degrading as unknowns approach and pass the bound.
// Part C: ablation of the repair stages on the k=4 workload.
#include <iostream>

#include "bench_common.h"
#include "faults/snapshot_faults.h"
#include "util/stats.h"
#include "util/strings.h"

namespace {

using namespace hodor;

struct RepairScore {
  std::size_t corrupted = 0;
  std::size_t flagged = 0;
  std::size_t repaired = 0;   // got a value back (any origin)
  std::size_t accurate = 0;   // value within 5% of ground truth
  std::vector<double> errors;
};

// Corrupts the TX side of `k` distinct traffic-carrying links, hardens, and
// scores the result against the simulation ground truth.
RepairScore RunTrial(const net::Topology& topo_in, std::uint64_t seed,
                     std::size_t k, bool corrupt_both_sides,
                     const core::HardeningOptions& hopts) {
  const auto copts = bench::DefaultCollector();
  bench::Trial t(topo_in, seed, 0.5, copts);
  util::Rng rng(seed ^ 0x5555);

  // Candidate links: those carrying real traffic (corrupting an idle link
  // is invisible and would dilute the score).
  std::vector<net::LinkId> busy;
  for (net::LinkId e : t.topo.LinkIds()) {
    if (t.sim.carried[e.value()] > 1.0) busy.push_back(e);
  }
  if (busy.size() < k) return RepairScore{};
  const auto picks = rng.SampleWithoutReplacement(busy.size(), k);

  std::vector<telemetry::SnapshotMutator> muts;
  std::vector<net::LinkId> victims;
  for (std::size_t idx : picks) {
    const net::LinkId e = busy[idx];
    victims.push_back(e);
    const auto side =
        corrupt_both_sides ? faults::CounterSide::kBoth
                           : faults::CounterSide::kTx;
    const auto mode = corrupt_both_sides
                          ? faults::CounterCorruption::kDrop
                          : (rng.Bernoulli(0.5)
                                 ? faults::CounterCorruption::kZero
                                 : faults::CounterCorruption::kScale);
    muts.push_back(faults::CorruptLinkCounter(e, side, mode, 1.7));
  }
  auto fault = faults::ComposeFaults(std::move(muts));
  telemetry::NetworkSnapshot snap = t.snapshot;
  fault(snap);

  const core::HardenedState hs = core::HardeningEngine(hopts).Harden(snap);
  RepairScore score;
  score.corrupted = k;
  for (net::LinkId e : victims) {
    const core::HardenedRate& r = hs.rates[e.value()];
    if (r.flagged) ++score.flagged;
    if (r.value.has_value()) {
      ++score.repaired;
      const double truth = t.sim.carried[e.value()];
      const double err = util::RelativeDifference(*r.value, truth);
      score.errors.push_back(err);
      if (err <= 0.05) ++score.accurate;
    }
  }
  return score;
}

void RunPart(const std::string& title, const net::Topology& topo,
             const std::vector<std::size_t>& ks, bool both_sides,
             const core::HardeningOptions& hopts, int trials,
             std::uint64_t base_seed) {
  std::cout << "\n--- " << title << " (" << topo.name() << ", |V|-1 = "
            << topo.node_count() - 1 << ") ---\n";
  util::TablePrinter table({"k corrupted", "flag rate", "repair rate",
                            "accurate (<=5% err)", "median err"});
  for (std::size_t k : ks) {
    std::size_t corrupted = 0, flagged = 0, repaired = 0, accurate = 0;
    std::vector<double> errs;
    for (int i = 0; i < trials; ++i) {
      const RepairScore s =
          RunTrial(topo, base_seed + i, k, both_sides, hopts);
      corrupted += s.corrupted;
      flagged += s.flagged;
      repaired += s.repaired;
      accurate += s.accurate;
      errs.insert(errs.end(), s.errors.begin(), s.errors.end());
    }
    table.AddRowValues(
        k, util::FormatPercent(util::SafeRate(flagged, corrupted), 1),
        util::FormatPercent(util::SafeRate(repaired, corrupted), 1),
        util::FormatPercent(util::SafeRate(accurate, corrupted), 1),
        errs.empty() ? std::string("-")
                     : util::FormatPercent(util::Percentile(errs, 50), 2));
  }
  std::cout << table.ToString();
}

}  // namespace

int main() {
  using namespace hodor;
  constexpr int kTrials = 60;
  bench::PrintHeader(
      "E4", "hardening efficacy (detect + repair, §3 open question)",
      "gravity TMs at 0.5 max-util, 60 trials/row, corruption: zero or "
      "1.7x-scale on one side, or dropped pairs for the rank-limit part");

  core::HardeningOptions defaults;

  util::Rng topo_rng(424242);
  const net::Topology waxman = net::Waxman(30, topo_rng);

  RunPart("Part A: single-side corruption, Abilene", net::Abilene(),
          {1, 2, 4, 8, 12, 16}, /*both_sides=*/false, defaults, kTrials,
          11000);
  RunPart("Part A: single-side corruption, GEANT-like", net::GeantLike(),
          {1, 4, 8, 16, 24}, /*both_sides=*/false, defaults, kTrials, 12000);
  RunPart("Part A: single-side corruption, Waxman-30", waxman,
          {1, 4, 8, 16, 24}, /*both_sides=*/false, defaults, kTrials, 13000);

  // Part B: whole pairs dropped -> unknowns that only conservation can
  // recover; the incidence-matrix rank (|V|-1 = 11 for Abilene) caps how
  // many are recoverable in the worst case.
  RunPart("Part B: dropped pairs (rank-limit), Abilene", net::Abilene(),
          {2, 4, 8, 11, 14, 20}, /*both_sides=*/true, defaults, kTrials,
          14000);

  // Part C: ablations at k=4, Abilene.
  std::cout << "\n--- Part C: repair-stage ablations (Abilene, k=4) ---\n";
  util::TablePrinter ab({"configuration", "flag rate", "repair rate",
                         "accurate (<=5% err)"});
  struct Config {
    std::string name;
    core::HardeningOptions opts;
  };
  std::vector<Config> configs;
  configs.push_back({"full (a+b+c+d)", defaults});
  {
    core::HardeningOptions o;
    o.pairwise_disambiguation = false;
    configs.push_back({"no pairwise disambiguation", o});
  }
  {
    core::HardeningOptions o;
    o.propagation_repair = false;
    configs.push_back({"no constraint propagation", o});
  }
  {
    core::HardeningOptions o;
    o.global_least_squares = false;
    configs.push_back({"no global least squares", o});
  }
  {
    core::HardeningOptions o;
    o.average_adjacent_solutions = false;
    configs.push_back({"pick-one solve site (footnote 3)", o});
  }
  {
    core::HardeningOptions o;
    o.pairwise_disambiguation = false;
    o.propagation_repair = false;
    o.global_least_squares = false;
    o.accept_single_witness = false;
    configs.push_back({"detection only (no repair)", o});
  }
  for (const Config& cfg : configs) {
    std::size_t corrupted = 0, flagged = 0, repaired = 0, accurate = 0;
    for (int i = 0; i < kTrials; ++i) {
      const RepairScore s =
          RunTrial(net::Abilene(), 15000 + i, 4, false, cfg.opts);
      corrupted += s.corrupted;
      flagged += s.flagged;
      repaired += s.repaired;
      accurate += s.accurate;
    }
    ab.AddRowValues(cfg.name,
                    util::FormatPercent(util::SafeRate(flagged, corrupted), 1),
                    util::FormatPercent(util::SafeRate(repaired, corrupted), 1),
                    util::FormatPercent(util::SafeRate(accurate, corrupted), 1));
  }
  std::cout << ab.ToString();
  return 0;
}
