// Quickstart: the whole public API in ~60 lines.
//
// Build a WAN, generate traffic, collect router telemetry, aggregate the
// controller's inputs, corrupt the demand input the way §2.2's partial-
// aggregation outage did, and watch Hodor reject it.
//
//   ./build/examples/quickstart
#include <iostream>

#include "controlplane/services.h"
#include "core/validator.h"
#include "faults/aggregation_faults.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "telemetry/collector.h"

int main() {
  using namespace hodor;

  // 1. A network: the Abilene backbone (12 PoPs, 15 links), all healthy.
  const net::Topology topo = net::Abilene();
  const net::GroundTruthState state(topo);

  // 2. Traffic: a gravity-model demand matrix, scaled so shortest-path
  //    routing peaks at 50% link utilisation.
  util::Rng rng(2024);
  flow::DemandMatrix demand = flow::GravityDemand(topo, rng);
  flow::NormalizeToMaxUtilization(topo, 0.5, demand);

  // 3. The dataplane: route it and compute true per-link rates.
  const flow::RoutingPlan plan =
      flow::ShortestPathRouting(topo, demand, net::AllLinks());
  const flow::SimulationResult sim =
      flow::SimulateFlow(topo, state, demand, plan);

  // 4. Telemetry: every router reports counters, statuses, drains; active
  //    probes are attached (Hodor's manufactured signals).
  telemetry::Collector collector(topo, telemetry::CollectorOptions{});
  telemetry::NetworkSnapshot snapshot =
      collector.Collect(state, sim, /*epoch=*/0, rng);
  std::cout << "collected " << snapshot.PresentSignalCount()
            << " router signals\n";

  // 5. The control infrastructure aggregates the SDN controller's inputs —
  //    with a §2.2 bug: all demand from the two busiest sources is lost.
  controlplane::AggregationFaultHooks bug;
  bug.demand = faults::DemandRowsDropped(
      topo, {topo.FindNode("IPLSng").value(),
             topo.FindNode("ATLAng").value()});
  const controlplane::ControllerInput input = controlplane::AggregateInputs(
      topo, snapshot, demand, /*epoch=*/0, rng, {}, bug);

  // 6. Hodor: harden the router signals, then check the inputs against
  //    the hardened state.
  const core::Validator validator(topo);
  const core::ValidationReport report = validator.Validate(input, snapshot);

  std::cout << "verdict: " << report.Summary() << "\n"
            << report.Describe(topo);
  return report.ok() ? 1 : 0;  // we expect a rejection here
}
