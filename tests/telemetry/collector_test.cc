#include "telemetry/collector.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace hodor::telemetry {
namespace {

using net::LinkId;
using net::NodeId;

TEST(Collector, HonestSnapshotMatchesSimulationWithinJitter)
{
  testing::HealthyNetwork net = testing::MakeAbilene();
  const NetworkSnapshot snap = net.Snapshot();

  for (LinkId e : net.topo.LinkIds()) {
    const double truth = net.sim.carried[e.value()];
    ASSERT_TRUE(snap.TxRate(e).has_value());
    ASSERT_TRUE(snap.RxRate(e).has_value());
    if (truth > 1e-9) {
      EXPECT_TRUE(util::WithinRelativeTolerance(*snap.TxRate(e), truth, 0.006));
      EXPECT_TRUE(util::WithinRelativeTolerance(*snap.RxRate(e), truth, 0.006));
    } else {
      EXPECT_DOUBLE_EQ(*snap.TxRate(e), 0.0);
    }
    EXPECT_EQ(snap.StatusAtSrc(e).value(), LinkStatus::kUp);
  }
  for (NodeId v : net.topo.NodeIds()) {
    EXPECT_FALSE(snap.NodeDrained(v).value());
    ASSERT_TRUE(snap.ExtInRate(v).has_value());
    EXPECT_TRUE(util::WithinRelativeTolerance(
        *snap.ExtInRate(v), net.sim.ext_in[v.value()], 0.006));
  }
}

TEST(Collector, DownLinkReportedDownAtBothEnds) {
  net::Topology topo = net::Figure3Triangle();
  net::GroundTruthState state(topo);
  const LinkId e = topo.LinkIds()[0];
  state.SetLinkUp(e, false);
  flow::DemandMatrix d(topo.node_count());
  flow::SimulationResult sim =
      flow::SimulateFlow(topo, state, d, flow::RoutingPlan{});
  util::Rng rng(1);
  Collector collector(topo, {});
  const NetworkSnapshot snap = collector.Collect(state, sim, 0, rng);
  EXPECT_EQ(snap.StatusAtSrc(e).value(), LinkStatus::kDown);
  EXPECT_EQ(snap.StatusAtDst(e).value(), LinkStatus::kDown);
}

TEST(Collector, BrokenDataplaneStillReportsUp) {
  // The §4.2 semantic gap: light on, dataplane dead.
  net::Topology topo = net::Figure3Triangle();
  net::GroundTruthState state(topo);
  const LinkId e = topo.LinkIds()[0];
  state.SetLinkDataplaneOk(e, false);
  flow::DemandMatrix d(topo.node_count());
  flow::SimulationResult sim =
      flow::SimulateFlow(topo, state, d, flow::RoutingPlan{});
  util::Rng rng(1);
  CollectorOptions opts;
  opts.probes.false_loss_rate = 0.0;
  Collector collector(topo, opts);
  const NetworkSnapshot snap = collector.Collect(state, sim, 0, rng);
  EXPECT_EQ(snap.StatusAtSrc(e).value(), LinkStatus::kUp);
  // ...but the probe, which exercises the dataplane, fails.
  EXPECT_FALSE(snap.ProbeSucceeded(e).value());
}

TEST(Collector, MutatorRunsBeforeProbesAttached) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  bool saw_probes = true;
  const auto snap = net.Snapshot(1, [&](NetworkSnapshot& s) {
    saw_probes = !s.probe_results().empty();
  });
  EXPECT_FALSE(saw_probes);          // mutator ran pre-probe
  EXPECT_FALSE(snap.probe_results().empty());  // probes attached after
}

TEST(Collector, ProbesCanBeDisabled) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  CollectorOptions opts;
  opts.run_probes = false;
  const auto snap = net.Snapshot(1, nullptr, opts);
  EXPECT_TRUE(snap.probe_results().empty());
}

TEST(Collector, DrainSignalsReflectIntent) {
  net::Topology topo = net::Figure3Triangle();
  net::GroundTruthState state(topo);
  const NodeId a = topo.FindNode("A").value();
  state.SetNodeDrained(a, true);
  const LinkId e = topo.LinkIds()[2];
  state.SetLinkDrained(e, true);
  flow::DemandMatrix d(topo.node_count());
  flow::SimulationResult sim =
      flow::SimulateFlow(topo, state, d, flow::RoutingPlan{});
  util::Rng rng(1);
  Collector collector(topo, {});
  const NetworkSnapshot snap = collector.Collect(state, sim, 0, rng);
  EXPECT_TRUE(snap.NodeDrained(a).value());
  EXPECT_TRUE(snap.LinkDrainAtSrc(e).value());
  EXPECT_TRUE(snap.LinkDrainAtDst(e).value());
}

TEST(Probes, HealthyLinksSucceedDeadLinksFail) {
  net::Topology topo = net::Figure3Triangle();
  net::GroundTruthState state(topo);
  const LinkId dead = topo.LinkIds()[0];
  state.SetLinkUp(dead, false);
  util::Rng rng(5);
  ProbeOptions opts;
  opts.false_loss_rate = 0.0;
  const auto probes = ProbeAllLinks(topo, state, opts, rng);
  ASSERT_EQ(probes.size(), topo.link_count());
  for (const ProbeResult& p : probes) {
    const bool should_succeed =
        p.link != dead && p.link != topo.link(dead).reverse;
    EXPECT_EQ(p.success, should_succeed) << topo.LinkName(p.link);
  }
}

TEST(Probes, RetriesSuppressFalseLoss) {
  net::Topology topo = net::Figure3Triangle();
  net::GroundTruthState state(topo);
  util::Rng rng(7);
  ProbeOptions opts;
  opts.false_loss_rate = 0.3;  // very lossy
  opts.attempts = 8;           // but many retries
  int false_negatives = 0;
  for (int trial = 0; trial < 200; ++trial) {
    for (const ProbeResult& p : ProbeAllLinks(topo, state, opts, rng)) {
      if (!p.success) ++false_negatives;
    }
  }
  // P(all 8 attempts lost) = 0.3^8 ~ 6.6e-5; expect ~0 over 1200 probes.
  EXPECT_LE(false_negatives, 2);
}

TEST(Collector, ParallelCollectionBitIdenticalToSerial) {
  // The staged-epoch contract: sharding honest collection over a pool must
  // reproduce the serial snapshot bit for bit AND leave the master Rng in
  // the same state (jitter is pre-drawn in serial order).
  testing::HealthyNetwork net = testing::MakeAbilene();
  Collector collector(net.topo, {});

  util::Rng serial_rng(42);
  NetworkSnapshot serial(net.topo, 0);
  collector.CollectInto(net.state, net.sim, 3, serial_rng, serial);

  for (std::size_t threads : {2u, 4u, 7u}) {
    util::ThreadPool pool(threads);
    util::Rng par_rng(42);
    NetworkSnapshot parallel(net.topo, 0);
    collector.CollectInto(net.state, net.sim, 3, par_rng, parallel, nullptr,
                          &pool);
    for (LinkId e : net.topo.LinkIds()) {
      EXPECT_EQ(serial.TxRate(e), parallel.TxRate(e)) << threads;
      EXPECT_EQ(serial.RxRate(e), parallel.RxRate(e));
      EXPECT_EQ(serial.StatusAtSrc(e), parallel.StatusAtSrc(e));
      EXPECT_EQ(serial.LinkDrainAtSrc(e), parallel.LinkDrainAtSrc(e));
      EXPECT_EQ(serial.ProbeSucceeded(e), parallel.ProbeSucceeded(e));
    }
    for (NodeId v : net.topo.NodeIds()) {
      EXPECT_EQ(serial.NodeDrained(v), parallel.NodeDrained(v));
      EXPECT_EQ(serial.DroppedRate(v), parallel.DroppedRate(v));
      EXPECT_EQ(serial.ExtInRate(v), parallel.ExtInRate(v));
      EXPECT_EQ(serial.ExtOutRate(v), parallel.ExtOutRate(v));
    }
    // Identical Rng consumption: the next draw must agree exactly.
    util::Rng serial_probe = serial_rng;  // keep serial_rng untouched
    EXPECT_DOUBLE_EQ(serial_probe.Uniform(0.0, 1.0),
                     par_rng.Uniform(0.0, 1.0));
  }
}

TEST(Collector, ParallelCollectionAppliesMutator) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  Collector collector(net.topo, {});
  util::ThreadPool pool(4);
  util::Rng rng(5);
  NetworkSnapshot snap(net.topo, 0);
  const LinkId e = net.topo.LinkIds()[0];
  collector.CollectInto(
      net.state, net.sim, 0, rng, snap,
      [&](NetworkSnapshot& s) { s.frame().SetTxRate(e, 1e9); }, &pool);
  EXPECT_DOUBLE_EQ(snap.TxRate(e).value(), 1e9);
}

TEST(Probes, NonForwardingRouterFailsItsLinks) {
  net::Topology topo = net::Figure3Triangle();
  net::GroundTruthState state(topo);
  const NodeId a = topo.FindNode("A").value();
  state.SetNodeForwarding(a, false);
  util::Rng rng(9);
  ProbeOptions opts;
  opts.false_loss_rate = 0.0;
  for (const ProbeResult& p : ProbeAllLinks(topo, state, opts, rng)) {
    const net::Link& l = topo.link(p.link);
    const bool touches_a = l.src == a || l.dst == a;
    EXPECT_EQ(p.success, !touches_a);
  }
}

}  // namespace
}  // namespace hodor::telemetry
