file(REMOVE_RECURSE
  "CMakeFiles/hodor_telemetry.dir/collector.cc.o"
  "CMakeFiles/hodor_telemetry.dir/collector.cc.o.d"
  "CMakeFiles/hodor_telemetry.dir/probes.cc.o"
  "CMakeFiles/hodor_telemetry.dir/probes.cc.o.d"
  "CMakeFiles/hodor_telemetry.dir/router_agent.cc.o"
  "CMakeFiles/hodor_telemetry.dir/router_agent.cc.o.d"
  "CMakeFiles/hodor_telemetry.dir/self_correction.cc.o"
  "CMakeFiles/hodor_telemetry.dir/self_correction.cc.o.d"
  "CMakeFiles/hodor_telemetry.dir/signal_catalog.cc.o"
  "CMakeFiles/hodor_telemetry.dir/signal_catalog.cc.o.d"
  "CMakeFiles/hodor_telemetry.dir/snapshot.cc.o"
  "CMakeFiles/hodor_telemetry.dir/snapshot.cc.o.d"
  "libhodor_telemetry.a"
  "libhodor_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
