# Empty compiler generated dependencies file for core_validator_test.
# This may be replaced when dependencies are built.
