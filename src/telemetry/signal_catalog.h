// The signal catalog — Hodor step 1's design-time artifact (paper §3.2):
//
//   "The key challenge here is to identify what signals are available, and
//    whether they are relevant ... Hodor leverages the fact that network
//    operators today maintain detailed network models, and use
//    vendor-agnostic APIs [gNMI/OpenConfig] which provide detailed
//    documentation about each available router signal. The relevant
//    signals are chosen once at system design time."
//
// SignalCatalog enumerates, for a topology, every signal the routers can
// export, each with an OpenConfig-flavoured path (the form operators would
// subscribe to over gNMI), the redundancy sources that can corroborate it,
// and an accessor that resolves it against a NetworkSnapshot. Reports and
// alerts reference signals by these paths.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "telemetry/snapshot.h"
#include "util/status.h"

namespace hodor::telemetry {

enum class SignalKind {
  kTxRate,       // /interfaces/interface[...]/state/counters/out-octets
  kRxRate,       // /interfaces/interface[...]/state/counters/in-octets
  kLinkStatus,   // /interfaces/interface[...]/state/oper-status
  kLinkDrain,    // /interfaces/interface[...]/state/drained (intent)
  kNodeDrain,    // /system/state/drained (intent)
  kDroppedRate,  // /qos/interfaces/.../dropped-octets (router aggregate)
  kExtInRate,    // external port in-octets
  kExtOutRate,   // external port out-octets
};

constexpr const char* SignalKindName(SignalKind k) {
  switch (k) {
    case SignalKind::kTxRate: return "tx-rate";
    case SignalKind::kRxRate: return "rx-rate";
    case SignalKind::kLinkStatus: return "link-status";
    case SignalKind::kLinkDrain: return "link-drain";
    case SignalKind::kNodeDrain: return "node-drain";
    case SignalKind::kDroppedRate: return "dropped-rate";
    case SignalKind::kExtInRate: return "ext-in-rate";
    case SignalKind::kExtOutRate: return "ext-out-rate";
  }
  return "?";
}

// Which of the paper's redundancy sources can corroborate a signal kind.
struct RedundancySources {
  bool link_symmetry = false;      // R1
  bool flow_conservation = false;  // R2
  bool alternative_signals = false;  // R3
  bool manufactured_signals = false; // R4 (probes)
};

struct SignalDescriptor {
  SignalKind kind;
  // Reporting router.
  net::NodeId reporter;
  // The directed link the signal describes (invalid for node-level kinds).
  net::LinkId link;
  // OpenConfig-flavoured path, e.g.
  // "/devices/device[name=NYCMng]/interfaces/interface[name=NYCMng->WASHng]
  //  /state/counters/out-octets".
  std::string path;
  RedundancySources redundancy;
};

class SignalCatalog {
 public:
  // Enumerates every signal the topology's routers can export.
  explicit SignalCatalog(const net::Topology& topo);

  const std::vector<SignalDescriptor>& signals() const { return signals_; }
  std::size_t size() const { return signals_.size(); }

  // Count of signals that at least one redundancy source can corroborate
  // (the design-time coverage number an operator would review).
  std::size_t CorroboratedCount() const;

  // Finds a descriptor by its path.
  util::StatusOr<const SignalDescriptor*> FindByPath(
      const std::string& path) const;

  // Resolves a signal's current value (as a double; statuses/drains as
  // 0/1) from a snapshot; empty when not reported.
  std::optional<double> Resolve(const SignalDescriptor& d,
                                const NetworkSnapshot& snapshot) const;

  // How many catalog signals are present in the snapshot.
  std::size_t PresentCount(const NetworkSnapshot& snapshot) const;

 private:
  const net::Topology* topo_;
  std::vector<SignalDescriptor> signals_;
};

}  // namespace hodor::telemetry
