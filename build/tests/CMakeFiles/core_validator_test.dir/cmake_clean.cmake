file(REMOVE_RECURSE
  "CMakeFiles/core_validator_test.dir/core/validator_test.cc.o"
  "CMakeFiles/core_validator_test.dir/core/validator_test.cc.o.d"
  "core_validator_test"
  "core_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
