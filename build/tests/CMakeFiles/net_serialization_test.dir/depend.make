# Empty dependencies file for net_serialization_test.
# This may be replaced when dependencies are built.
