#include "core/demand_check.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/provenance.h"
#include "util/stats.h"
#include "util/strings.h"

namespace hodor::core {

std::string DemandViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  os << (kind == DemandInvariantKind::kIngress ? "ingress" : "egress")
     << " invariant at " << topo.node(node).name << ": counter="
     << util::FormatDouble(counter_value, 3)
     << " demand_sum=" << util::FormatDouble(demand_sum, 3)
     << " rel_diff=" << util::FormatPercent(relative_diff, 2)
     << " tau_eff=" << util::FormatPercent(tau_eff, 2)
     << " confidence=" << util::FormatDouble(confidence, 2);
  return os.str();
}

DemandCheckResult CheckDemand(const net::Topology& topo,
                              const HardenedState& hardened,
                              const flow::DemandMatrix& demand_input,
                              const DemandCheckOptions& opts,
                              obs::DecisionRecord* provenance) {
  HODOR_CHECK(demand_input.node_count() == topo.node_count());
  DemandCheckResult result;

  auto invariant_name = [&](net::NodeId v, DemandInvariantKind kind) {
    return std::string(kind == DemandInvariantKind::kIngress ? "ingress("
                                                             : "egress(") +
           topo.node(v).name + ")";
  };
  // CrossCheck-style confidence scaling: the tolerance each node is judged
  // against widens with how little the hardening layer could corroborate
  // its external counters (see DemandCheckOptions::confidence_scaling).
  auto tau_eff_at = [&](net::NodeId v) {
    const double c = hardened.scalar_confidence[v.value()];
    return opts.tau_e * (1.0 + opts.confidence_scaling * (1.0 - c));
  };
  auto record = [&](net::NodeId v, DemandInvariantKind kind, double residual,
                    double threshold, obs::InvariantVerdict verdict,
                    std::string detail) {
    if (!provenance) return;
    obs::InvariantRecord rec{"demand", invariant_name(v, kind), residual,
                             threshold, verdict, std::move(detail)};
    rec.confidence = hardened.scalar_confidence[v.value()];
    provenance->Add(std::move(rec));
  };

  auto evaluate = [&](net::NodeId v, DemandInvariantKind kind,
                      const std::optional<double>& counter, double sum) {
    const double tau_eff = tau_eff_at(v);
    if (!counter.has_value()) {
      ++result.skipped_invariants;
      record(v, kind, 0.0, tau_eff, obs::InvariantVerdict::kSkipped,
             "hardened external counter unknown");
      return;
    }
    ++result.checked_invariants;
    if (*counter < opts.idle_floor && sum < opts.idle_floor) {
      record(v, kind, 0.0, tau_eff, obs::InvariantVerdict::kPass, "both idle");
      return;
    }
    const double diff = util::RelativeDifference(*counter, sum);
    if (diff > tau_eff) {
      DemandViolation violation{v,    kind,    *counter,
                                sum,  diff,    tau_eff,
                                hardened.scalar_confidence[v.value()]};
      record(v, kind, diff, tau_eff, obs::InvariantVerdict::kFail,
             violation.ToString(topo));
      result.violations.push_back(std::move(violation));
    } else {
      record(v, kind, diff, tau_eff, obs::InvariantVerdict::kPass, "");
    }
  };

  // Gauge in-network loss from the hardened drop counters: egress
  // invariants are only meaningful when the network is not eating traffic.
  double total_dropped = 0.0;
  double total_ext_in = 0.0;
  for (const net::Node& n : topo.nodes()) {
    if (hardened.dropped[n.id.value()]) {
      total_dropped += *hardened.dropped[n.id.value()];
    }
    if (hardened.ext_in[n.id.value()]) {
      total_ext_in += *hardened.ext_in[n.id.value()];
    }
  }
  if (total_ext_in > opts.idle_floor) {
    result.network_loss_fraction = total_dropped / total_ext_in;
  }
  const bool check_egress =
      result.network_loss_fraction <= opts.max_network_loss_fraction;
  result.egress_skipped_due_to_loss = !check_egress;

  std::vector<double> row_sums;
  std::vector<double> col_sums;
  demand_input.Marginals(row_sums, col_sums);
  for (net::NodeId v : topo.ExternalNodes()) {
    evaluate(v, DemandInvariantKind::kIngress, hardened.ext_in[v.value()],
             row_sums[v.value()]);
    if (check_egress) {
      evaluate(v, DemandInvariantKind::kEgress, hardened.ext_out[v.value()],
               col_sums[v.value()]);
    } else {
      ++result.skipped_invariants;
      record(v, DemandInvariantKind::kEgress, 0.0, tau_eff_at(v),
             obs::InvariantVerdict::kSkipped,
             "egress suppressed: network loss fraction " +
                 util::FormatPercent(result.network_loss_fraction, 2));
    }
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts.metrics);
  const obs::Labels labels = {{"check", "demand"}};
  reg.GetCounter("hodor_check_runs_total", labels, "Check invocations")
      .Increment();
  reg.GetCounter("hodor_check_invariants_total", labels,
                 "Invariants evaluated")
      .Increment(static_cast<double>(result.checked_invariants));
  reg.GetCounter("hodor_check_violations_total", labels, "Invariants fired")
      .Increment(static_cast<double>(result.violations.size()));
  reg.GetCounter("hodor_check_skipped_total", labels,
                 "Invariants skipped (signal unknown or suppressed)")
      .Increment(static_cast<double>(result.skipped_invariants));
  return result;
}

}  // namespace hodor::core
