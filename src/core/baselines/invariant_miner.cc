#include "core/baselines/invariant_miner.h"

#include <cmath>
#include <limits>

#include "util/stats.h"
#include "util/strings.h"

namespace hodor::core::baselines {

namespace {
constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();
}

InvariantMiner::InvariantMiner(const net::Topology& topo,
                               InvariantMinerOptions opts)
    : topo_(&topo), opts_(opts) {}

std::vector<double> InvariantMiner::Flatten(
    const telemetry::NetworkSnapshot& snapshot) const {
  std::vector<double> v;
  v.reserve(2 * topo_->link_count() + 3 * topo_->node_count());
  for (net::LinkId e : topo_->LinkIds()) {
    const auto tx = snapshot.TxRate(e);
    const auto rx = snapshot.RxRate(e);
    v.push_back(tx ? *tx : kMissing);
    v.push_back(rx ? *rx : kMissing);
  }
  for (net::NodeId n : topo_->NodeIds()) {
    const auto ei = snapshot.ExtInRate(n);
    const auto eo = snapshot.ExtOutRate(n);
    const auto dr = snapshot.DroppedRate(n);
    v.push_back(ei ? *ei : kMissing);
    v.push_back(eo ? *eo : kMissing);
    v.push_back(dr ? *dr : kMissing);
  }
  return v;
}

std::string InvariantMiner::SignalName(std::size_t index) const {
  const std::size_t link_signals = 2 * topo_->link_count();
  if (index < link_signals) {
    const net::LinkId e(static_cast<std::uint32_t>(index / 2));
    return (index % 2 == 0 ? "tx(" : "rx(") + topo_->LinkName(e) + ")";
  }
  const std::size_t node_index = (index - link_signals) / 3;
  const std::size_t kind = (index - link_signals) % 3;
  const std::string& name =
      topo_->node(net::NodeId(static_cast<std::uint32_t>(node_index))).name;
  switch (kind) {
    case 0: return "ext_in(" + name + ")";
    case 1: return "ext_out(" + name + ")";
    default: return "dropped(" + name + ")";
  }
}

bool InvariantMiner::Equalish(double a, double b, double tau) const {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (std::fabs(a) < opts_.zero_floor && std::fabs(b) < opts_.zero_floor) {
    return true;
  }
  return util::WithinRelativeTolerance(a, b, tau);
}

void InvariantMiner::Observe(const telemetry::NetworkSnapshot& snapshot) {
  history_.push_back(Flatten(snapshot));
}

std::pair<double, double> InvariantMiner::NodeBalance(
    const std::vector<double>& row, net::NodeId v) const {
  const auto nan = std::make_pair(kMissing, kMissing);
  double in_sum = 0.0;
  double out_sum = 0.0;
  for (net::LinkId e : topo_->InLinks(v)) {
    const double rx = row[2 * e.value() + 1];
    if (std::isnan(rx)) return nan;
    in_sum += rx;
  }
  for (net::LinkId e : topo_->OutLinks(v)) {
    const double tx = row[2 * e.value()];
    if (std::isnan(tx)) return nan;
    out_sum += tx;
  }
  const std::size_t base = 2 * topo_->link_count() + 3 * v.value();
  const double ext_in = row[base];
  const double ext_out = row[base + 1];
  const double dropped = row[base + 2];
  if (std::isnan(dropped)) return nan;
  out_sum += dropped;
  if (topo_->node(v).has_external_port) {
    if (std::isnan(ext_in) || std::isnan(ext_out)) return nan;
    in_sum += ext_in;
    out_sum += ext_out;
  }
  return {in_sum, out_sum};
}

void InvariantMiner::Mine() {
  HODOR_CHECK_MSG(history_.size() >= opts_.min_history,
                  "not enough history to mine invariants");
  mined_.clear();
  const std::size_t n = history_.front().size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      bool persists = true;
      for (const auto& row : history_) {
        if (!Equalish(row[a], row[b], opts_.mine_tau)) {
          persists = false;
          break;
        }
      }
      if (persists) {
        mined_.push_back(
            MinedInvariant{a, b, SignalName(a) + " ~= " + SignalName(b)});
      }
    }
  }

  mined_conservation_.clear();
  if (opts_.mine_conservation) {
    for (const net::Node& node : topo_->nodes()) {
      bool persists = true;
      for (const auto& row : history_) {
        const auto [in_sum, out_sum] = NodeBalance(row, node.id);
        if (std::isnan(in_sum) ||
            !Equalish(in_sum, out_sum, opts_.mine_tau)) {
          persists = false;
          break;
        }
      }
      if (persists) {
        mined_conservation_.push_back(
            MinedConservation{node.id, "conservation(" + node.name + ")"});
      }
    }
  }
}

MinerCheckResult InvariantMiner::Check(
    const telemetry::NetworkSnapshot& snapshot) const {
  MinerCheckResult result;
  const std::vector<double> v = Flatten(snapshot);
  for (const MinedInvariant& inv : mined_) {
    const double a = v[inv.signal_a];
    const double b = v[inv.signal_b];
    if (std::isnan(a) || std::isnan(b)) continue;  // can't evaluate
    ++result.checked;
    if (!Equalish(a, b, opts_.check_tau)) {
      result.violations.push_back(
          inv.name + " broken: " + util::FormatDouble(a, 3) + " vs " +
          util::FormatDouble(b, 3));
    }
  }
  for (const MinedConservation& inv : mined_conservation_) {
    const auto [in_sum, out_sum] = NodeBalance(v, inv.node);
    if (std::isnan(in_sum)) continue;
    ++result.checked;
    if (!Equalish(in_sum, out_sum, opts_.check_tau)) {
      result.violations.push_back(
          inv.name + " broken: in=" + util::FormatDouble(in_sum, 3) +
          " out=" + util::FormatDouble(out_sum, 3));
    }
  }
  return result;
}

}  // namespace hodor::core::baselines
