#include "telemetry/self_correction.h"

#include <gtest/gtest.h>

#include "core/figure3_example.h"
#include "faults/snapshot_faults.h"
#include "test_util.h"
#include "util/stats.h"

namespace hodor::telemetry {
namespace {

using net::LinkId;
using net::NodeId;

TEST(SelfCorrection, CleanSnapshotUntouched) {
  const core::Figure3Example fig;
  NetworkSnapshot snap = fig.HonestSnapshot();
  const SelfCorrectionStats stats = SelfCorrectSnapshot(snap);
  EXPECT_EQ(stats.mismatched_pairs, 0u);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.unresolved, 0u);
  EXPECT_DOUBLE_EQ(snap.TxRate(fig.ab()).value(),
                   core::Figure3Example::kTrueRateAB);
}

TEST(SelfCorrection, FixesTheFigure3CounterAtSource) {
  // The faulty router A hears 76 from B, sees its own 98 breaks its local
  // books, and overwrites its TX counter before export.
  const core::Figure3Example fig;
  NetworkSnapshot snap = fig.FaultySnapshot();
  const SelfCorrectionStats stats = SelfCorrectSnapshot(snap);
  EXPECT_EQ(stats.mismatched_pairs, 1u);
  EXPECT_EQ(stats.corrected, 1u);
  EXPECT_EQ(stats.unresolved, 0u);
  EXPECT_NEAR(snap.TxRate(fig.ab()).value(), 76.0, 1e-9);
  EXPECT_NEAR(snap.RxRate(fig.ab()).value(), 76.0, 1e-9);
}

TEST(SelfCorrection, FixesRxSideToo) {
  const core::Figure3Example fig;
  NetworkSnapshot snap = fig.HonestSnapshot();
  snap.frame().SetRxRate(fig.ab(), 150.0);
  const SelfCorrectionStats stats = SelfCorrectSnapshot(snap);
  EXPECT_EQ(stats.corrected, 1u);
  EXPECT_NEAR(snap.RxRate(fig.ab()).value(), 76.0, 1e-9);
}

TEST(SelfCorrection, UnresolvableMismatchLeftForHardening) {
  // Both ends lie consistently with their own books being broken: neither
  // candidate fits, so the router must not guess.
  const core::Figure3Example fig;
  NetworkSnapshot snap = fig.HonestSnapshot();
  snap.frame().SetTxRate(fig.ab(), 200.0);
  snap.frame().SetRxRate(fig.ab(), 150.0);
  const SelfCorrectionStats stats = SelfCorrectSnapshot(snap);
  EXPECT_EQ(stats.mismatched_pairs, 1u);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.unresolved, 1u);
  EXPECT_DOUBLE_EQ(snap.TxRate(fig.ab()).value(), 200.0);  // untouched
}

TEST(SelfCorrection, MissingSideIsNotExchanged) {
  const core::Figure3Example fig;
  NetworkSnapshot snap = fig.HonestSnapshot();
  snap.frame().ClearTxRate(fig.ab());
  const SelfCorrectionStats stats = SelfCorrectSnapshot(snap);
  EXPECT_EQ(stats.mismatched_pairs, 0u);
  EXPECT_FALSE(snap.TxRate(fig.ab()).has_value());
}

TEST(SelfCorrection, CleansWholeRouterZeroBug) {
  // The §2.1 duplication bug zeroes a router's counters; self-correction
  // restores every value that local conservation can arbitrate.
  testing::HealthyNetwork net = testing::MakeAbilene();
  const NodeId victim = net.topo.FindNode("IPLSng").value();
  auto fault = faults::ComposeFaults(
      {faults::ZeroedCountersFault(victim, 1.0, 3),
       SelfCorrectionStage()});
  const auto snap = net.Snapshot(1, fault);

  // Link counters at the victim are restored from the neighbours...
  std::size_t restored = 0;
  for (LinkId e : net.topo.OutLinks(victim)) {
    const double truth = net.sim.carried[e.value()];
    if (truth < 1.0) continue;
    if (snap.TxRate(e) &&
        util::WithinRelativeTolerance(*snap.TxRate(e), truth, 0.05)) {
      ++restored;
    }
  }
  EXPECT_GT(restored, 0u);
  // ...but the single-sourced external counters cannot be (no neighbour
  // measures them); they stay zero and remain Hodor's job downstream.
  EXPECT_DOUBLE_EQ(snap.ExtInRate(victim).value(), 0.0);
}

TEST(SelfCorrection, StageComposesAsMutator) {
  const core::Figure3Example fig;
  testing::HealthyNetwork net(net::Figure3Triangle(), 3);
  const LinkId ab = net.topo.LinkIds()[0];
  auto fault = faults::ComposeFaults(
      {faults::CorruptLinkCounter(ab, faults::CounterSide::kTx,
                                  faults::CounterCorruption::kScale, 1.5),
       SelfCorrectionStage()});
  const auto snap = net.Snapshot(1, fault);
  // After self-correction the exported pair agrees again.
  ASSERT_TRUE(snap.TxRate(ab).has_value());
  ASSERT_TRUE(snap.RxRate(ab).has_value());
  if (net.sim.carried[ab.value()] > 1.0) {
    EXPECT_TRUE(util::WithinRelativeTolerance(*snap.TxRate(ab),
                                              *snap.RxRate(ab), 0.02));
  }
}

TEST(SelfCorrection, JitterBelowTauIgnored) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  auto snap = net.Snapshot();
  const SelfCorrectionStats stats = SelfCorrectSnapshot(snap);
  EXPECT_EQ(stats.mismatched_pairs, 0u);
}

}  // namespace
}  // namespace hodor::telemetry
