file(REMOVE_RECURSE
  "libhodor_core.a"
)
