file(REMOVE_RECURSE
  "CMakeFiles/live_pipeline.dir/live_pipeline.cpp.o"
  "CMakeFiles/live_pipeline.dir/live_pipeline.cpp.o.d"
  "live_pipeline"
  "live_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
