# Empty dependencies file for hodor_controlplane.
# This may be replaced when dependencies are built.
