file(REMOVE_RECURSE
  "CMakeFiles/util_strings_table_test.dir/util/strings_table_test.cc.o"
  "CMakeFiles/util_strings_table_test.dir/util/strings_table_test.cc.o.d"
  "util_strings_table_test"
  "util_strings_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_strings_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
