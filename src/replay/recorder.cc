#include "replay/recorder.h"

namespace hodor::replay {

EpochVerdict VerdictFromEpochResult(const controlplane::EpochResult& result) {
  const obs::DecisionRecord& prov = result.decision.provenance;
  EpochVerdict v;
  v.validated = result.validated;
  v.accept = result.decision.accept;
  v.used_fallback = result.used_fallback;
  v.reason = result.decision.reason;
  v.summary = prov.summary;
  v.decision_digest = prov.CanonicalDigest();
  v.evaluated = static_cast<std::uint32_t>(prov.evaluated_count());
  v.failed = static_cast<std::uint32_t>(prov.failed_count());
  v.skipped = static_cast<std::uint32_t>(prov.skipped_count());
  v.invariants.reserve(prov.Invariants().size());
  for (const obs::InvariantRecord& inv : prov.Invariants()) {
    v.invariants.push_back({inv.check, inv.invariant, inv.residual,
                            inv.threshold, inv.verdict, inv.source,
                            inv.confidence});
  }
  return v;
}

util::Status PipelineRecorder::Open(const std::string& path,
                                    const net::Topology& topo,
                                    EpochLogWriterOptions opts) {
  status_ = util::Status::Ok();
  return writer_.Open(path, topo, opts);
}

controlplane::EpochSinkFn PipelineRecorder::Hook() {
  return [this](const controlplane::EpochResult& result) { Record(result); };
}

void PipelineRecorder::Record(const controlplane::EpochResult& result) {
  if (!status_.ok() || !writer_.is_open()) return;
  status_ = writer_.Append(result.epoch, result.snapshot, result.raw_input,
                           VerdictFromEpochResult(result));
}

util::Status PipelineRecorder::Close() {
  const util::Status close_status = writer_.Close();
  return status_.ok() ? close_status : status_;
}

}  // namespace hodor::replay
