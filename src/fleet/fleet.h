// Fleet mode: many independent validation instances over one shared pool.
//
// The paper's deployment target is not one WAN graph but an operator
// running dozens of slices (ROADMAP item 3: "many topologies × high epoch
// rates over shared cores"). A FleetInstance is one complete validation
// world — its own topology, ground truth, scenario schedule, delta-aware
// validator, per-instance MetricsRegistry, trust board, detection-latency
// tracker, and optional flight recorder — driven by its own seeded Rng.
// FleetManager schedules N of them over one util::ThreadPool in rounds
// (one pool task per instance per round; the pool is fork-join and
// single-caller, so parallelism is inter-instance by design) and folds the
// per-instance registries into one instance-labeled scoreboard registry
// (`hodor_*{...,instance="..."}`) plus a /fleet JSON scoreboard.
//
// Isolation contract: an instance shares NOTHING mutable with its
// neighbours — no global registry (both PipelineOptions::metrics and
// ValidatorOptions::metrics point at the instance's own), no global rng,
// no cross-instance buffers. Every random draw is a pure function of
// (spec.seed, epoch). Consequently an instance's per-epoch
// DecisionRecord::CanonicalDigest stream is bit-identical to a standalone
// run of the same spec at any pool size and any instance mix —
// StandaloneDigests() is the oracle and scripts/check_build.sh
// --fleet-gate enforces the equivalence at threads 1 and 4.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "controlplane/pipeline.h"
#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/demand_matrix.h"
#include "net/state.h"
#include "net/topology.h"
#include "obs/detection.h"
#include "obs/health/signal_health.h"
#include "obs/metrics.h"
#include "replay/recorder.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/status.h"

namespace hodor::obs {
class TelemetryServer;
}

namespace hodor::fleet {

// One instance's complete configuration. Everything an instance does —
// topology generation, demand, drift, fault schedule — derives from this
// struct alone, which is what makes fleet/standalone equivalence testable.
struct InstanceSpec {
  // Unique scoreboard label ("abilene-0"); also the `instance` label value
  // on merged metrics.
  std::string name;
  // abilene | geant | b4 | waxman100 | waxman400 | hier400 | hier1k |
  // hier10k. Generated topologies (waxman*, hier*) are seeded by `seed`.
  std::string topology = "abilene";
  std::uint64_t seed = 1;
  // Total control epochs this instance runs.
  std::uint64_t epochs = 8;
  // Outage scenario id from faults::ScenarioCatalog, injected over
  // [fault_start, fault_end); empty = healthy run.
  std::string scenario;
  std::uint64_t fault_start = 3;
  std::uint64_t fault_end = 6;
  // Demand normalization target (max link utilization of the base matrix).
  double max_utilization = 0.35;
  // Optional flight-recorder output (replay::PipelineRecorder).
  std::string record_path;
};

// Builds the spec's topology. Generated families draw from Rng(spec.seed),
// so the same spec always yields the same graph (net::StructuralDigest).
// Unknown names raise via HODOR_CHECK.
net::Topology TopologyForSpec(const InstanceSpec& spec);

// The digest stream a standalone run of `spec` produces: constructs a
// fresh instance and runs every epoch inline on the calling thread. The
// fleet gate compares each fleet instance's stream against this oracle.
std::vector<std::uint64_t> StandaloneDigests(const InstanceSpec& spec);

class FleetInstance {
 public:
  explicit FleetInstance(InstanceSpec spec);
  ~FleetInstance();

  FleetInstance(const FleetInstance&) = delete;
  FleetInstance& operator=(const FleetInstance&) = delete;

  // Runs up to `count` more epochs inline on the calling thread; returns
  // how many actually ran (0 when the schedule is exhausted). Callable
  // from a different thread each round — the instance hands its registry
  // to the next owner on exit.
  std::size_t RunEpochs(std::size_t count);

  bool done() const { return epochs_done_ >= spec_.epochs; }
  std::uint64_t epochs_done() const { return epochs_done_; }
  const InstanceSpec& spec() const { return spec_; }
  const net::Topology& topology() const { return topo_; }

  // One CanonicalDigest per completed epoch, in epoch order.
  const std::vector<std::uint64_t>& digests() const { return digests_; }

  // Wall-clock spent inside RunEpochs so far, and the resulting rate.
  double seconds() const { return seconds_; }
  double epochs_per_sec() const;

  const obs::MetricsRegistry& registry() const { return registry_; }
  const obs::SignalHealthBoard& board() const { return board_; }
  const obs::DetectionLatencyTracker& detection() const { return detection_; }
  // Fault classes active at the most recently completed epoch.
  const std::vector<std::string>& active_faults() const {
    return active_faults_;
  }
  std::uint64_t accepts() const { return accepts_; }
  std::uint64_t rejects() const { return rejects_; }

  // Closes the flight recorder, if one is open. Also run by the destructor.
  util::Status Close();

 private:
  InstanceSpec spec_;
  net::Topology topo_;
  net::GroundTruthState state_;
  flow::DemandMatrix base_demand_;
  faults::ScenarioCatalog catalog_;
  const faults::OutageScenario* scenario_ = nullptr;  // null = healthy run

  obs::MetricsRegistry registry_;
  core::Validator validator_;
  controlplane::Pipeline pipeline_;
  replay::PipelineRecorder recorder_;
  bool recording_ = false;
  bool recorder_closed_ = false;

  obs::SignalHealthBoard board_;
  obs::DetectionLatencyTracker detection_;

  std::uint64_t epochs_done_ = 0;
  std::vector<std::uint64_t> digests_;
  std::vector<std::string> active_faults_;
  std::uint64_t accepts_ = 0;
  std::uint64_t rejects_ = 0;
  double seconds_ = 0.0;
};

struct FleetOptions {
  // Shared pool width. 1 = all instances run serially on the calling
  // thread (bit-identical results either way — the equivalence the fleet
  // gate checks).
  std::size_t threads = 1;
  // Epochs each instance advances per scheduling round. Small values keep
  // the scoreboard fresh; large values amortize dispatch.
  std::size_t epochs_per_round = 2;
};

class FleetManager {
 public:
  explicit FleetManager(FleetOptions opts = {});

  // Adds one instance. Names must be unique (scoreboard identity). Add
  // every instance before the first RunRound.
  FleetInstance& AddInstance(InstanceSpec spec);

  // Advances every unfinished instance by up to epochs_per_round epochs —
  // one shared-pool task per instance — then refreshes the merged
  // registry. Returns false once every instance is done.
  bool RunRound();

  // Rounds until completion.
  void RunAll();

  const std::vector<std::unique_ptr<FleetInstance>>& instances() const {
    return instances_;
  }
  std::size_t rounds() const { return rounds_; }
  std::size_t threads() const { return pool_ ? pool_->thread_count() : 1; }
  std::uint64_t epochs_total() const;
  // Fleet throughput: total epochs / wall-clock of all rounds so far.
  double aggregate_epochs_per_sec() const;

  // Per-instance series merged under an added `instance` label, rebuilt
  // each round: hodor_epochs_total{instance="abilene-0"} etc.
  const obs::MetricsRegistry& registry() const { return merged_; }

  // The /fleet payload: {"summary":{...},"instances":[...]} with
  // per-instance epoch rate, trust floor, verdict counts, active faults,
  // embedded SLO scorecard, and laggard ranking (1 = slowest).
  std::string ScoreboardJson() const;

  // PublishFleet(ScoreboardJson()) + PublishMetrics(merged registry).
  void PublishTo(obs::TelemetryServer& server) const;

 private:
  FleetOptions opts_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads <= 1
  std::vector<std::unique_ptr<FleetInstance>> instances_;
  obs::MetricsRegistry merged_;
  std::size_t rounds_ = 0;
  double round_seconds_ = 0.0;
};

}  // namespace hodor::fleet
