// DetectionLatencyTracker: episode lifecycle, per-(fault class, detector)
// latency samples, misses, repairs, and the clean-run false-positive
// control (DESIGN §11).
#include "obs/detection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/provenance.h"

namespace hodor::obs {
namespace {

DecisionRecord Decision(std::vector<InvariantRecord> records) {
  DecisionRecord decision;
  for (InvariantRecord& rec : records) decision.Add(std::move(rec));
  return decision;
}

InvariantRecord Record(std::string check, InvariantVerdict verdict) {
  InvariantRecord rec;
  rec.check = std::move(check);
  rec.invariant = "inv";
  rec.verdict = verdict;
  return rec;
}

TEST(DetectionLatencyTrackerTest, FirstFlagLatencyPerDetector) {
  DetectionLatencyTracker tracker;
  MetricsRegistry reg;
  // Fault injected at epoch 5; nothing fires until epoch 7.
  tracker.ObserveEpoch(5, {"external-input"}, Decision({}), &reg);
  tracker.ObserveEpoch(6, {"external-input"}, Decision({}), &reg);
  tracker.ObserveEpoch(
      7, {"external-input"},
      Decision({Record("demand", InvariantVerdict::kFail)}), &reg);
  // The same detector firing again must not add a second sample.
  tracker.ObserveEpoch(
      8, {"external-input"},
      Decision({Record("demand", InvariantVerdict::kFail)}), &reg);

  EXPECT_EQ(tracker.episodes("external-input"), 1u);
  const std::vector<double> latencies =
      tracker.Latencies("external-input", "demand");
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(latencies[0], 2.0);
  const Histogram* hist = reg.FindHistogram(
      "hodor_detection_latency_epochs",
      {{"fault_class", "external-input"}, {"detector", "demand"}});
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  EXPECT_DOUBLE_EQ(hist->sum(), 2.0);
}

TEST(DetectionLatencyTrackerTest, EpisodeClosesAndReopens) {
  DetectionLatencyTracker tracker;
  tracker.ObserveEpoch(
      0, {"aggregation"},
      Decision({Record("topology", InvariantVerdict::kFail)}), nullptr);
  tracker.ObserveEpoch(1, {}, Decision({}), nullptr);  // episode closes
  tracker.ObserveEpoch(
      2, {"aggregation"},
      Decision({Record("topology", InvariantVerdict::kFail)}), nullptr);
  EXPECT_EQ(tracker.episodes("aggregation"), 2u);
  EXPECT_EQ(tracker.misses("aggregation"), 0u);
  // Each episode contributes its own first-flag sample.
  EXPECT_EQ(tracker.Latencies("aggregation", "topology").size(), 2u);
}

TEST(DetectionLatencyTrackerTest, UnflaggedEpisodeIsAMiss) {
  DetectionLatencyTracker tracker;
  MetricsRegistry reg;
  tracker.ObserveEpoch(0, {"router-signal"}, Decision({}), &reg);
  tracker.ObserveEpoch(1, {"router-signal"}, Decision({}), &reg);
  tracker.ObserveEpoch(2, {}, Decision({}), &reg);  // closes with no flag
  EXPECT_EQ(tracker.episodes("router-signal"), 1u);
  EXPECT_EQ(tracker.misses("router-signal"), 1u);
  const Counter* miss = reg.FindCounter("hodor_detection_miss_total",
                                        {{"fault_class", "router-signal"}});
  ASSERT_NE(miss, nullptr);
  EXPECT_DOUBLE_EQ(miss->value(), 1.0);
}

TEST(DetectionLatencyTrackerTest, HardeningFiresOnAnyRecordAndPassRepairs) {
  // signal_health convention: hardening emits records only for flagged
  // signals, so kPass there means flagged-and-repaired.
  DetectionLatencyTracker tracker;
  MetricsRegistry reg;
  tracker.ObserveEpoch(
      0, {"router-signal"},
      Decision({Record("hardening", InvariantVerdict::kPass)}), &reg);
  EXPECT_EQ(tracker.Latencies("router-signal", "hardening").size(), 1u);
  const Counter* repair = reg.FindCounter(
      "hodor_detection_repair_total",
      {{"fault_class", "router-signal"}, {"detector", "hardening"}});
  ASSERT_NE(repair, nullptr);
  EXPECT_DOUBLE_EQ(repair->value(), 1.0);
  // Skipped hardening records do not fire.
  DetectionLatencyTracker tracker2;
  tracker2.ObserveEpoch(
      0, {"router-signal"},
      Decision({Record("hardening", InvariantVerdict::kSkipped)}), nullptr);
  tracker2.ObserveEpoch(1, {}, Decision({}), nullptr);
  EXPECT_EQ(tracker2.misses("router-signal"), 1u);
}

TEST(DetectionLatencyTrackerTest, MultiClassAttributionCreditsEveryClass) {
  DetectionLatencyTracker tracker;
  tracker.ObserveEpoch(
      0, {"router-signal", "aggregation"},
      Decision({Record("topology", InvariantVerdict::kFail)}), nullptr);
  EXPECT_EQ(tracker.Latencies("router-signal", "topology").size(), 1u);
  EXPECT_EQ(tracker.Latencies("aggregation", "topology").size(), 1u);
}

TEST(DetectionLatencyTrackerTest, CleanEpochFlagsAreFalsePositives) {
  DetectionLatencyTracker tracker;
  MetricsRegistry reg;
  tracker.ObserveEpoch(0, {}, Decision({}), &reg);
  tracker.ObserveEpoch(
      1, {}, Decision({Record("drain", InvariantVerdict::kFail)}), &reg);
  EXPECT_EQ(tracker.clean_epochs(), 2u);
  EXPECT_EQ(tracker.fault_epochs(), 0u);
  EXPECT_EQ(tracker.false_positive_epochs(), 1u);
  const Counter* fp = reg.FindCounter("hodor_detection_false_positive_total",
                                      {{"detector", "drain"}});
  ASSERT_NE(fp, nullptr);
  EXPECT_DOUBLE_EQ(fp->value(), 1.0);
  // Passing verdicts on a clean epoch are not false positives.
  tracker.ObserveEpoch(
      2, {}, Decision({Record("demand", InvariantVerdict::kPass)}), &reg);
  EXPECT_EQ(tracker.false_positive_epochs(), 1u);
}

TEST(DetectionLatencyTrackerTest, SloJsonReflectsSamplesAndBudgets) {
  DetectionOptions opts;
  opts.slo.latency_p50_epochs = 1.0;
  opts.slo.latency_p99_epochs = 2.0;
  opts.slo.false_positive_budget = 0.5;
  DetectionLatencyTracker tracker(opts);
  // Empty tracker: percentiles render null and count as passing.
  std::string json = tracker.SloJson();
  EXPECT_NE(json.find("\"samples\":0"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":null"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);

  tracker.ObserveEpoch(
      0, {"external-input"},
      Decision({Record("demand", InvariantVerdict::kFail)}), nullptr);
  tracker.ObserveEpoch(1, {}, Decision({}), nullptr);
  json = tracker.SloJson();
  EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":0"), std::string::npos);
  EXPECT_NE(json.find("\"fault_class\":\"external-input\""),
            std::string::npos);
  EXPECT_NE(json.find("\"detector\":\"demand\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_epochs\":1"), std::string::npos);
}

TEST(DetectionLatencyTrackerTest, SloLatencyBreachFlips) {
  DetectionOptions opts;
  opts.slo.latency_p50_epochs = 0.5;  // any latency >= 1 breaches
  DetectionLatencyTracker tracker(opts);
  tracker.ObserveEpoch(0, {"aggregation"}, Decision({}), nullptr);
  tracker.ObserveEpoch(
      3, {"aggregation"},
      Decision({Record("topology", InvariantVerdict::kFail)}), nullptr);
  const std::string json = tracker.SloJson();
  EXPECT_NE(json.find("\"p50_ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

}  // namespace
}  // namespace hodor::obs
