#include "util/spsc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/exec_trace.h"

namespace hodor::util {
namespace {

TEST(BoundedSpscQueue, PushPopSingleThread) {
  BoundedSpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.size(), 2u);
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedSpscQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedSpscQueue<int>(0), std::logic_error);
}

TEST(BoundedSpscQueue, PushBlocksWhenFull) {
  BoundedSpscQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(3);  // must block until a slot frees
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());  // still blocked on the full queue
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 3);
}

TEST(BoundedSpscQueue, OrderedDeliveryAcrossThreads) {
  // A small ring forces constant wrap-around and backpressure; every item
  // must still arrive exactly once, in order.
  BoundedSpscQueue<int> q(3);
  constexpr int kItems = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  std::vector<int> got;
  got.reserve(kItems);
  int v = 0;
  while (q.Pop(v)) got.push_back(v);
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

TEST(BoundedSpscQueue, CloseDrainsQueuedItemsThenReportsEmpty) {
  BoundedSpscQueue<int> q(4);
  q.Push(7);
  q.Push(8);
  q.Close();
  EXPECT_TRUE(q.closed());
  int v = 0;
  EXPECT_TRUE(q.Pop(v));  // queued items survive Close
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(v));  // drained + closed → false, no block
}

TEST(BoundedSpscQueue, PopUnblocksOnClose) {
  BoundedSpscQueue<int> q(2);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.Pop(v));  // wakes when the producer closes
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(BoundedSpscQueue, PushOnClosedThrows) {
  BoundedSpscQueue<int> q(2);
  q.Close();
  EXPECT_THROW(q.Push(1), std::logic_error);
}

// --- execution-trace instrumentation (util/exec_trace.h) -------------------

std::vector<ExecEvent> DrainAll(ExecTracer& tracer) {
  std::vector<ExecTracer::ThreadEvents> batches;
  tracer.Drain(&batches);
  std::vector<ExecEvent> out;
  for (const auto& b : batches) {
    out.insert(out.end(), b.events.begin(), b.events.end());
  }
  return out;
}

TEST(BoundedSpscQueue, TracedOpsRecordDepthAfterEachOperation) {
  ExecTracer tracer(64);
  ExecThreadHandle producer = tracer.RegisterThread("producer");
  ExecThreadHandle consumer = tracer.RegisterThread("consumer");
  BoundedSpscQueue<int> q(4);
  q.AttachTracer(&tracer, /*queue_id=*/3, producer, consumer);
  tracer.SetCurrentEpoch(9);

  q.Push(1);
  q.Push(2);
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  ASSERT_TRUE(q.Pop(v));

  const std::vector<ExecEvent> evs = DrainAll(tracer);
  std::vector<std::uint32_t> push_depths;
  std::vector<std::uint32_t> pop_depths;
  for (const ExecEvent& ev : evs) {
    EXPECT_EQ(ev.arg, 3);  // the attached queue id
    EXPECT_EQ(ev.epoch, 9u);
    if (ev.kind == ExecEventKind::kQueuePush) push_depths.push_back(ev.detail);
    if (ev.kind == ExecEventKind::kQueuePop) pop_depths.push_back(ev.detail);
  }
  // Depth after each op: pushes grow 1→2, pops shrink 1→0.
  EXPECT_EQ(push_depths, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(pop_depths, (std::vector<std::uint32_t>{1, 0}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedSpscQueue, TracedPushRecordsBlockedWait) {
  ExecTracer tracer(64);
  ExecThreadHandle producer = tracer.RegisterThread("producer");
  ExecThreadHandle consumer = tracer.RegisterThread("consumer");
  BoundedSpscQueue<int> q(1);
  q.AttachTracer(&tracer, /*queue_id=*/0, producer, consumer);

  q.Push(1);
  std::thread producer_thread([&] { q.Push(2); });  // blocks: queue is full
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  producer_thread.join();

  const std::vector<ExecEvent> evs = DrainAll(tracer);
  std::uint64_t max_push_wait_ns = 0;
  for (const ExecEvent& ev : evs) {
    if (ev.kind == ExecEventKind::kQueuePush) {
      max_push_wait_ns = std::max(max_push_wait_ns, ev.duration_ns);
    }
  }
  // The blocked push waited through (at least most of) the sleep.
  EXPECT_GE(max_push_wait_ns, 10u * 1000 * 1000);
}

TEST(BoundedSpscQueue, UntracedQueueEmitsNothing) {
  ExecTracer tracer(64);
  (void)tracer.RegisterThread("unused");
  BoundedSpscQueue<int> q(2);
  q.Push(5);
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  EXPECT_TRUE(DrainAll(tracer).empty());
}

// Two-thread stress: the TSan configuration of check_build.sh runs this to
// vet the mutex/condvar protocol under contention.
TEST(BoundedSpscQueue, StressPingPong) {
  BoundedSpscQueue<std::uint64_t> q(2);
  constexpr std::uint64_t kItems = 50000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (q.Pop(v)) sum += v;
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) q.Push(i);
  q.Close();
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace hodor::util
