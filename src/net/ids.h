// Strongly-typed identifiers for topology entities.
//
// NodeId and LinkId are distinct types wrapping a dense index, so a link
// index can never be passed where a node index is expected. Both are valid
// keys for std::unordered_map via std::hash specialisations below.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace hodor::net {

namespace internal {

template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(underlying_type value) : value_(value) {}

  static constexpr Id Invalid() { return Id(); }

  constexpr bool valid() const { return value_ != kInvalidValue; }
  constexpr underlying_type value() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr underlying_type kInvalidValue =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_;
};

struct NodeTag {};
struct LinkTag {};

}  // namespace internal

// Identifies a router (node) in a Topology. Dense: 0..node_count()-1.
using NodeId = internal::Id<internal::NodeTag>;

// Identifies a *directed* link in a Topology. Dense: 0..link_count()-1.
// Every physical (bidirectional) link is represented as two directed links
// that reference each other via Link::reverse.
using LinkId = internal::Id<internal::LinkTag>;

}  // namespace hodor::net

namespace std {
template <>
struct hash<hodor::net::NodeId> {
  size_t operator()(hodor::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>()(id.value());
  }
};
template <>
struct hash<hodor::net::LinkId> {
  size_t operator()(hodor::net::LinkId id) const noexcept {
    return std::hash<std::uint32_t>()(id.value());
  }
};
}  // namespace std
