#include "flow/tm_generators.h"

#include <gtest/gtest.h>

#include "flow/simulator.h"
#include "net/state.h"
#include "net/topologies.h"

namespace hodor::flow {
namespace {

using net::NodeId;

TEST(GravityDemand, TotalMatchesLoadFraction) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(3);
  GravityOptions opts;
  opts.load_fraction = 0.25;
  const DemandMatrix d = GravityDemand(topo, rng, opts);
  double ext_sum = 0.0;
  for (NodeId v : topo.ExternalNodes()) {
    ext_sum += topo.node(v).external_capacity;
  }
  EXPECT_NEAR(d.Total(), 0.25 * ext_sum / 2.0, 1e-6);
}

TEST(GravityDemand, AllOffDiagonalPositive) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(3);
  const DemandMatrix d = GravityDemand(topo, rng);
  // 12 external nodes -> 132 ordered pairs, all positive under gravity.
  EXPECT_EQ(d.PositiveEntryCount(), 132u);
  for (NodeId v : topo.NodeIds()) EXPECT_DOUBLE_EQ(d.At(v, v), 0.0);
}

TEST(GravityDemand, DeterministicPerSeed) {
  const net::Topology topo = net::Abilene();
  util::Rng a(5), b(5), c(6);
  EXPECT_DOUBLE_EQ(GravityDemand(topo, a).Total(),
                   GravityDemand(topo, b).Total());
  util::Rng a2(5);
  const DemandMatrix da = GravityDemand(topo, a2);
  const DemandMatrix dc = GravityDemand(topo, c);
  EXPECT_GT(da.MaxAbsDifference(dc), 0.0);
}

TEST(GravityDemand, SkewedMassesGiveSkewedRows) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(7);
  GravityOptions opts;
  opts.mass_alpha = 0.8;  // heavier tail
  const DemandMatrix d = GravityDemand(topo, rng, opts);
  double min_row = 1e18, max_row = 0.0;
  for (NodeId v : topo.ExternalNodes()) {
    min_row = std::min(min_row, d.RowSum(v));
    max_row = std::max(max_row, d.RowSum(v));
  }
  EXPECT_GT(max_row, 2.0 * min_row);
}

TEST(GravityDemand, FewerThanTwoExternalNodesGivesZero) {
  net::Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  topo.AddBidirectionalLink(a, b, 10.0);
  topo.AddExternalPort(a, 100.0);  // only one external node
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(GravityDemand(topo, rng).Total(), 0.0);
}

TEST(UniformDemand, EveryPairEqual) {
  const net::Topology topo = net::Figure3Triangle();
  const DemandMatrix d = UniformDemand(topo, 2.5);
  EXPECT_DOUBLE_EQ(d.At(NodeId(0), NodeId(1)), 2.5);
  EXPECT_DOUBLE_EQ(d.At(NodeId(2), NodeId(0)), 2.5);
  EXPECT_DOUBLE_EQ(d.Total(), 6 * 2.5);
}

TEST(BimodalDemand, OnlyTwoLevels) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(11);
  const DemandMatrix d = BimodalDemand(topo, rng, 1.0, 50.0, 0.3);
  for (const auto& [i, j] : d.Pairs()) {
    const double v = d.At(i, j);
    EXPECT_TRUE(v == 1.0 || v == 50.0) << v;
  }
}

TEST(HotspotDemand, AddsHotspotsOnTopOfBackground) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(13);
  const DemandMatrix d = HotspotDemand(topo, rng, 1.0, 3, 40.0);
  EXPECT_NEAR(d.Total(), 132 * 1.0 + 3 * 40.0, 1e-9);
}

TEST(NormalizeToExternalCapacity, CapsWorstRow) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(17);
  DemandMatrix d = GravityDemand(topo, rng);
  NormalizeToExternalCapacity(topo, 0.5, d);
  double worst = 0.0;
  for (NodeId v : topo.ExternalNodes()) {
    worst = std::max(worst, d.RowSum(v) / topo.node(v).external_capacity);
  }
  EXPECT_NEAR(worst, 0.5, 1e-9);
}

TEST(NormalizeToMaxUtilization, HitsTargetUnderSpf) {
  const net::Topology topo = net::Abilene();
  util::Rng rng(19);
  DemandMatrix d = GravityDemand(topo, rng);
  NormalizeToMaxUtilization(topo, 0.7, d);

  const net::GroundTruthState state(topo);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  double max_util = 0.0;
  for (const net::Link& l : topo.links()) {
    max_util = std::max(max_util, sim.arriving[l.id.value()] / l.capacity);
  }
  EXPECT_NEAR(max_util, 0.7, 1e-6);
}

TEST(NormalizeToMaxUtilization, ZeroDemandIsNoOp) {
  const net::Topology topo = net::Figure3Triangle();
  DemandMatrix d(topo.node_count());
  NormalizeToMaxUtilization(topo, 0.5, d);
  EXPECT_DOUBLE_EQ(d.Total(), 0.0);
}

}  // namespace
}  // namespace hodor::flow
