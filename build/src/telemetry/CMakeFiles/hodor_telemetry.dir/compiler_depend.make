# Empty compiler generated dependencies file for hodor_telemetry.
# This may be replaced when dependencies are built.
