// The fleet isolation contract end to end (DESIGN §13): the acceptance
// mix — Abilene + waxman100 + waxman400 + hierarchical-1k, scenarios
// included — runs over one shared pool at widths 1 and 4, and every
// instance's per-epoch CanonicalDigest stream is bit-identical to a
// standalone run of the same spec. Any shared mutable state between
// instances (a global registry, a shared rng, a leaked buffer) shows up
// here as a digest divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "util/logging.h"

namespace hodor::fleet {
namespace {

std::vector<InstanceSpec> AcceptanceMix() {
  const char* topologies[] = {"abilene", "waxman100", "waxman400", "hier1k"};
  const char* scenarios[] = {"phantom-links", "partial-demand", "", ""};
  std::vector<InstanceSpec> specs;
  for (std::size_t i = 0; i < 4; ++i) {
    InstanceSpec spec;
    spec.topology = topologies[i];
    spec.name = std::string(topologies[i]) + "-" + std::to_string(i);
    spec.seed = 100 + i;
    spec.epochs = 6;
    spec.scenario = scenarios[i];
    specs.push_back(std::move(spec));
  }
  return specs;
}

class FleetEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
    // The oracle is spec-deterministic, so one standalone pass serves both
    // pool widths.
    for (const InstanceSpec& spec : AcceptanceMix()) {
      oracle_[spec.name] = StandaloneDigests(spec);
    }
  }
  static void TearDownTestSuite() {
    util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
    oracle_.clear();
  }

  static void RunAtWidth(std::size_t threads) {
    FleetManager manager({threads, /*epochs_per_round=*/2});
    for (const InstanceSpec& spec : AcceptanceMix()) {
      manager.AddInstance(spec);
    }
    manager.RunAll();
    ASSERT_EQ(manager.instances().size(), 4u);
    EXPECT_EQ(manager.epochs_total(), 24u);
    for (const auto& instance : manager.instances()) {
      EXPECT_EQ(instance->digests(), oracle_[instance->spec().name])
          << instance->spec().name << " at " << threads << " thread(s)";
    }
  }

  static std::map<std::string, std::vector<std::uint64_t>> oracle_;
};

std::map<std::string, std::vector<std::uint64_t>> FleetEquivalence::oracle_;

TEST_F(FleetEquivalence, MixedFleetSerialMatchesStandalone) {
  RunAtWidth(1);
}

TEST_F(FleetEquivalence, MixedFleetPooledMatchesStandalone) {
  RunAtWidth(4);
}

}  // namespace
}  // namespace hodor::fleet
