file(REMOVE_RECURSE
  "CMakeFiles/bench_availability.dir/bench_availability.cc.o"
  "CMakeFiles/bench_availability.dir/bench_availability.cc.o.d"
  "bench_availability"
  "bench_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
