# Empty compiler generated dependencies file for core_topology_drain_check_test.
# This may be replaced when dependencies are built.
