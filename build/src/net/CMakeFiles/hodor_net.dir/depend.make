# Empty dependencies file for hodor_net.
# This may be replaced when dependencies are built.
