#include "core/alerts.h"

#include <algorithm>
#include <sstream>

#include "obs/health/signal_health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace hodor::core {

std::string Alert::Render() const {
  std::ostringstream os;
  os << "[" << AlertSeverityName(severity) << "] " << source << " " << entity
     << ": " << message;
  if (!signal_paths.empty()) {
    os << " (inspect:";
    for (const std::string& p : signal_paths) os << " " << p;
    os << ")";
  }
  return os.str();
}

namespace {

// Paths of the counter pair measuring directed link e.
std::vector<std::string> CounterPairPaths(
    const net::Topology& topo, const telemetry::SignalCatalog& catalog,
    net::LinkId e) {
  std::vector<std::string> out;
  for (const telemetry::SignalDescriptor& d : catalog.signals()) {
    if (d.link == e && (d.kind == telemetry::SignalKind::kTxRate ||
                        d.kind == telemetry::SignalKind::kRxRate)) {
      out.push_back(d.path);
    }
  }
  (void)topo;
  return out;
}

std::vector<std::string> ExternalCounterPaths(
    const telemetry::SignalCatalog& catalog, net::NodeId v,
    telemetry::SignalKind kind) {
  std::vector<std::string> out;
  for (const telemetry::SignalDescriptor& d : catalog.signals()) {
    if (d.reporter == v && d.kind == kind) out.push_back(d.path);
  }
  return out;
}

}  // namespace

std::vector<Alert> BuildAlerts(const net::Topology& topo,
                               const telemetry::SignalCatalog& catalog,
                               const ValidationReport& report,
                               const AlertOptions& opts) {
  std::vector<Alert> alerts;

  // Hardening findings: repaired counters (info) and unrepairable ones
  // (warning — the validator is flying with a hole in its view).
  for (net::LinkId e : topo.LinkIds()) {
    const HardenedRate& r = report.hardened.rates[e.value()];
    if (r.origin == RateOrigin::kRepaired && opts.report_repairs) {
      std::ostringstream msg;
      msg << "counter pair flagged and repaired";
      if (r.rejected_value) {
        msg << " (rejected reading " << *r.rejected_value << ")";
      }
      alerts.push_back(Alert{AlertSeverity::kInfo, "hardening",
                             topo.LinkName(e), msg.str(),
                             CounterPairPaths(topo, catalog, e)});
    } else if (r.origin == RateOrigin::kUnknown && r.flagged) {
      alerts.push_back(Alert{AlertSeverity::kWarning, "hardening",
                             topo.LinkName(e),
                             "counter pair spurious and unrepairable",
                             CounterPairPaths(topo, catalog, e)});
    }
  }

  for (const DemandViolation& v : report.demand.violations) {
    alerts.push_back(Alert{
        AlertSeverity::kCritical, "demand-check", topo.node(v.node).name,
        v.ToString(topo),
        ExternalCounterPaths(catalog, v.node,
                             v.kind == DemandInvariantKind::kIngress
                                 ? telemetry::SignalKind::kExtInRate
                                 : telemetry::SignalKind::kExtOutRate)});
  }

  for (const TopologyViolation& v : report.topology.violations) {
    alerts.push_back(Alert{AlertSeverity::kCritical, "topology-check",
                           topo.LinkName(v.link), v.ToString(topo),
                           CounterPairPaths(topo, catalog, v.link)});
  }

  for (const DrainViolation& v : report.drain.violations) {
    const std::string entity =
        v.node.valid() ? topo.node(v.node).name : topo.LinkName(v.link);
    alerts.push_back(Alert{AlertSeverity::kCritical, "drain-check", entity,
                           v.ToString(topo), {}});
  }
  for (net::NodeId v : report.drain.warnings_drained_but_active) {
    alerts.push_back(Alert{AlertSeverity::kWarning, "drain-check",
                           topo.node(v).name,
                           "drained but carrying traffic (§4.3 case 2)",
                           {}});
  }

  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const Alert& a, const Alert& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     return a.source < b.source;
                   });
  return alerts;
}

namespace {

// Provenance check families → the alert source vocabulary BuildAlerts
// already uses ("demand" fires as "demand-check" etc.).
std::string SourceForCheck(const std::string& check) {
  return check == "hardening" ? check : check + "-check";
}

AlertSeverity Escalate(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::kInfo: return AlertSeverity::kWarning;
    case AlertSeverity::kWarning: return AlertSeverity::kCritical;
    case AlertSeverity::kCritical: return AlertSeverity::kCritical;
  }
  return s;
}

}  // namespace

std::vector<Alert> AlertsFromProvenance(const obs::DecisionRecord& record,
                                        const AlertOptions& opts) {
  std::vector<Alert> alerts;
  for (const obs::InvariantRecord& rec : record.Invariants()) {
    const bool hardening = rec.check == "hardening";
    Alert alert;
    alert.source = SourceForCheck(rec.check);
    alert.entity = obs::ExtractInvariantEntity(rec.invariant);
    switch (rec.verdict) {
      case obs::InvariantVerdict::kFail: {
        alert.severity =
            hardening ? AlertSeverity::kWarning : AlertSeverity::kCritical;
        std::ostringstream msg;
        msg << rec.invariant << " fired (residual "
            << util::FormatDouble(rec.residual, 4) << " > threshold "
            << util::FormatDouble(rec.threshold, 4) << ")";
        if (!rec.detail.empty()) msg << ": " << rec.detail;
        alert.message = msg.str();
        break;
      }
      case obs::InvariantVerdict::kSkipped:
        // Only a hardening skip — an unrecoverable router signal — is
        // actionable; skipped check invariants just lacked that signal.
        if (!hardening) continue;
        alert.severity = AlertSeverity::kWarning;
        alert.message = rec.invariant + " unrecoverable" +
                        (rec.detail.empty() ? "" : ": " + rec.detail);
        break;
      case obs::InvariantVerdict::kPass:
        // Hardening pass records exist only for flagged-and-recovered
        // signals: the paper trail BuildAlerts reports as kInfo.
        if (!hardening || !opts.report_repairs) continue;
        alert.severity = AlertSeverity::kInfo;
        alert.message = rec.invariant + " flagged and repaired" +
                        (rec.detail.empty() ? "" : ": " + rec.detail);
        break;
    }
    alerts.push_back(std::move(alert));
  }
  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const Alert& a, const Alert& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     return a.source < b.source;
                   });
  return alerts;
}

// --- alert lifecycle --------------------------------------------------------

std::string AlertRecord::Render() const {
  std::ostringstream os;
  os << "[" << AlertSeverityName(alert.severity) << "] " << alert.source
     << " " << alert.entity << " (" << AlertStateName(state) << " since epoch "
     << first_epoch << ", seen " << observed_epochs << "x";
  if (escalated) os << ", escalated";
  if (state == AlertState::kResolved) {
    os << ", resolved at epoch " << resolved_epoch;
  }
  os << "): " << alert.message;
  return os.str();
}

std::string AlertRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"key\":\"" << obs::JsonEscape(key) << "\",\"state\":\""
     << AlertStateName(state) << "\",\"severity\":\""
     << AlertSeverityName(alert.severity) << "\",\"source\":\""
     << obs::JsonEscape(alert.source) << "\",\"entity\":\""
     << obs::JsonEscape(alert.entity) << "\",\"message\":\""
     << obs::JsonEscape(alert.message) << "\",\"first_epoch\":" << first_epoch
     << ",\"last_seen_epoch\":" << last_seen_epoch;
  if (state == AlertState::kResolved) {
    os << ",\"resolved_epoch\":" << resolved_epoch;
  }
  os << ",\"observed_epochs\":" << observed_epochs
     << ",\"consecutive_epochs\":" << consecutive_epochs << ",\"escalated\":"
     << (escalated ? "true" : "false") << ",\"signal_paths\":[";
  bool first = true;
  for (const std::string& p : alert.signal_paths) {
    if (!first) os << ",";
    os << "\"" << obs::JsonEscape(p) << "\"";
    first = false;
  }
  os << "]}";
  return os.str();
}

AlertEngine::AlertEngine(AlertEngineOptions opts) : opts_(opts) {
  if (opts_.min_hold_epochs == 0) opts_.min_hold_epochs = 1;
}

std::string AlertEngine::DedupKey(const Alert& alert) {
  return alert.source + "|" + alert.entity;
}

AlertEngineSummary AlertEngine::Observe(std::uint64_t epoch,
                                        const std::vector<Alert>& alerts) {
  AlertEngineSummary summary;
  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  last_epoch_ = epoch;
  observed_any_ = true;

  // Dedup the incoming snapshot: one condition per key, worst severity
  // wins (BuildAlerts can report e.g. several violations per entity).
  std::vector<std::pair<std::string, const Alert*>> incoming;
  for (const Alert& alert : alerts) {
    const std::string key = DedupKey(alert);
    auto it = std::find_if(incoming.begin(), incoming.end(),
                           [&](const auto& p) { return p.first == key; });
    if (it == incoming.end()) {
      incoming.emplace_back(key, &alert);
    } else if (static_cast<int>(alert.severity) >
               static_cast<int>(it->second->severity)) {
      it->second = &alert;
    }
  }

  std::vector<bool> seen(active_.size(), false);
  for (const auto& [key, alert] : incoming) {
    AlertRecord* rec = nullptr;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].key == key) {
        rec = &active_[i];
        seen[i] = true;
        break;
      }
    }
    if (rec) {
      rec->state = AlertState::kActive;
      rec->alert = *alert;
      rec->base_severity = alert->severity;
      if (rec->escalated) {
        rec->alert.severity = Escalate(rec->base_severity);
      }
      rec->last_seen_epoch = epoch;
      ++rec->observed_epochs;
      ++rec->consecutive_epochs;
      ++summary.repeated;
    } else {
      AlertRecord fresh;
      fresh.alert = *alert;
      fresh.state = AlertState::kFiring;
      fresh.key = key;
      fresh.first_epoch = fresh.last_seen_epoch = epoch;
      fresh.observed_epochs = fresh.consecutive_epochs = 1;
      fresh.base_severity = alert->severity;
      active_.push_back(std::move(fresh));
      seen.push_back(true);
      rec = &active_.back();
      ++summary.fired;
      if (FindResolved(key)) ++summary.refired;
      reg.GetCounter("hodor_alerts_fired_total",
                     {{"severity", AlertSeverityName(alert->severity)}},
                     "Alert conditions that started firing")
          .Increment();
    }
    if (opts_.escalation_threshold > 0 && !rec->escalated &&
        rec->consecutive_epochs >= opts_.escalation_threshold &&
        rec->base_severity != AlertSeverity::kCritical) {
      rec->escalated = true;
      rec->alert.severity = Escalate(rec->base_severity);
      ++summary.escalated;
      reg.GetCounter("hodor_alerts_escalated_total", {},
                     "Alerts promoted one severity level after repeated "
                     "failures")
          .Increment();
    }
  }

  // Resolution by absence, with the min-hold flap guard.
  std::vector<AlertRecord> still_active;
  still_active.reserve(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    AlertRecord& rec = active_[i];
    if (seen[i]) {
      still_active.push_back(std::move(rec));
      continue;
    }
    rec.consecutive_epochs = 0;
    if (epoch >= rec.last_seen_epoch + opts_.min_hold_epochs) {
      rec.state = AlertState::kResolved;
      rec.resolved_epoch = epoch;
      resolved_.push_front(std::move(rec));
      while (resolved_.size() > opts_.max_resolved) resolved_.pop_back();
      ++summary.resolved;
      reg.GetCounter("hodor_alerts_resolved_total", {},
                     "Alert conditions that resolved")
          .Increment();
    } else {
      ++summary.held;  // flap suppression: unobserved but within hold
      still_active.push_back(std::move(rec));
    }
  }
  active_ = std::move(still_active);

  reg.GetGauge("hodor_alerts_active", {},
               "Currently firing or active alert conditions")
      .Set(static_cast<double>(active_.size()));
  return summary;
}

const AlertRecord* AlertEngine::FindActive(const std::string& key) const {
  for (const AlertRecord& rec : active_) {
    if (rec.key == key) return &rec;
  }
  return nullptr;
}

const AlertRecord* AlertEngine::FindResolved(const std::string& key) const {
  for (const AlertRecord& rec : resolved_) {  // newest first
    if (rec.key == key) return &rec;
  }
  return nullptr;
}

std::string AlertEngine::ToJson() const {
  std::ostringstream os;
  os << "{\"active\":[";
  bool first = true;
  for (const AlertRecord& rec : active_) {
    if (!first) os << ",";
    os << rec.ToJson();
    first = false;
  }
  os << "],\"resolved\":[";
  first = true;
  for (const AlertRecord& rec : resolved_) {
    if (!first) os << ",";
    os << rec.ToJson();
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace hodor::core
