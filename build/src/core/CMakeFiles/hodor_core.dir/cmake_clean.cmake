file(REMOVE_RECURSE
  "CMakeFiles/hodor_core.dir/alerts.cc.o"
  "CMakeFiles/hodor_core.dir/alerts.cc.o.d"
  "CMakeFiles/hodor_core.dir/baselines/anomaly_detector.cc.o"
  "CMakeFiles/hodor_core.dir/baselines/anomaly_detector.cc.o.d"
  "CMakeFiles/hodor_core.dir/baselines/invariant_miner.cc.o"
  "CMakeFiles/hodor_core.dir/baselines/invariant_miner.cc.o.d"
  "CMakeFiles/hodor_core.dir/baselines/static_checker.cc.o"
  "CMakeFiles/hodor_core.dir/baselines/static_checker.cc.o.d"
  "CMakeFiles/hodor_core.dir/demand_check.cc.o"
  "CMakeFiles/hodor_core.dir/demand_check.cc.o.d"
  "CMakeFiles/hodor_core.dir/drain_check.cc.o"
  "CMakeFiles/hodor_core.dir/drain_check.cc.o.d"
  "CMakeFiles/hodor_core.dir/drain_protocol.cc.o"
  "CMakeFiles/hodor_core.dir/drain_protocol.cc.o.d"
  "CMakeFiles/hodor_core.dir/experiment.cc.o"
  "CMakeFiles/hodor_core.dir/experiment.cc.o.d"
  "CMakeFiles/hodor_core.dir/figure3_example.cc.o"
  "CMakeFiles/hodor_core.dir/figure3_example.cc.o.d"
  "CMakeFiles/hodor_core.dir/hardening.cc.o"
  "CMakeFiles/hodor_core.dir/hardening.cc.o.d"
  "CMakeFiles/hodor_core.dir/topology_check.cc.o"
  "CMakeFiles/hodor_core.dir/topology_check.cc.o.d"
  "CMakeFiles/hodor_core.dir/validator.cc.o"
  "CMakeFiles/hodor_core.dir/validator.cc.o.d"
  "libhodor_core.a"
  "libhodor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
