file(REMOVE_RECURSE
  "libhodor_telemetry.a"
)
