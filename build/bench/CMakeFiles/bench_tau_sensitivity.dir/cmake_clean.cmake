file(REMOVE_RECURSE
  "CMakeFiles/bench_tau_sensitivity.dir/bench_tau_sensitivity.cc.o"
  "CMakeFiles/bench_tau_sensitivity.dir/bench_tau_sensitivity.cc.o.d"
  "bench_tau_sensitivity"
  "bench_tau_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tau_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
