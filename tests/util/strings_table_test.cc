#include <gtest/gtest.h>

#include "util/strings.h"
#include "util/table.h"

namespace hodor::util {
namespace {

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<std::string>{"a"}, "-"), "a");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("ok"), "ok");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatPercent, RendersFractionAsPercent) {
  EXPECT_EQ(FormatPercent(0.992, 1), "99.2%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0, 1), "0.0%");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(StartsWith("hodor", "ho"));
  EXPECT_TRUE(StartsWith("hodor", ""));
  EXPECT_FALSE(StartsWith("hodor", "hodor!"));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, AddRowValuesFormatsMixedTypes) {
  TablePrinter t({"a", "b", "c"});
  t.AddRowValues("x", 42, 1.5);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(TablePrinter, ArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::logic_error);
}

TEST(TablePrinter, EmptyHeadersRejected) {
  EXPECT_THROW(TablePrinter({}), std::logic_error);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "x,y"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,\"x,y\"\n");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace hodor::util
