#include "telemetry/router_agent.h"

namespace hodor::telemetry {

namespace {

double Jitter(double true_rate, const AgentOptions& opts, util::Rng& rng) {
  if (true_rate < opts.zero_floor) return 0.0;
  return true_rate * (1.0 + rng.Uniform(-opts.rate_jitter, opts.rate_jitter));
}

}  // namespace

void ReportRouterSignals(const net::Topology& topo,
                         const net::GroundTruthState& state,
                         const flow::SimulationResult& sim,
                         net::NodeId node, const AgentOptions& opts,
                         util::Rng& rng, NetworkSnapshot& snapshot) {
  SignalFrame& frame = snapshot.frame();
  frame.SetNodeDrained(node, state.node_drained(node));
  if (topo.node(node).has_external_port) {
    frame.SetExtInRate(node, Jitter(sim.ext_in[node.value()], opts, rng));
    frame.SetExtOutRate(node, Jitter(sim.ext_out[node.value()], opts, rng));
  }

  // Dropped rate at this router: drops on its out-link egress queues.
  double dropped = 0.0;
  for (net::LinkId e : topo.OutLinks(node)) dropped += sim.dropped[e.value()];
  frame.SetDroppedRate(node, Jitter(dropped, opts, rng));

  for (net::LinkId e : topo.OutLinks(node)) {
    // Optical/admin status: light on unless the link is physically down.
    // A broken dataplane (§4.2) still shows kUp here.
    frame.SetStatus(e, state.link_up(e) ? LinkStatus::kUp : LinkStatus::kDown);
    frame.SetTxRate(e, Jitter(sim.carried[e.value()], opts, rng));
    frame.SetLinkDrain(e, state.link_drained(e));
  }
  for (net::LinkId e : topo.InLinks(node)) {
    frame.SetRxRate(e, Jitter(sim.carried[e.value()], opts, rng));
  }
}

}  // namespace hodor::telemetry
