file(REMOVE_RECURSE
  "CMakeFiles/util_matrix_test.dir/util/matrix_test.cc.o"
  "CMakeFiles/util_matrix_test.dir/util/matrix_test.cc.o.d"
  "util_matrix_test"
  "util_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
