// AlertEngine lifecycle: dedup, flap suppression, escalation, resolution —
// plus the provenance → alert mapping the pipeline observer uses.
#include <gtest/gtest.h>

#include "core/alerts.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"

namespace hodor::core {
namespace {

Alert MakeAlert(const std::string& source, const std::string& entity,
                AlertSeverity severity = AlertSeverity::kWarning) {
  Alert a;
  a.severity = severity;
  a.source = source;
  a.entity = entity;
  a.message = source + " fired for " + entity;
  return a;
}

obs::InvariantRecord Inv(const std::string& check,
                         const std::string& invariant,
                         obs::InvariantVerdict verdict) {
  obs::InvariantRecord rec;
  rec.check = check;
  rec.invariant = invariant;
  rec.residual = 0.3;
  rec.threshold = 0.02;
  rec.verdict = verdict;
  return rec;
}

// --- AlertsFromProvenance ---------------------------------------------------

TEST(AlertsFromProvenance, MapsVerdictsToSeverities) {
  obs::DecisionRecord record;
  record.epoch = 2;
  record.Add(Inv("demand", "ingress(SEAT)", obs::InvariantVerdict::kFail));
  record.Add(Inv("hardening", "r1-symmetry(A->B)",
                 obs::InvariantVerdict::kPass));  // flagged-and-repaired
  record.Add(Inv("hardening", "r2-conservation(LOSA)",
                 obs::InvariantVerdict::kSkipped));  // unrecoverable
  record.Add(Inv("topology", "link-state(C->D)",
                 obs::InvariantVerdict::kSkipped));  // no alert
  record.Add(Inv("hardening", "r1-symmetry(E->F)",
                 obs::InvariantVerdict::kFail));  // hardening fail → warning

  const auto alerts = AlertsFromProvenance(record);
  ASSERT_EQ(alerts.size(), 4u);
  // Severity-descending ordering.
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_GE(static_cast<int>(alerts[i - 1].severity),
              static_cast<int>(alerts[i].severity));
  }
  auto find = [&](const std::string& entity) -> const Alert* {
    for (const Alert& a : alerts) {
      if (a.entity == entity) return &a;
    }
    return nullptr;
  };
  ASSERT_NE(find("SEAT"), nullptr);
  EXPECT_EQ(find("SEAT")->severity, AlertSeverity::kCritical);
  EXPECT_EQ(find("SEAT")->source, "demand-check");
  ASSERT_NE(find("A->B"), nullptr);
  EXPECT_EQ(find("A->B")->severity, AlertSeverity::kInfo);
  EXPECT_EQ(find("A->B")->source, "hardening");
  ASSERT_NE(find("LOSA"), nullptr);
  EXPECT_EQ(find("LOSA")->severity, AlertSeverity::kWarning);
  ASSERT_NE(find("E->F"), nullptr);
  EXPECT_EQ(find("E->F")->severity, AlertSeverity::kWarning);
  EXPECT_EQ(find("C->D"), nullptr);  // non-hardening skips drop
}

TEST(AlertsFromProvenance, RepairsSuppressible) {
  obs::DecisionRecord record;
  record.Add(Inv("hardening", "r1-symmetry(A->B)",
                 obs::InvariantVerdict::kPass));
  AlertOptions opts;
  opts.report_repairs = false;
  EXPECT_TRUE(AlertsFromProvenance(record, opts).empty());
}

// --- AlertEngine ------------------------------------------------------------

TEST(AlertEngine, LifecycleFiringActiveResolved) {
  AlertEngine engine({.min_hold_epochs = 2});
  const Alert a = MakeAlert("demand-check", "SEAT");
  const std::string key = AlertEngine::DedupKey(a);
  EXPECT_EQ(key, "demand-check|SEAT");

  // Epoch 1: fires.
  auto s = engine.Observe(1, {a});
  EXPECT_EQ(s.fired, 1u);
  const AlertRecord* rec = engine.FindActive(key);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, AlertState::kFiring);
  EXPECT_EQ(rec->first_epoch, 1u);

  // Epoch 2: observed again → active.
  s = engine.Observe(2, {a});
  EXPECT_EQ(s.repeated, 1u);
  EXPECT_EQ(engine.FindActive(key)->state, AlertState::kActive);

  // Epoch 3: clean, but min_hold_epochs=2 keeps it held.
  s = engine.Observe(3, {});
  EXPECT_EQ(s.held, 1u);
  EXPECT_EQ(s.resolved, 0u);
  ASSERT_NE(engine.FindActive(key), nullptr);

  // Epoch 4: second clean epoch → resolved.
  s = engine.Observe(4, {});
  EXPECT_EQ(s.resolved, 1u);
  EXPECT_EQ(engine.FindActive(key), nullptr);
  const AlertRecord* resolved = engine.FindResolved(key);
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->state, AlertState::kResolved);
  EXPECT_EQ(resolved->resolved_epoch, 4u);
  EXPECT_EQ(resolved->observed_epochs, 2u);
}

TEST(AlertEngine, DedupMergesSameConditionWorstSeverityWins) {
  AlertEngine engine;
  // Same condition reported twice in one epoch at different severities.
  engine.Observe(1, {MakeAlert("demand-check", "SEAT", AlertSeverity::kInfo),
                     MakeAlert("demand-check", "SEAT",
                               AlertSeverity::kCritical)});
  EXPECT_EQ(engine.active().size(), 1u);
  const AlertRecord* rec = engine.FindActive("demand-check|SEAT");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->alert.severity, AlertSeverity::kCritical);
  EXPECT_EQ(rec->observed_epochs, 1u);  // one epoch, not two observations
}

TEST(AlertEngine, FlapIsSuppressedNotRefired) {
  AlertEngine engine({.min_hold_epochs = 2});
  const Alert a = MakeAlert("topology-check", "A->B");
  engine.Observe(1, {a});
  engine.Observe(2, {});   // held (1 quiet epoch < min_hold)
  auto s = engine.Observe(3, {a});  // flaps back while still held
  EXPECT_EQ(s.fired, 0u);  // no second page for the same condition
  EXPECT_EQ(s.repeated, 1u);
  const AlertRecord* rec = engine.FindActive("topology-check|A->B");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->first_epoch, 1u);  // identity preserved across the flap
  EXPECT_EQ(rec->observed_epochs, 2u);
}

TEST(AlertEngine, ResolvedConditionRefiresAsNewIncident) {
  AlertEngine engine({.min_hold_epochs = 1});
  const Alert a = MakeAlert("drain-check", "NYCM");
  engine.Observe(1, {a});
  auto s = engine.Observe(2, {});  // min_hold 1: resolves immediately
  EXPECT_EQ(s.resolved, 1u);
  s = engine.Observe(3, {a});
  EXPECT_EQ(s.fired, 1u);
  EXPECT_EQ(s.refired, 1u);  // flagged as a repeat offender
  const AlertRecord* rec = engine.FindActive("drain-check|NYCM");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->first_epoch, 3u);  // a fresh incident
}

TEST(AlertEngine, EscalatesAfterConsecutiveEpochs) {
  AlertEngine engine({.min_hold_epochs = 1, .escalation_threshold = 3});
  const Alert a = MakeAlert("hardening", "A->B", AlertSeverity::kInfo);
  engine.Observe(1, {a});
  engine.Observe(2, {a});
  auto s = engine.Observe(3, {a});  // third consecutive epoch → promote
  EXPECT_EQ(s.escalated, 1u);
  const AlertRecord* rec = engine.FindActive("hardening|A->B");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->escalated);
  EXPECT_EQ(rec->alert.severity, AlertSeverity::kWarning);
  EXPECT_EQ(rec->base_severity, AlertSeverity::kInfo);
}

TEST(AlertEngine, EscalationDisabledWhenThresholdZero) {
  AlertEngine engine({.min_hold_epochs = 1, .escalation_threshold = 0});
  const Alert a = MakeAlert("hardening", "A->B", AlertSeverity::kInfo);
  for (std::uint64_t e = 1; e <= 6; ++e) engine.Observe(e, {a});
  const AlertRecord* rec = engine.FindActive("hardening|A->B");
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->escalated);
  EXPECT_EQ(rec->alert.severity, AlertSeverity::kInfo);
}

TEST(AlertEngine, ResolvedHistoryIsCapped) {
  AlertEngineOptions opts;
  opts.min_hold_epochs = 1;
  opts.max_resolved = 2;
  AlertEngine engine(opts);
  std::uint64_t epoch = 0;
  for (int i = 0; i < 4; ++i) {
    engine.Observe(++epoch, {MakeAlert("demand-check",
                                       "R" + std::to_string(i))});
    engine.Observe(++epoch, {});
  }
  EXPECT_EQ(engine.resolved().size(), 2u);
  // Newest resolved first; oldest trimmed.
  EXPECT_EQ(engine.resolved().front().alert.entity, "R3");
  EXPECT_EQ(engine.FindResolved("demand-check|R0"), nullptr);
}

TEST(AlertEngine, EmitsLifecycleMetrics) {
  obs::MetricsRegistry reg;
  AlertEngineOptions opts;
  opts.min_hold_epochs = 1;
  opts.escalation_threshold = 2;
  opts.metrics = &reg;
  AlertEngine engine(opts);

  const Alert a = MakeAlert("demand-check", "SEAT", AlertSeverity::kWarning);
  engine.Observe(1, {a});
  engine.Observe(2, {a});  // escalates to critical
  engine.Observe(3, {});   // resolves

  const obs::Counter* fired =
      reg.FindCounter("hodor_alerts_fired_total", {{"severity", "WARNING"}});
  ASSERT_NE(fired, nullptr);
  EXPECT_DOUBLE_EQ(fired->value(), 1.0);
  const obs::Counter* escalated =
      reg.FindCounter("hodor_alerts_escalated_total");
  ASSERT_NE(escalated, nullptr);
  EXPECT_DOUBLE_EQ(escalated->value(), 1.0);
  const obs::Counter* resolved =
      reg.FindCounter("hodor_alerts_resolved_total");
  ASSERT_NE(resolved, nullptr);
  EXPECT_DOUBLE_EQ(resolved->value(), 1.0);
  const obs::Gauge* active = reg.FindGauge("hodor_alerts_active");
  ASSERT_NE(active, nullptr);
  EXPECT_DOUBLE_EQ(active->value(), 0.0);
}

TEST(AlertEngine, ToJsonIsValidAndRenderReadsWell) {
  AlertEngine engine({.min_hold_epochs = 1});
  engine.Observe(8, {MakeAlert("demand-check", "SEAT",
                               AlertSeverity::kCritical)});
  engine.Observe(9, {MakeAlert("demand-check", "SEAT",
                               AlertSeverity::kCritical)});
  const std::string json = engine.ToJson();
  EXPECT_TRUE(obs::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"active\":["), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"active\""), std::string::npos);

  const AlertRecord* rec = engine.FindActive("demand-check|SEAT");
  ASSERT_NE(rec, nullptr);
  const std::string line = rec->Render();
  EXPECT_NE(line.find("[CRITICAL] demand-check SEAT"), std::string::npos);
  EXPECT_NE(line.find("since epoch 8"), std::string::npos);
  EXPECT_NE(line.find("seen 2x"), std::string::npos);
}

}  // namespace
}  // namespace hodor::core
