// The static network model: routers, directed links, and external ports.
//
// A Topology describes the *designed* network — what exists physically.
// Dynamic conditions (links down, routers drained) live in
// net::GroundTruthState so one Topology can be shared across many simulated
// network conditions.
//
// Conventions:
//  - Physical links are bidirectional; AddBidirectionalLink creates two
//    directed Link records that point at each other via `reverse`.
//  - Capacities and rates are in Gbps throughout the repo.
//  - Each node may own one "external port": the attachment through which
//    traffic enters/leaves the WAN domain (e.g. toward a datacenter fabric).
//    Demand originates and terminates only at nodes with external ports.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "util/status.h"

namespace hodor::net {

struct Node {
  NodeId id;
  std::string name;
  // True when this node can source/sink external (domain-edge) traffic.
  bool has_external_port = false;
  // Capacity of the external attachment, Gbps. Meaningful only when
  // has_external_port.
  double external_capacity = 0.0;
};

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  // Capacity of this direction, Gbps.
  double capacity = 0.0;
  // IGP-style routing metric (>= 1).
  double metric = 1.0;
  // The opposite direction of the same physical link.
  LinkId reverse;
};

class Topology {
 public:
  explicit Topology(std::string name = "net") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction -------------------------------------------------------

  // Adds a router. Names must be unique and non-empty.
  NodeId AddNode(const std::string& name);

  // Gives `node` an external port with the given capacity (Gbps).
  void AddExternalPort(NodeId node, double capacity);

  // Adds a physical link as two directed links (a->b, b->a) with the same
  // capacity and metric. Returns the a->b direction; the other is its
  // reverse. Self-loops are disallowed.
  LinkId AddBidirectionalLink(NodeId a, NodeId b, double capacity,
                              double metric = 1.0);

  // --- lookup -------------------------------------------------------------

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  // Number of physical (bidirectional) links; link_count() == 2 * this.
  std::size_t physical_link_count() const { return links_.size() / 2; }

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  // Finds a node by name.
  util::StatusOr<NodeId> FindNode(const std::string& name) const;

  // Finds the directed link src->dst, if any.
  util::StatusOr<LinkId> FindLink(NodeId src, NodeId dst) const;

  // Directed links leaving / entering `node`.
  const std::vector<LinkId>& OutLinks(NodeId node) const;
  const std::vector<LinkId>& InLinks(NodeId node) const;

  // All NodeIds (dense 0..n-1), for range-for convenience.
  std::vector<NodeId> NodeIds() const;
  std::vector<LinkId> LinkIds() const;

  // Nodes that have an external port (demand endpoints).
  std::vector<NodeId> ExternalNodes() const;

  // "A->B" rendering of a directed link.
  std::string LinkName(LinkId id) const { return LinkNameRef(id); }

  // Allocation-free variant for hot provenance loops: the rendered names
  // are built as links are added and returned by reference, so concurrent
  // readers (the validator's sibling checks) never mutate shared state.
  const std::string& LinkNameRef(LinkId id) const;

  // Structural sanity: every link's reverse is consistent, endpoints valid.
  util::Status Validate() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
  std::unordered_map<std::string, NodeId> name_index_;
  // LinkNameRef cache, filled eagerly in AddBidirectionalLink (one entry
  // per directed link) so const lookups stay read-only and thread-safe.
  std::vector<std::string> link_name_cache_;
};

// Order-sensitive structural fingerprint: FNV-1a 64 over node names,
// external ports, and directed links (endpoints, capacity, metric).
// Two topologies built by the same construction sequence hash equal; any
// structural difference — renamed node, flipped capacity, reordered add —
// hashes different. Used by the generator tests (seeded determinism) and
// the fleet gate to pin "same topology" down to the bit level.
std::uint64_t StructuralDigest(const Topology& topo);

}  // namespace hodor::net
