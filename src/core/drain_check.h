// Hodor step 3 for the drain input (paper §4.3).
//
// Drain is semantically overloaded, so the check combines several sources:
//   - the input's drain set must match the routers' own intent signals
//     (catches the §2.2 "ignored drain" aggregation bug and aggregation
//     layers inventing drains);
//   - §4.3 case 1: a router that evidently cannot carry traffic (probes
//     fail, counters frozen, statuses up) but is not drained anywhere;
//   - §4.3 case 2: a drained router still carrying traffic — surfaced as a
//     warning, since pre-emptive maintenance drains legitimately look like
//     this;
//   - link-drain symmetry: both ends of a drained link must announce it.
#pragma once

#include <string>
#include <vector>

#include "core/hardened_state.h"
#include "net/topology.h"

namespace hodor::obs {
class MetricsRegistry;
struct DecisionRecord;
}  // namespace hodor::obs

namespace hodor::core {

enum class DrainViolationKind {
  kInputIgnoresDrain,   // router says drained, input says not
  kInputInventsDrain,   // input says drained, router says not
  kUndrainedDeadRouter, // case 1: dead but nobody drained it
  kDrainAsymmetry,      // link drain announced by one end only
};

struct DrainViolation {
  // Exactly one of node/link is meaningful, per kind.
  net::NodeId node;
  net::LinkId link;
  DrainViolationKind kind;

  std::string ToString(const net::Topology& topo) const;
};

struct DrainCheckResult {
  std::vector<DrainViolation> violations;
  // Case-2 style observations that deserve operator attention but are not
  // necessarily wrong (drained-but-active routers).
  std::vector<net::NodeId> warnings_drained_but_active;
  // Drain signals compared against the input (node intents with a known
  // hardened value, liveness checks, and physical-link drain agreements).
  std::size_t checked_signals = 0;
  // Signals that could not be compared (router intent / link drain unknown).
  std::size_t skipped_signals = 0;

  bool ok() const { return violations.empty(); }
};

// Declared input columns (DESIGN.md §12): the check reads the hardened
// drain facet (node drains with their liveness verdicts, link drains and
// their disagreement flags) and the node/link drain sets of the
// controller input. Clean on both → the incremental validator replays the
// prior verdict.
inline constexpr HardenedFacets kDrainCheckFacets{.drains = true};

struct DrainCheckOptions {
  // Confidence gating for the §4.3 case-1 violation (the boolean analogue
  // of the demand check's τ-scaling): "this router is dead" rests on every
  // probe failing, which is only as trustworthy as the probe coverage of
  // the router's links (HardenedDrain::liveness_confidence). Below this
  // floor the verdict demotes to skipped instead of firing — thin evidence
  // should widen the tolerance, not invent an outage. 0 restores
  // always-fire.
  double min_liveness_confidence = 0.25;

  // Observability: invariant/violation counters are emitted here
  // (nullptr → the process-global registry).
  obs::MetricsRegistry* metrics = nullptr;
};

// `provenance` (optional) receives one InvariantRecord per drain signal
// compared. Drain invariants are boolean, so residual is a 0/1 mismatch
// indicator against a threshold of 0; liveness records carry the probe
// coverage in their confidence field (source "r4-probes").
DrainCheckResult CheckDrains(const net::Topology& topo,
                             const HardenedState& hardened,
                             const std::vector<bool>& node_drained_input,
                             const std::vector<bool>& link_drained_input,
                             const DrainCheckOptions& opts,
                             obs::DecisionRecord* provenance = nullptr);

// Legacy signature: default options with an explicit metrics sink.
inline DrainCheckResult CheckDrains(
    const net::Topology& topo, const HardenedState& hardened,
    const std::vector<bool>& node_drained_input,
    const std::vector<bool>& link_drained_input,
    obs::MetricsRegistry* metrics = nullptr,
    obs::DecisionRecord* provenance = nullptr) {
  DrainCheckOptions opts;
  opts.metrics = metrics;
  return CheckDrains(topo, hardened, node_drained_input, link_drained_input,
                     opts, provenance);
}

}  // namespace hodor::core
