// Linear-system solvers used by the flow-conservation repair step (R2).
//
// The hardener forms the flow-conservation system M · x = b where M is
// (a sub-block of) the network incidence matrix restricted to the unknown
// counters and b collects the contribution of the trusted counters. The
// system is typically over- or exactly-determined with rank ≤ |V|−1; we
// provide an exact solver for uniquely determined systems and a least-squares
// solver (normal equations) for the over-determined / noisy case.
#pragma once

#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace hodor::util {

// Outcome of a solvability analysis of M x = b.
enum class SolveOutcome {
  kUnique,           // exactly one solution
  kUnderdetermined,  // infinitely many solutions (rank < #unknowns)
  kInconsistent,     // no solution (within tolerance)
};

struct SolveResult {
  SolveOutcome outcome;
  // Populated when outcome == kUnique (exact solve), or for least-squares
  // always (the minimiser of ||Mx-b||). Size == M.cols().
  std::vector<double> solution;
  // Residual ||M·solution − b||₂; near zero for consistent systems.
  double residual = 0.0;
};

// Solves M x = b by Gaussian elimination with partial pivoting.
// Detects underdetermined and inconsistent systems instead of returning
// garbage. `tol` is the magnitude below which pivots/residual entries are
// treated as zero.
StatusOr<SolveResult> SolveLinearSystem(const Matrix& m,
                                        const std::vector<double>& b,
                                        double tol = 1e-7);

// Least-squares solution via the normal equations MᵀM x = Mᵀb.
// Requires MᵀM nonsingular (columns of M linearly independent); otherwise
// returns kUnderdetermined with an empty solution.
StatusOr<SolveResult> SolveLeastSquares(const Matrix& m,
                                        const std::vector<double>& b,
                                        double tol = 1e-7);

}  // namespace hodor::util
