// Integration: the validation observatory on a live pipeline — the PR's
// acceptance scenario. A faulted Abilene run with three fault-class
// windows (router-signal, aggregation, external-input) must produce a
// detection-latency sample for every class, /query must answer the trust
// series at all three resolutions, and attaching the whole observatory
// must not move a single decision digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/validator.h"
#include "faults/scenario_catalog.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observatory.h"
#include "obs/serve/http.h"
#include "obs/serve/telemetry_server.h"
#include "test_util.h"
#include "util/logging.h"

namespace hodor {
namespace {

// One faulted Abilene run: catalog scenarios injected over three disjoint
// epoch windows, fault classes inferred by the engine from the hooks.
// When `observatory` is set, it rides along as the epoch sink.
std::vector<std::uint64_t> RunFaultedAbilene(obs::Observatory* observatory) {
  net::Topology topo = net::Abilene();
  faults::ScenarioCatalog catalog(topo);
  const faults::OutageScenario* counter =
      catalog.Find("counter-corruption").value();     // router-signal
  const faults::OutageScenario* stitch =
      catalog.Find("partial-topology-stitch").value();  // aggregation
  const faults::OutageScenario* partial =
      catalog.Find("partial-demand").value();         // external-input

  net::GroundTruthState state(topo);
  util::Rng demand_rng(8);
  flow::DemandMatrix demand = flow::GravityDemand(topo, demand_rng);
  flow::NormalizeToMaxUtilization(topo, 0.5, demand);

  obs::MetricsRegistry registry;
  controlplane::PipelineOptions popts;
  popts.collector.probes.false_loss_rate = 0.0;
  popts.metrics = &registry;
  controlplane::Pipeline pipeline(topo, popts, util::Rng(3));
  pipeline.Bootstrap(state, demand);
  core::ValidatorOptions vopts;
  vopts.metrics = &registry;
  core::Validator validator(topo, vopts);
  // Delta-aware wiring: healthy epochs take the incremental path, fault
  // windows force full recompute — so the observatory also sees the
  // change-tracking series (hodor_dirty_signals, incremental skips).
  pipeline.SetDeltaValidator(validator.AsDeltaPipelineValidator());

  if (observatory != nullptr) {
    pipeline.AddEpochSink([observatory](const controlplane::EpochResult& r) {
      observatory->ObserveAndPublish(r.epoch, r.metrics_mirror,
                                     r.decision.provenance, r.fault_classes,
                                     nullptr);
    });
  }

  std::vector<std::uint64_t> digests;
  for (std::uint64_t epoch = 0; epoch < 24; ++epoch) {
    const faults::OutageScenario* active = nullptr;
    if (epoch >= 4 && epoch < 7) active = counter;
    if (epoch >= 10 && epoch < 13) active = stitch;
    if (epoch >= 16 && epoch < 19) active = partial;
    const controlplane::EpochResult r =
        active != nullptr
            ? pipeline.RunEpoch(state, demand, active->snapshot_fault,
                                active->aggregation)
            : pipeline.RunEpoch(state, demand);
    digests.push_back(r.decision.provenance.CanonicalDigest());
  }
  pipeline.DrainSinks();
  return digests;
}

TEST(ObservatoryIntegration, FaultWindowsScoreEveryClassAndDigestsHold) {
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);

  obs::Observatory observatory;
  const std::vector<std::uint64_t> with = RunFaultedAbilene(&observatory);
  const std::vector<std::uint64_t> without = RunFaultedAbilene(nullptr);
  // The observatory is a pure observer: digest-for-digest identical.
  EXPECT_EQ(with, without);
  EXPECT_EQ(observatory.epochs_observed(), 24u);

  // Every fault class opened at least one episode and none went unflagged:
  // each class has a detection-latency sample (the histogram's count is
  // the "nonzero detection latency" acceptance signal).
  obs::DetectionLatencyTracker& tracker = observatory.detection();
  const char* kClassToDetector[][2] = {
      {"router-signal", "hardening"},
      {"aggregation", "topology"},
      {"external-input", "demand"},
  };
  for (const auto& [cls, detector] : kClassToDetector) {
    EXPECT_GE(tracker.episodes(cls), 1u) << cls;
    EXPECT_EQ(tracker.misses(cls), 0u) << cls;
    EXPECT_FALSE(tracker.Latencies(cls, detector).empty())
        << cls << " never flagged by " << detector;
    const obs::Histogram* hist = observatory.serving_registry().FindHistogram(
        "hodor_detection_latency_epochs",
        {{"fault_class", cls}, {"detector", detector}});
    ASSERT_NE(hist, nullptr) << cls;
    EXPECT_GE(hist->count(), 1u) << cls;
  }
  // The /slo document names every class.
  const std::string slo = tracker.SloJson();
  EXPECT_TRUE(obs::IsValidJson(slo)) << slo;
  for (const auto& [cls, detector] : kClassToDetector) {
    (void)detector;
    EXPECT_NE(slo.find(std::string("\"fault_class\":\"") + cls + "\""),
              std::string::npos)
        << cls;
  }

  // /query answers the signal-trust series at all three resolutions.
  obs::TelemetryServer server;
  observatory.PublishTo(server);
  for (const char* res : {"raw", "10", "100"}) {
    const auto req = obs::ParseHttpRequest(
        std::string("GET /query?series=hodor_signal_trust*&res=") + res +
        " HTTP/1.1\r\n");
    ASSERT_TRUE(req.has_value());
    const std::string body =
        testing::HttpBody(server.HandleRequest(*req));
    EXPECT_TRUE(obs::IsValidJson(body)) << res << ": " << body;
    EXPECT_NE(body.find("hodor_signal_trust"), std::string::npos)
        << "no trust series at res=" << res;
    EXPECT_NE(body.find("\"points\":[["), std::string::npos)
        << "no points at res=" << res;
  }
  // The incremental-validation series reached the store: the dashboard's
  // dirty-signal sparkline and hit-rate computation both draw from /query.
  for (const char* series :
       {"hodor_dirty_signals", "hodor_incremental_skips_total"}) {
    const auto req = obs::ParseHttpRequest(
        std::string("GET /query?series=") + series + "*&res=raw HTTP/1.1\r\n");
    ASSERT_TRUE(req.has_value());
    const std::string body = testing::HttpBody(server.HandleRequest(*req));
    EXPECT_TRUE(obs::IsValidJson(body)) << series << ": " << body;
    EXPECT_NE(body.find(series), std::string::npos) << series;
    EXPECT_NE(body.find("\"points\":[["), std::string::npos)
        << "no points for " << series;
  }
  // And the incremental path genuinely ran during the healthy epochs.
  const obs::Counter* harden_skips = observatory.serving_registry().FindCounter(
      "hodor_incremental_skips_total", {{"stage", "harden"}});
  ASSERT_NE(harden_skips, nullptr);
  EXPECT_GT(harden_skips->value(), 0.0);

  // The fault gauges closed with their windows: every class reads 0 now.
  for (const auto& [cls, detector] : kClassToDetector) {
    (void)detector;
    const obs::Gauge* active = observatory.serving_registry().FindGauge(
        "hodor_fault_active", {{"class", cls}});
    ASSERT_NE(active, nullptr) << cls;
    EXPECT_DOUBLE_EQ(active->value(), 0.0) << cls;
  }

  util::Logger::Instance().SetMinLevel(util::LogLevel::kInfo);
}

}  // namespace
}  // namespace hodor
