// The demand matrix D: D(i, j) is the rate (Gbps) of traffic entering the
// WAN at ingress router i destined to egress router j (paper §4.1, citing
// Tune & Roughan's traffic-matrix primer).
//
// D is indexed by NodeId over the full node set; entries are zero on the
// diagonal and for nodes without external ports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/ids.h"
#include "net/topology.h"

namespace hodor::flow {

class DemandMatrix {
 public:
  DemandMatrix() = default;
  // Zero demand over n nodes.
  explicit DemandMatrix(std::size_t node_count);

  std::size_t node_count() const { return n_; }
  // Number of entries (n^2); the paper's Abilene experiment has 144.
  std::size_t entry_count() const { return n_ * n_; }

  double At(net::NodeId src, net::NodeId dst) const;
  void Set(net::NodeId src, net::NodeId dst, double gbps);

  // Sum of all entries.
  double Total() const;

  // Σ_j D(i, j): all traffic entering the WAN at router i. This is the
  // quantity the paper's ingress invariant compares against external
  // ingress counters.
  double RowSum(net::NodeId i) const;

  // Σ_i D(i, j): all traffic leaving the WAN at router j (egress invariant).
  double ColSum(net::NodeId j) const;

  // Row and column sums for every node in one row-major pass. Fills
  // row_sums[i] = RowSum(i) and col_sums[j] = ColSum(j) with the same
  // per-entry accumulation order as the single-node accessors (so results
  // are bit-identical), but without ColSum's stride-n access pattern --
  // one call replaces O(n) strided column walks on the validation path.
  void Marginals(std::vector<double>& row_sums,
                 std::vector<double>& col_sums) const;

  // Multiplies every entry by `factor` (>= 0).
  void Scale(double factor);

  // Number of strictly positive entries.
  std::size_t PositiveEntryCount() const;

  // Off-diagonal (i, j) pairs with positive demand.
  std::vector<std::pair<net::NodeId, net::NodeId>> Pairs() const;

  // Largest absolute entry-wise difference to another matrix of equal size.
  double MaxAbsDifference(const DemandMatrix& other) const;

  bool SameShape(const DemandMatrix& other) const { return n_ == other.n_; }

  // True when every entry is bit-identical to `other` (same shape, same
  // bit patterns — stricter than MaxAbsDifference() == 0, which would call
  // -0.0 and +0.0 equal even though they render differently under %.17g).
  // This is the equality the incremental validator's input cache needs:
  // anything weaker could let a replayed verdict's canonical digest drift.
  bool BitwiseEqual(const DemandMatrix& other) const;

  // Multi-line rendering with node names taken from `topo`.
  std::string ToString(const net::Topology& topo, int precision = 1) const;

 private:
  std::size_t Index(net::NodeId src, net::NodeId dst) const;

  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace hodor::flow
