# Empty compiler generated dependencies file for flow_tm_generators_test.
# This may be replaced when dependencies are built.
