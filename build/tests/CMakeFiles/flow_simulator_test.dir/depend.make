# Empty dependencies file for flow_simulator_test.
# This may be replaced when dependencies are built.
