file(REMOVE_RECURSE
  "CMakeFiles/core_invariant_miner_test.dir/core/invariant_miner_test.cc.o"
  "CMakeFiles/core_invariant_miner_test.dir/core/invariant_miner_test.cc.o.d"
  "core_invariant_miner_test"
  "core_invariant_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_invariant_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
