// Minimal HTTP/1.1 message handling for the embedded telemetry server.
//
// Deliberately tiny and dependency-free, like obs/json.h: only what a
// read-only, Connection: close exporter needs — parse the request line and
// query string, render a response with Content-Length. Socket handling
// lives in telemetry_server.cc; everything here is pure string work so the
// parser is unit-testable without a network.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace hodor::obs {

struct HttpRequest {
  std::string method;  // "GET"
  std::string target;  // as sent: "/decisions?last=5"
  std::string path;    // "/decisions"
  // Decoded query parameters (last occurrence wins). Only %XX and '+'
  // decoding — enough for numeric and name-valued parameters.
  std::map<std::string, std::string> query;
};

// Parses the request line out of `head` (the bytes up to the blank line).
// Returns std::nullopt for anything that is not a well-formed
// "<METHOD> <target> HTTP/1.x" line. Headers are intentionally ignored:
// every endpoint is a read-only GET with no content negotiation.
std::optional<HttpRequest> ParseHttpRequest(std::string_view head);

// Percent-decodes `s` ('+' becomes space; bad escapes are kept verbatim).
std::string UrlDecode(std::string_view s);

// Canonical reason phrase for the handful of statuses the server emits.
const char* HttpStatusText(int status);

// Renders a full response: status line, Content-Type, Content-Length,
// Connection: close, blank line, body. `extra_headers` is zero or more
// complete "Header: value\r\n" lines inserted before the blank line
// (the telemetry server stamps Cache-Control: no-store through it).
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body,
                              std::string_view extra_headers = {});

}  // namespace hodor::obs
