#!/bin/sh
# Regenerates the committed experiment transcripts (run from anywhere).
set -e
cd "$(dirname "$0")/.."
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  "$b" 2>&1 | tee -a bench_output.txt
  echo "" >> bench_output.txt
done
