#include "telemetry/signal_catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "faults/snapshot_faults.h"
#include "test_util.h"

namespace hodor::telemetry {
namespace {

using net::LinkId;
using net::NodeId;

TEST(SignalCatalog, EnumeratesExpectedCountForAbilene) {
  const net::Topology topo = net::Abilene();
  const SignalCatalog catalog(topo);
  // Per node: drain + dropped + ext_in + ext_out (all 12 are external).
  // Per directed link: tx + status + link-drain at src, rx at dst.
  const std::size_t expected =
      topo.node_count() * 4 + topo.link_count() * 4;
  EXPECT_EQ(catalog.size(), expected);
}

TEST(SignalCatalog, NonExternalNodesHaveNoExternalCounters) {
  net::Topology topo;
  const NodeId a = topo.AddNode("a");
  const NodeId b = topo.AddNode("b");
  topo.AddExternalPort(a, 100.0);
  topo.AddBidirectionalLink(a, b, 10.0);
  const SignalCatalog catalog(topo);
  std::size_t ext_signals = 0;
  for (const auto& d : catalog.signals()) {
    if (d.kind == SignalKind::kExtInRate ||
        d.kind == SignalKind::kExtOutRate) {
      EXPECT_EQ(d.reporter, a);
      ++ext_signals;
    }
  }
  EXPECT_EQ(ext_signals, 2u);
}

TEST(SignalCatalog, PathsAreUniqueAndOpenConfigFlavoured) {
  const net::Topology topo = net::Abilene();
  const SignalCatalog catalog(topo);
  std::set<std::string> paths;
  for (const auto& d : catalog.signals()) {
    EXPECT_TRUE(paths.insert(d.path).second) << "duplicate: " << d.path;
    EXPECT_EQ(d.path.rfind("/devices/device[name=", 0), 0u) << d.path;
  }
}

TEST(SignalCatalog, FindByPathRoundTrips) {
  const net::Topology topo = net::Figure3Triangle();
  const SignalCatalog catalog(topo);
  for (const auto& d : catalog.signals()) {
    auto found = catalog.FindByPath(d.path);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value()->kind, d.kind);
    EXPECT_EQ(found.value()->reporter, d.reporter);
  }
  EXPECT_FALSE(catalog.FindByPath("/devices/device[name=zz]/x").ok());
}

TEST(SignalCatalog, ResolvesAgainstSnapshot) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 17);
  const auto snap = net.Snapshot();
  const SignalCatalog catalog(net.topo);
  // Every signal is present on an honest snapshot.
  EXPECT_EQ(catalog.PresentCount(snap), catalog.size());
  // Spot-check semantics: a tx-rate descriptor resolves to the TX counter.
  for (const auto& d : catalog.signals()) {
    if (d.kind == SignalKind::kTxRate) {
      EXPECT_EQ(catalog.Resolve(d, snap), snap.TxRate(d.link));
    }
    if (d.kind == SignalKind::kNodeDrain) {
      EXPECT_EQ(catalog.Resolve(d, snap), 0.0);  // nothing drained
    }
    if (d.kind == SignalKind::kLinkStatus) {
      EXPECT_EQ(catalog.Resolve(d, snap), 1.0);  // all links up
    }
  }
}

TEST(SignalCatalog, PresentCountDropsWhenRouterSilent) {
  testing::HealthyNetwork net(net::Figure3Triangle(), 17);
  const NodeId a = net.topo.FindNode("A").value();
  const auto snap = net.Snapshot(1, faults::UnresponsiveRouter(a));
  const SignalCatalog catalog(net.topo);
  // A reports 4 node signals + 2 out-links * 3 + 2 in-links * 1 = 12.
  EXPECT_EQ(catalog.PresentCount(snap), catalog.size() - 12);
}

TEST(SignalCatalog, EverySignalHasSomeRedundancy) {
  // The design-time review the paper describes: every chosen signal can be
  // corroborated by at least one redundancy source in this model.
  const net::Topology topo = net::Abilene();
  const SignalCatalog catalog(topo);
  EXPECT_EQ(catalog.CorroboratedCount(), catalog.size());
}

TEST(SignalKindName, AllNamed) {
  EXPECT_STREQ(SignalKindName(SignalKind::kTxRate), "tx-rate");
  EXPECT_STREQ(SignalKindName(SignalKind::kNodeDrain), "node-drain");
  EXPECT_STREQ(SignalKindName(SignalKind::kExtOutRate), "ext-out-rate");
}

}  // namespace
}  // namespace hodor::telemetry
