file(REMOVE_RECURSE
  "CMakeFiles/net_state_test.dir/net/state_test.cc.o"
  "CMakeFiles/net_state_test.dir/net/state_test.cc.o.d"
  "net_state_test"
  "net_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
