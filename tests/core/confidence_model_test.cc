// Property tests for the confidence scoring kernels (core/confidence.h):
// the guarantees the header documents — corroboration monotonicity, the
// repair-residual penalty, and the origin ordering — hold at the default
// ConfidenceModel and survive clamping at the extremes.
#include "core/confidence.h"

#include <gtest/gtest.h>

#include "core/hardening.h"
#include "net/topologies.h"
#include "telemetry/snapshot.h"

namespace hodor::core {
namespace {

class ConfidenceModelTest : public ::testing::Test {
 protected:
  ConfidenceModelTest() : topo_(net::Abilene()), snapshot_(topo_, 0) {}

  double Score(const HardenedRate& r, net::LinkId e = net::LinkId(0)) {
    const HardeningOptions opts;
    return RateConfidence(opts.confidence, opts.activity_floor,
                          opts.conservation_tau, snapshot_, e, r);
  }

  static HardenedRate Repaired(double residual) {
    HardenedRate r;
    r.value = 5.0;
    r.origin = RateOrigin::kRepaired;
    r.flagged = true;
    r.repair_source = RepairSource::kPairwise;
    r.repair_residual = residual;
    return r;
  }

  net::Topology topo_;
  telemetry::NetworkSnapshot snapshot_;
};

TEST_F(ConfidenceModelTest, OriginOrderingAtDefaults) {
  HardenedRate agreeing;
  agreeing.value = 5.0;
  agreeing.origin = RateOrigin::kAgreeing;

  HardenedRate witness;
  witness.value = 5.0;
  witness.origin = RateOrigin::kSingleWitness;
  witness.repair_source = RepairSource::kSingleWitness;

  HardenedRate unknown;  // origin kUnknown, no value

  // No probe or status signals on the bare snapshot: pure base scores.
  EXPECT_LT(Score(witness), Score(Repaired(0.0)));
  EXPECT_LT(Score(Repaired(0.0)), Score(agreeing));
  EXPECT_DOUBLE_EQ(Score(agreeing), 1.0);
  EXPECT_DOUBLE_EQ(Score(unknown), 0.0);
}

TEST_F(ConfidenceModelTest, ResidualPenaltyIsMonotoneAndCapped) {
  const HardeningOptions opts;
  const double tau_c = opts.conservation_tau;
  double prev = Score(Repaired(0.0));
  for (double rho : {0.25 * tau_c, 0.5 * tau_c, tau_c, 2.0 * tau_c}) {
    const double c = Score(Repaired(rho));
    EXPECT_LE(c, prev) << "residual " << rho << " raised the score";
    prev = c;
  }
  // The penalty saturates at ρ = τ_c: beyond it the score stays put.
  EXPECT_DOUBLE_EQ(Score(Repaired(tau_c)), Score(Repaired(10.0 * tau_c)));
  EXPECT_DOUBLE_EQ(Score(Repaired(tau_c)),
                   opts.confidence.repaired_base -
                       opts.confidence.residual_penalty);
}

TEST_F(ConfidenceModelTest, CorroborationNeverLowersAScore) {
  const net::LinkId e(0);
  const HardenedRate r = Repaired(0.0);
  const double bare = Score(r, e);

  // A successful probe on an active link corroborates the inferred rate.
  snapshot_.SetProbeResults({{e, true}});
  const double with_probe = Score(r, e);
  EXPECT_GE(with_probe, bare);
  EXPECT_GT(with_probe, bare);  // default probe_bonus is nonzero

  // An agreeing status report stacks on top of the probe.
  snapshot_.frame().SetStatus(e, telemetry::LinkStatus::kUp);
  const double with_both = Score(r, e);
  EXPECT_GE(with_both, with_probe);

  // A contradicting signal adds no bonus but never subtracts: a failed
  // probe on an active link just leaves the base score.
  snapshot_.Reset(0);
  snapshot_.SetProbeResults({{e, false}});
  EXPECT_DOUBLE_EQ(Score(r, e), bare);
}

TEST_F(ConfidenceModelTest, ScoresStayInUnitInterval) {
  ConfidenceModel extreme;
  extreme.repaired_base = 0.95;
  extreme.probe_bonus = 0.5;
  extreme.status_bonus = 0.5;
  const net::LinkId e(0);
  snapshot_.SetProbeResults({{e, true}});
  snapshot_.frame().SetStatus(e, telemetry::LinkStatus::kUp);
  const HardeningOptions opts;
  const double c = RateConfidence(extreme, opts.activity_floor,
                                  opts.conservation_tau, snapshot_, e,
                                  Repaired(0.0));
  EXPECT_DOUBLE_EQ(c, 1.0);

  extreme.repaired_base = 0.1;
  extreme.residual_penalty = 0.9;
  const double floor = RateConfidence(extreme, opts.activity_floor,
                                      opts.conservation_tau,
                                      telemetry::NetworkSnapshot(topo_, 0), e,
                                      Repaired(1.0));
  EXPECT_DOUBLE_EQ(floor, 0.0);
}

TEST_F(ConfidenceModelTest, ScalarConfidenceRequiresAndRewardsConservation) {
  // Engine-hardened state over a frame where node 0's equation closes
  // exactly: every incident rate 0, scalars 0 — in = out = 0.
  const HardeningOptions opts;
  for (net::LinkId e : topo_.LinkIds()) {
    snapshot_.frame().SetTxRate(e, 0.0);
    snapshot_.frame().SetRxRate(e, 0.0);
  }
  for (const net::Node& n : topo_.nodes()) {
    snapshot_.frame().SetDroppedRate(n.id, 0.0);
    snapshot_.frame().SetExtInRate(n.id, 0.0);
    snapshot_.frame().SetExtOutRate(n.id, 0.0);
  }
  const HardeningEngine engine(opts);
  HardenedState hs = engine.Harden(snapshot_);

  const net::NodeId v(0);
  EXPECT_DOUBLE_EQ(
      ScalarConfidence(opts.confidence, opts.conservation_tau, topo_, hs, v),
      1.0);

  // A missing required scalar zeroes the score outright.
  HardenedState no_dropped = hs;
  no_dropped.dropped[v.value()].reset();
  EXPECT_DOUBLE_EQ(ScalarConfidence(opts.confidence, opts.conservation_tau,
                                    topo_, no_dropped, v),
                   0.0);

  // Unknown incident rates make conservation incomputable: base score.
  HardenedState no_rate = hs;
  for (net::LinkId e : topo_.InLinks(v)) {
    no_rate.rates[e.value()].value.reset();
    no_rate.rates[e.value()].origin = RateOrigin::kUnknown;
    break;
  }
  EXPECT_DOUBLE_EQ(ScalarConfidence(opts.confidence, opts.conservation_tau,
                                    topo_, no_rate, v),
                   opts.confidence.scalar_base);

  // A loose-but-computable fit lands between base and full: poke ext_in so
  // the equation misses by half of τ_c.
  HardenedState drift = hs;
  // in = ext_in, out = 0 ⇒ relative residual is 1.0 for any positive
  // ext_in; use rates instead for a controlled miss: out_sum = dropped.
  drift.dropped[v.value()] = 0.0;
  drift.ext_in[v.value()] = 0.0;
  drift.ext_out[v.value()] = 0.0;
  // Make one inbound rate 1.0 and the matching outbound 1.0 - ε where the
  // relative miss is τ_c/2.
  const net::LinkId in = *topo_.InLinks(v).begin();
  const net::LinkId out = *topo_.OutLinks(v).begin();
  drift.rates[in.value()].value = 1.0;
  drift.rates[out.value()].value = 1.0 - opts.conservation_tau / 2.0;
  const double mid = ScalarConfidence(opts.confidence, opts.conservation_tau,
                                      topo_, drift, v);
  EXPECT_GT(mid, opts.confidence.scalar_base);
  EXPECT_LT(mid, 1.0);
}

}  // namespace
}  // namespace hodor::core
