// Baseline 2: statistical anomaly detection (paper §5 related work).
//
// Tracks an EWMA mean/variance per input feature and flags inputs whose
// z-score exceeds a threshold. As the paper notes, this detects *outliers
// against a signal's own history*, not disagreement with ground truth: a
// stale-but-plausible input sails through, and a legitimate disaster
// (atypical but true) gets flagged.
#pragma once

#include <string>
#include <vector>

#include "controlplane/controller_input.h"
#include "net/topology.h"
#include "util/stats.h"

namespace hodor::core::baselines {

struct AnomalyDetectorOptions {
  double ewma_alpha = 0.3;
  double z_threshold = 4.0;
  // Observations needed per feature before checks activate.
  std::size_t min_history = 5;
  // Features whose historical stddev is (near) zero flag any deviation
  // larger than this relative amount.
  double flat_signal_rel_tolerance = 0.02;
};

struct AnomalyResult {
  std::vector<std::string> anomalies;
  bool ok() const { return anomalies.empty(); }
};

class AnomalyDetector {
 public:
  AnomalyDetector(const net::Topology& topo, AnomalyDetectorOptions opts = {});

  // Folds an accepted input into the per-feature history.
  void Observe(const controlplane::ControllerInput& input);

  // Scores an input against history *without* updating it.
  AnomalyResult Check(const controlplane::ControllerInput& input) const;

 private:
  std::vector<double> Features(
      const controlplane::ControllerInput& input) const;
  std::string FeatureName(std::size_t i) const;

  const net::Topology* topo_;
  AnomalyDetectorOptions opts_;
  std::vector<util::Ewma> trackers_;
  std::size_t observed_ = 0;
};

}  // namespace hodor::core::baselines
