// hodor_fleet: many validation instances over one shared pool (DESIGN §13).
//
// Builds a fleet of independent pipelines — each with its own topology,
// seed, scenario schedule, and metrics registry — and runs them to
// completion in rounds over one util::ThreadPool, printing a per-instance
// scoreboard and serving /fleet + instance-labeled /metrics live.
//
//   ./build/examples/hodor_fleet
//   ./build/examples/hodor_fleet --instances=8 --mix=abilene,waxman100
//   ./build/examples/hodor_fleet --spec=fleet.spec --verify-standalone
//
// Flags:
//   --instances=N   fleet size (default 4)
//   --mix=a,b,...   topology rotation for generated specs (default
//                   abilene,waxman100,waxman400,hier1k); instance i gets
//                   mix[i % mix.size()], seed 100+i, and the i-th scenario
//                   from the catalog rotation
//   --epochs=N      epochs per instance (default 8)
//   --spec=PATH     instead of --instances/--mix, read one instance per
//                   line: `name topology seed epochs [scenario]`
//                   (# comments and blank lines skipped)
//   --verify-standalone   after the fleet run, re-run every spec
//                   standalone on this thread and compare the per-epoch
//                   digest streams; exit 1 on any mismatch (the
//                   --fleet-gate oracle)
//
// Set HODOR_THREADS=N for the shared pool width (default 1) and
// HODOR_SERVE_SECONDS=60 to keep /fleet and /dashboard up after the run.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "faults/scenario_catalog.h"
#include "fleet/fleet.h"
#include "net/topologies.h"
#include "obs/serve/telemetry_server.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

// The default mixed fleet: the acceptance mix from ISSUE/EXPERIMENTS E15.
const char* kDefaultMix = "abilene,waxman100,waxman400,hier1k";

// Scenario rotation for generated specs: one outage class per instance,
// plus a healthy control every 4th. Ids are stable catalog ids.
const char* kScenarioRotation[] = {"phantom-links",
                                   "partial-demand", "", ""};

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool LoadSpecFile(const std::string& path,
                  std::vector<hodor::fleet::InstanceSpec>* specs) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "--spec: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    hodor::fleet::InstanceSpec spec;
    if (!(ls >> spec.name)) continue;        // blank line
    if (spec.name[0] == '#') continue;       // comment
    if (!(ls >> spec.topology >> spec.seed >> spec.epochs)) {
      std::cerr << "--spec: malformed line: " << line
                << "\n  expected: name topology seed epochs [scenario]\n";
      return false;
    }
    ls >> spec.scenario;  // optional
    specs->push_back(std::move(spec));
  }
  if (specs->empty()) {
    std::cerr << "--spec: " << path << " defines no instances\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hodor;
  util::Logger::Instance().SetMinLevel(util::LogLevel::kError);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::size_t instances = 4;
  std::uint64_t epochs = 8;
  std::string mix_csv = kDefaultMix;
  std::string spec_path;
  bool verify_standalone = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--instances=", 0) == 0) {
      const int n = std::atoi(std::string(arg.substr(12)).c_str());
      if (n <= 0) {
        std::cerr << "--instances must be a positive integer\n";
        return 2;
      }
      instances = static_cast<std::size_t>(n);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      const int n = std::atoi(std::string(arg.substr(9)).c_str());
      if (n <= 0) {
        std::cerr << "--epochs must be a positive integer\n";
        return 2;
      }
      epochs = static_cast<std::uint64_t>(n);
    } else if (arg.rfind("--mix=", 0) == 0) {
      mix_csv = std::string(arg.substr(6));
    } else if (arg.rfind("--spec=", 0) == 0) {
      spec_path = std::string(arg.substr(7));
    } else if (arg == "--verify-standalone") {
      verify_standalone = true;
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nusage: hodor_fleet [--instances=N] [--mix=a,b,...]"
                   " [--epochs=N] [--spec=PATH] [--verify-standalone]\n";
      return 2;
    }
  }

  std::vector<fleet::InstanceSpec> specs;
  if (!spec_path.empty()) {
    if (!LoadSpecFile(spec_path, &specs)) return 2;
  } else {
    const std::vector<std::string> mix = SplitCsv(mix_csv);
    if (mix.empty()) {
      std::cerr << "--mix must name at least one topology\n";
      return 2;
    }
    constexpr std::size_t kRotation =
        sizeof(kScenarioRotation) / sizeof(kScenarioRotation[0]);
    for (std::size_t i = 0; i < instances; ++i) {
      fleet::InstanceSpec spec;
      spec.topology = mix[i % mix.size()];
      spec.name = spec.topology + "-" + std::to_string(i);
      spec.seed = 100 + i;
      spec.epochs = epochs;
      spec.scenario = kScenarioRotation[i % kRotation];
      specs.push_back(std::move(spec));
    }
  }

  fleet::FleetOptions fopts;
  fopts.threads = util::ThreadsFromEnv(1);
  fleet::FleetManager manager(fopts);
  for (const auto& spec : specs) manager.AddInstance(spec);

  obs::TelemetryServer server;
  const bool serving = server.Start();
  if (serving) {
    std::cout << "telemetry: " << server.url() << "  (GET /fleet for the "
              << "scoreboard, /metrics for instance-labeled series)\n";
  }

  // Rounds until every instance finishes; the scoreboard refreshes after
  // each round so an operator watching /fleet sees progress live.
  while (!g_stop_requested && manager.RunRound()) {
    if (serving) manager.PublishTo(server);
  }
  if (serving) manager.PublishTo(server);

  std::cout << "\nFleet: " << manager.instances().size() << " instances, "
            << manager.threads() << " pool thread(s), " << manager.rounds()
            << " rounds, " << manager.epochs_total() << " epochs, "
            << util::FormatDouble(manager.aggregate_epochs_per_sec(), 1)
            << " epochs/s aggregate\n\n";

  util::TablePrinter table({"instance", "topology", "nodes", "epochs",
                            "eps", "accept", "reject", "min trust", "rank",
                            "last digest"});
  for (const auto& instance : manager.instances()) {
    table.AddRowValues(
        instance->spec().name, instance->spec().topology,
        instance->topology().node_count(), instance->epochs_done(),
        util::FormatDouble(instance->epochs_per_sec(), 1),
        instance->accepts(), instance->rejects(),
        util::FormatDouble(instance->board().MinTrust(), 0), "-",
        instance->digests().empty()
            ? std::string("-")
            : util::FormatHex64(instance->digests().back()));
  }
  std::cout << table.ToString();

  int rc = 0;
  if (verify_standalone) {
    // The equivalence oracle behind check_build.sh --fleet-gate: every
    // instance's digest stream must be bit-identical to a fresh standalone
    // run of the same spec on this thread.
    std::cout << "\nverifying fleet digests against standalone runs...\n";
    for (const auto& instance : manager.instances()) {
      const std::vector<std::uint64_t> expected =
          fleet::StandaloneDigests(instance->spec());
      if (expected == instance->digests()) {
        std::cout << "  " << instance->spec().name << ": OK ("
                  << expected.size() << " epochs)\n";
      } else {
        rc = 1;
        std::cout << "  " << instance->spec().name
                  << ": DIGEST MISMATCH — fleet run is not isolated\n";
        for (std::size_t e = 0;
             e < std::max(expected.size(), instance->digests().size()); ++e) {
          const std::string fleet_d =
              e < instance->digests().size()
                  ? util::FormatHex64(instance->digests()[e])
                  : "<missing>";
          const std::string solo_d = e < expected.size()
                                         ? util::FormatHex64(expected[e])
                                         : "<missing>";
          if (fleet_d != solo_d) {
            std::cout << "    epoch " << e << ": fleet " << fleet_d
                      << " standalone " << solo_d << "\n";
          }
        }
      }
    }
    std::cout << (rc == 0 ? "fleet digests match standalone runs\n"
                          : "fleet digest verification FAILED\n");
  }

  if (serving) {
    if (const char* env = std::getenv("HODOR_SERVE_SECONDS")) {
      const int seconds = std::atoi(env);
      if (seconds > 0) {
        std::cout << "\nServing telemetry at " << server.url() << " for "
                  << seconds << "s (HODOR_SERVE_SECONDS, Ctrl-C to stop)"
                  << "..." << std::endl;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(seconds);
        while (!g_stop_requested &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    }
    server.Stop();
  }
  return rc;
}
