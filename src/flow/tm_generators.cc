#include "flow/tm_generators.h"

#include <vector>

#include "flow/simulator.h"
#include "net/state.h"

namespace hodor::flow {

DemandMatrix GravityDemand(const net::Topology& topo, util::Rng& rng,
                           const GravityOptions& opts) {
  HODOR_CHECK(opts.load_fraction > 0.0);
  DemandMatrix d(topo.node_count());
  const std::vector<net::NodeId> ext = topo.ExternalNodes();
  if (ext.size() < 2) return d;

  std::vector<double> mass(topo.node_count(), 0.0);
  double mass_total = 0.0;
  for (net::NodeId id : ext) {
    mass[id.value()] = rng.Pareto(1.0, opts.mass_alpha);
    mass_total += mass[id.value()];
  }
  HODOR_CHECK(mass_total > 0.0);

  double ext_capacity_sum = 0.0;
  for (net::NodeId id : ext) {
    ext_capacity_sum += topo.node(id).external_capacity;
  }
  const double target_total = opts.load_fraction * ext_capacity_sum / 2.0;

  // Unnormalised gravity weights, then scale to the target total.
  double weight_total = 0.0;
  for (net::NodeId i : ext) {
    for (net::NodeId j : ext) {
      if (i == j) continue;
      weight_total += mass[i.value()] * mass[j.value()];
    }
  }
  for (net::NodeId i : ext) {
    for (net::NodeId j : ext) {
      if (i == j) continue;
      const double w = mass[i.value()] * mass[j.value()] / weight_total;
      d.Set(i, j, w * target_total);
    }
  }
  return d;
}

DemandMatrix UniformDemand(const net::Topology& topo, double gbps_per_pair) {
  HODOR_CHECK(gbps_per_pair >= 0.0);
  DemandMatrix d(topo.node_count());
  const std::vector<net::NodeId> ext = topo.ExternalNodes();
  for (net::NodeId i : ext) {
    for (net::NodeId j : ext) {
      if (i != j) d.Set(i, j, gbps_per_pair);
    }
  }
  return d;
}

DemandMatrix BimodalDemand(const net::Topology& topo, util::Rng& rng,
                           double lo, double hi, double p_hi) {
  HODOR_CHECK(lo >= 0.0 && hi >= lo);
  DemandMatrix d(topo.node_count());
  for (net::NodeId i : topo.ExternalNodes()) {
    for (net::NodeId j : topo.ExternalNodes()) {
      if (i == j) continue;
      d.Set(i, j, rng.Bernoulli(p_hi) ? hi : lo);
    }
  }
  return d;
}

DemandMatrix HotspotDemand(const net::Topology& topo, util::Rng& rng,
                           double background_gbps, std::size_t hotspot_count,
                           double hotspot_gbps) {
  DemandMatrix d = UniformDemand(topo, background_gbps);
  const std::vector<net::NodeId> ext = topo.ExternalNodes();
  if (ext.size() < 2) return d;
  for (std::size_t h = 0; h < hotspot_count; ++h) {
    const net::NodeId i = ext[rng.Index(ext.size())];
    net::NodeId j = ext[rng.Index(ext.size())];
    while (j == i) j = ext[rng.Index(ext.size())];
    d.Set(i, j, d.At(i, j) + hotspot_gbps);
  }
  return d;
}

void NormalizeToExternalCapacity(const net::Topology& topo, double fraction,
                                 DemandMatrix& d) {
  HODOR_CHECK(fraction > 0.0);
  double worst_ratio = 0.0;
  for (net::NodeId i : topo.ExternalNodes()) {
    const double cap = topo.node(i).external_capacity;
    if (cap <= 0.0) continue;
    worst_ratio = std::max(worst_ratio, d.RowSum(i) / cap);
  }
  if (worst_ratio <= 0.0) return;
  d.Scale(fraction / worst_ratio);
}

void NormalizeToMaxUtilization(const net::Topology& topo,
                               double target_max_util, DemandMatrix& d) {
  HODOR_CHECK(target_max_util > 0.0);
  const net::GroundTruthState pristine(topo);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, pristine, d, plan);
  double max_util = 0.0;
  for (const net::Link& l : topo.links()) {
    max_util = std::max(max_util, sim.arriving[l.id.value()] / l.capacity);
  }
  if (max_util <= 0.0) return;
  d.Scale(target_max_util / max_util);
}

}  // namespace hodor::flow
