#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <utility>

#include "flow/tm_generators.h"
#include "net/hierarchical_wan.h"
#include "net/topologies.h"
#include "obs/json.h"
#include "obs/serve/telemetry_server.h"
#include "util/logging.h"
#include "util/strings.h"

namespace hodor::fleet {

namespace {

// Sparse matrices for the big generated families: a dense 400- or
// 1000-node matrix is not a realistic WAN input (same policy and keep
// ratio as the epoch-engine bench and live_pipeline).
bool WantsSparseDemand(const net::Topology& topo) {
  return topo.node_count() >= 100;
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

net::Topology TopologyForSpec(const InstanceSpec& spec) {
  if (spec.topology == "abilene") return net::Abilene();
  if (spec.topology == "geant") return net::GeantLike();
  if (spec.topology == "b4") return net::B4Like();
  util::Rng topo_rng(spec.seed);
  if (spec.topology == "waxman100") return net::Waxman(100, topo_rng);
  if (spec.topology == "waxman400") return net::Waxman(400, topo_rng);
  if (spec.topology == "hier400") {
    return net::HierarchicalWan(net::HierarchicalWanPreset(400), topo_rng);
  }
  if (spec.topology == "hier1k") {
    return net::HierarchicalWan(net::HierarchicalWanPreset(1000), topo_rng);
  }
  if (spec.topology == "hier10k") {
    return net::HierarchicalWan(net::HierarchicalWanPreset(10000), topo_rng);
  }
  HODOR_CHECK_MSG(false, "unknown fleet topology '" + spec.topology +
                             "' (abilene|geant|b4|waxman100|waxman400|"
                             "hier400|hier1k|hier10k)");
  return net::Abilene();  // unreachable
}

namespace {

// The instance's pipeline configuration. Intra-instance stages stay
// serial (num_threads = 1): the shared pool's unit of parallelism is the
// instance, and nesting pool.Run calls is not supported by the fork-join
// ThreadPool. exec_trace is off — N tracer rings for N instances would be
// pure overhead on the fleet path.
controlplane::PipelineOptions InstancePipelineOptions(
    obs::MetricsRegistry* registry) {
  controlplane::PipelineOptions opts;
  // IGP-style SPF keeps the program stage proportionate at hier1k/hier10k
  // scale — GreedyTe's k-shortest-paths on a 1000-node slice would drown
  // the fleet in one instance's controller (same call as bench_epoch_engine).
  opts.controller.algorithm = controlplane::RoutingAlgorithm::kShortestPath;
  opts.num_threads = 1;
  opts.threaded_sinks = false;
  opts.exec_trace = false;
  opts.metrics = registry;
  return opts;
}

core::ValidatorOptions InstanceValidatorOptions(
    obs::MetricsRegistry* registry) {
  core::ValidatorOptions opts;
  opts.hardening.num_threads = 1;
  opts.metrics = registry;
  return opts;
}

flow::DemandMatrix BaseDemand(const net::Topology& topo,
                              const InstanceSpec& spec) {
  util::Rng demand_rng(spec.seed);
  flow::DemandMatrix base = flow::GravityDemand(topo, demand_rng);
  if (WantsSparseDemand(topo)) {
    const auto pairs = base.Pairs();
    const double keep =
        std::min(1.0, 2.0 * static_cast<double>(topo.node_count()) /
                          static_cast<double>(pairs.size()));
    util::Rng sparsify_rng(spec.seed + 29);
    for (const auto& [i, j] : pairs) {
      if (sparsify_rng.Uniform(0.0, 1.0) > keep) base.Set(i, j, 0.0);
    }
  }
  flow::NormalizeToMaxUtilization(topo, spec.max_utilization, base);
  return base;
}

}  // namespace

FleetInstance::FleetInstance(InstanceSpec spec)
    : spec_(std::move(spec)),
      topo_(TopologyForSpec(spec_)),
      state_(topo_),
      base_demand_(BaseDemand(topo_, spec_)),
      catalog_(topo_),
      validator_(topo_, InstanceValidatorOptions(&registry_)),
      pipeline_(topo_, InstancePipelineOptions(&registry_),
                util::Rng(spec_.seed)) {
  if (!spec_.scenario.empty()) {
    auto found = catalog_.Find(spec_.scenario);
    HODOR_CHECK_MSG(found.ok(), "instance '" + spec_.name +
                                    "': unknown scenario '" + spec_.scenario +
                                    "'");
    scenario_ = found.value();
  }
  pipeline_.SetDeltaValidator(validator_.AsDeltaPipelineValidator());
  if (!spec_.record_path.empty()) {
    const util::Status opened = recorder_.Open(spec_.record_path, topo_);
    if (opened.ok()) {
      pipeline_.AddEpochSink(recorder_.Hook());
      recording_ = true;
    } else {
      HODOR_LOG(kWarning) << "fleet instance " << spec_.name
                          << ": recorder: " << opened.ToString();
    }
  }
  pipeline_.Bootstrap(state_, base_demand_);
  // Construction happens on the control thread; rounds run on pool
  // workers. Hand the registry to whichever thread mutates it next.
  registry_.ReleaseOwnerThread();
}

FleetInstance::~FleetInstance() { (void)Close(); }

util::Status FleetInstance::Close() {
  if (!recording_ || recorder_closed_) return util::Status::Ok();
  recorder_closed_ = true;
  return recorder_.Close();
}

std::size_t FleetInstance::RunEpochs(std::size_t count) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t ran = 0;
  while (ran < count && epochs_done_ < spec_.epochs) {
    const std::uint64_t epoch = epochs_done_;
    const bool faulted = scenario_ != nullptr && epoch >= spec_.fault_start &&
                         epoch < spec_.fault_end;
    if (scenario_ != nullptr && epoch == spec_.fault_start &&
        scenario_->setup) {
      scenario_->setup(state_);
    }
    if (scenario_ != nullptr) {
      // Explicit stamp: scenarios may inject via ground truth, which the
      // engine's hook-based inference cannot see.
      if (faulted) {
        pipeline_.SetFaultStamp(faults::ActiveFaultClasses(*scenario_));
      } else {
        pipeline_.ClearFaultStamp();
      }
    }

    // Per-epoch drift, a pure function of (seed, epoch): production-like
    // telemetry wobble that keeps the delta path honest, reproduced
    // exactly by StandaloneDigests.
    util::Rng drift(spec_.seed * 1000003 + epoch);
    flow::DemandMatrix demand = base_demand_;
    for (const auto& [i, j] : base_demand_.Pairs()) {
      demand.Set(i, j,
                 base_demand_.At(i, j) * (1.0 + drift.Uniform(-0.03, 0.03)));
    }

    const controlplane::EpochResult r = pipeline_.RunEpoch(
        state_, demand, faulted ? scenario_->snapshot_fault : nullptr,
        faulted ? scenario_->aggregation
                : controlplane::AggregationFaultHooks{});

    digests_.push_back(r.decision.provenance.CanonicalDigest());
    active_faults_ = r.fault_classes;
    if (r.decision.accept) {
      ++accepts_;
    } else {
      ++rejects_;
    }
    board_.ObserveEpoch(r.decision.provenance);
    detection_.ObserveEpoch(r.epoch, r.fault_classes, r.decision.provenance,
                            &registry_);
    board_.PublishGauges(&registry_);

    ++epochs_done_;
    ++ran;
  }
  seconds_ += Seconds(std::chrono::steady_clock::now() - t0);
  // Next round may land on a different pool worker; release the
  // debug-build thread binding so the hand-off is legal.
  registry_.ReleaseOwnerThread();
  return ran;
}

double FleetInstance::epochs_per_sec() const {
  if (seconds_ <= 0.0) return 0.0;
  return static_cast<double>(epochs_done_) / seconds_;
}

std::vector<std::uint64_t> StandaloneDigests(const InstanceSpec& spec) {
  InstanceSpec standalone = spec;
  standalone.record_path.clear();  // the oracle never re-records
  FleetInstance instance(std::move(standalone));
  while (!instance.done()) {
    instance.RunEpochs(instance.spec().epochs);
  }
  return instance.digests();
}

FleetManager::FleetManager(FleetOptions opts) : opts_(opts) {
  if (opts_.epochs_per_round == 0) opts_.epochs_per_round = 1;
  if (opts_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(opts_.threads);
  }
}

FleetInstance& FleetManager::AddInstance(InstanceSpec spec) {
  for (const auto& existing : instances_) {
    HODOR_CHECK_MSG(existing->spec().name != spec.name,
                    "duplicate fleet instance name: " + spec.name);
  }
  instances_.push_back(std::make_unique<FleetInstance>(std::move(spec)));
  return *instances_.back();
}

bool FleetManager::RunRound() {
  // Collect unfinished instances first so every pool task does real work.
  std::vector<FleetInstance*> active;
  active.reserve(instances_.size());
  for (const auto& instance : instances_) {
    if (!instance->done()) active.push_back(instance.get());
  }
  if (active.empty()) return false;

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t per_round = opts_.epochs_per_round;
  if (pool_ != nullptr) {
    pool_->Run(active.size(), [&](std::size_t i) {
      active[i]->RunEpochs(per_round);
    });
  } else {
    for (FleetInstance* instance : active) instance->RunEpochs(per_round);
  }
  round_seconds_ += Seconds(std::chrono::steady_clock::now() - t0);
  ++rounds_;

  // Rebuild the scoreboard registry: instances accumulate, so the merge
  // starts from empty each round (repeated MergeFrom of cumulative
  // registries would double-count counters).
  merged_.Reset();
  for (const auto& instance : instances_) {
    merged_.MergeFrom(instance->registry(),
                      {{"instance", instance->spec().name}});
  }

  for (const auto& instance : instances_) {
    if (!instance->done()) return true;
  }
  return false;
}

void FleetManager::RunAll() {
  while (RunRound()) {
  }
}

std::uint64_t FleetManager::epochs_total() const {
  std::uint64_t total = 0;
  for (const auto& instance : instances_) total += instance->epochs_done();
  return total;
}

double FleetManager::aggregate_epochs_per_sec() const {
  if (round_seconds_ <= 0.0) return 0.0;
  return static_cast<double>(epochs_total()) / round_seconds_;
}

std::string FleetManager::ScoreboardJson() const {
  // Laggard ranking: 1 = slowest instance by epoch rate (the one an
  // operator investigates first). Finished-vs-running does not matter —
  // the rate is wall-clock inside RunEpochs only.
  std::vector<const FleetInstance*> by_rate;
  by_rate.reserve(instances_.size());
  for (const auto& instance : instances_) by_rate.push_back(instance.get());
  std::sort(by_rate.begin(), by_rate.end(),
            [](const FleetInstance* a, const FleetInstance* b) {
              if (a->epochs_per_sec() != b->epochs_per_sec()) {
                return a->epochs_per_sec() < b->epochs_per_sec();
              }
              return a->spec().name < b->spec().name;
            });
  std::map<const FleetInstance*, std::size_t> rank;
  for (std::size_t i = 0; i < by_rate.size(); ++i) rank[by_rate[i]] = i + 1;

  std::ostringstream os;
  os << "{\"summary\":{\"instances\":" << instances_.size()
     << ",\"threads\":" << threads() << ",\"rounds\":" << rounds_
     << ",\"epochs_total\":" << epochs_total()
     << ",\"aggregate_epochs_per_sec\":"
     << obs::JsonNumber(aggregate_epochs_per_sec()) << "},\"instances\":[";
  bool first = true;
  for (const auto& instance : instances_) {
    if (!first) os << ",";
    first = false;
    const InstanceSpec& spec = instance->spec();
    os << "{\"name\":\"" << obs::JsonEscape(spec.name) << "\""
       << ",\"topology\":\"" << obs::JsonEscape(spec.topology) << "\""
       << ",\"nodes\":" << instance->topology().node_count()
       << ",\"seed\":" << spec.seed
       << ",\"scenario\":\"" << obs::JsonEscape(spec.scenario) << "\""
       << ",\"epochs_done\":" << instance->epochs_done()
       << ",\"epochs_target\":" << spec.epochs
       << ",\"done\":" << (instance->done() ? "true" : "false")
       << ",\"epochs_per_sec\":"
       << obs::JsonNumber(instance->epochs_per_sec())
       << ",\"accepts\":" << instance->accepts()
       << ",\"rejects\":" << instance->rejects()
       << ",\"min_trust\":" << obs::JsonNumber(instance->board().MinTrust())
       << ",\"active_faults\":[";
    bool first_fault = true;
    for (const std::string& fault : instance->active_faults()) {
      if (!first_fault) os << ",";
      first_fault = false;
      os << "\"" << obs::JsonEscape(fault) << "\"";
    }
    os << "],\"laggard_rank\":" << rank[instance.get()]
       << ",\"last_digest\":\""
       << (instance->digests().empty()
               ? ""
               : util::FormatHex64(instance->digests().back()))
       << "\",\"slo\":" << instance->detection().SloJson() << "}";
  }
  os << "]}";
  return os.str();
}

void FleetManager::PublishTo(obs::TelemetryServer& server) const {
  server.PublishFleet(ScoreboardJson());
  server.PublishMetrics(&merged_);
}

}  // namespace hodor::fleet
