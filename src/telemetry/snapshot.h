// A NetworkSnapshot is the comprehensive set of router signals gathered in
// one collection round (paper §3 step 1) — the raw material hardening works
// on. Accessors resolve the "two vantage points" of each signal:
// TxRate(e)/RxRate(e) are the two independent measurements of the rate on
// directed link e, StatusAtSrc/StatusAtDst the two views of a link's state.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "telemetry/signals.h"
#include "util/status.h"

namespace hodor::telemetry {

class NetworkSnapshot {
 public:
  NetworkSnapshot(const net::Topology& topo, std::uint64_t epoch);

  const net::Topology& topology() const { return *topo_; }
  std::uint64_t epoch() const { return epoch_; }

  // Mutable access used by agents/collector and by fault injection.
  RouterSignals& router(net::NodeId id);
  const RouterSignals& router(net::NodeId id) const;
  std::vector<RouterSignals>& routers() { return routers_; }
  const std::vector<RouterSignals>& routers() const { return routers_; }

  // --- resolved signal accessors (empty when missing / unresponsive) ------

  // TX counter for directed link e, as reported by e.src.
  std::optional<double> TxRate(net::LinkId e) const;
  // RX counter for directed link e, as reported by e.dst.
  std::optional<double> RxRate(net::LinkId e) const;

  // Status of directed link e as reported by its src / its dst. The dst
  // reports through the reverse direction's out-interface (same physical
  // link).
  std::optional<LinkStatus> StatusAtSrc(net::LinkId e) const;
  std::optional<LinkStatus> StatusAtDst(net::LinkId e) const;

  std::optional<bool> LinkDrainAtSrc(net::LinkId e) const;
  std::optional<bool> LinkDrainAtDst(net::LinkId e) const;

  std::optional<bool> NodeDrained(net::NodeId v) const;
  std::optional<double> DroppedRate(net::NodeId v) const;
  std::optional<double> ExtInRate(net::NodeId v) const;
  std::optional<double> ExtOutRate(net::NodeId v) const;

  // Probe results attached by the ProbeEngine (may be empty if probing is
  // disabled). Indexed lookup by directed link.
  void SetProbeResults(std::vector<ProbeResult> results);
  std::optional<bool> ProbeSucceeded(net::LinkId e) const;
  const std::vector<ProbeResult>& probe_results() const { return probes_; }

  // Count of signal values present across all routers (for reporting).
  std::size_t PresentSignalCount() const;

 private:
  const net::Topology* topo_;
  std::uint64_t epoch_;
  std::vector<RouterSignals> routers_;
  std::vector<ProbeResult> probes_;
  std::vector<std::optional<bool>> probe_by_link_;
};

}  // namespace hodor::telemetry
