# Empty dependencies file for net_graph_algorithms_test.
# This may be replaced when dependencies are built.
