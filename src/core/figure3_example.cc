#include "core/figure3_example.h"

namespace hodor::core {

Figure3Example::Figure3Example() : topo_(net::Figure3Triangle()) {
  a_ = topo_.FindNode("A").value();
  b_ = topo_.FindNode("B").value();
  c_ = topo_.FindNode("C").value();
  ab_ = topo_.FindLink(a_, b_).value();
  ba_ = topo_.link(ab_).reverse;
  bc_ = topo_.FindLink(b_, c_).value();
  cb_ = topo_.link(bc_).reverse;
  ac_ = topo_.FindLink(a_, c_).value();
  ca_ = topo_.link(ac_).reverse;
}

double Figure3Example::TrueRate(net::LinkId e) const {
  if (e == ab_) return kTrueRateAB;
  if (e == cb_) return 23.0;
  if (e == bc_) return 24.0;
  if (e == ca_) return 5.0;
  return 0.0;  // ba, ac idle
}

telemetry::NetworkSnapshot Figure3Example::HonestSnapshot() const {
  telemetry::NetworkSnapshot snap(topo_, 0);
  telemetry::SignalFrame& frame = snap.frame();
  auto fill = [&](net::NodeId v, double ext_in, double ext_out) {
    frame.SetNodeDrained(v, false);
    frame.SetDroppedRate(v, 0.0);
    frame.SetExtInRate(v, ext_in);
    frame.SetExtOutRate(v, ext_out);
    for (net::LinkId e : topo_.OutLinks(v)) {
      frame.SetStatus(e, telemetry::LinkStatus::kUp);
      frame.SetTxRate(e, TrueRate(e));
      frame.SetLinkDrain(e, false);
    }
    for (net::LinkId e : topo_.InLinks(v)) {
      frame.SetRxRate(e, TrueRate(e));
    }
  };
  fill(a_, 76.0, 5.0);
  fill(b_, 0.0, 75.0);
  fill(c_, 28.0, 24.0);
  return snap;
}

telemetry::NetworkSnapshot Figure3Example::FaultySnapshot(
    double faulty_tx) const {
  telemetry::NetworkSnapshot snap = HonestSnapshot();
  snap.frame().SetTxRate(ab_, faulty_tx);
  return snap;
}

flow::DemandMatrix Figure3Example::Demand() const {
  flow::DemandMatrix d(topo_.node_count());
  d.Set(a_, b_, 52.0);
  d.Set(a_, c_, 24.0);
  d.Set(c_, b_, 23.0);
  d.Set(c_, a_, 5.0);
  return d;
}

}  // namespace hodor::core
