#include "flow/simulator.h"

#include <gtest/gtest.h>

#include "flow/metrics.h"
#include "flow/tm_generators.h"
#include "net/topologies.h"

namespace hodor::flow {
namespace {

using net::LinkId;
using net::NodeId;

// Exact flow conservation at every router: in + ext_in == out + drops +
// ext_out. This is the invariant the paper's R2 redundancy builds on, so
// the simulator must satisfy it to machine precision.
void ExpectFlowConservation(const net::Topology& topo,
                            const SimulationResult& sim) {
  for (const net::Node& n : topo.nodes()) {
    double in = sim.ext_in[n.id.value()];
    for (LinkId e : topo.InLinks(n.id)) in += sim.carried[e.value()];
    double out = sim.ext_out[n.id.value()];
    for (LinkId e : topo.OutLinks(n.id)) {
      out += sim.carried[e.value()] + sim.dropped[e.value()];
    }
    EXPECT_NEAR(in, out, 1e-6) << "at " << n.name;
  }
}

TEST(Simulator, SingleFlowOnLine) {
  const net::Topology topo = net::Line(3);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 10.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);

  EXPECT_DOUBLE_EQ(sim.total_admitted_gbps, 10.0);
  EXPECT_DOUBLE_EQ(sim.total_delivered_gbps, 10.0);
  EXPECT_DOUBLE_EQ(sim.total_dropped_gbps, 0.0);
  EXPECT_DOUBLE_EQ(sim.unrouted_gbps, 0.0);
  EXPECT_DOUBLE_EQ(sim.ext_in[0], 10.0);
  EXPECT_DOUBLE_EQ(sim.ext_out[2], 10.0);
  EXPECT_DOUBLE_EQ(sim.delivered.At(NodeId(0), NodeId(2)), 10.0);
  // Both hops carry the full rate.
  const LinkId l01 = topo.FindLink(NodeId(0), NodeId(1)).value();
  const LinkId l12 = topo.FindLink(NodeId(1), NodeId(2)).value();
  EXPECT_DOUBLE_EQ(sim.carried[l01.value()], 10.0);
  EXPECT_DOUBLE_EQ(sim.carried[l12.value()], 10.0);
  ExpectFlowConservation(topo, sim);
}

TEST(Simulator, OverloadedLinkDropsExcess) {
  net::TopologyDefaults defs;
  defs.link_capacity = 10.0;
  const net::Topology topo = net::Line(3, defs);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 25.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);

  const LinkId l01 = topo.FindLink(NodeId(0), NodeId(1)).value();
  EXPECT_DOUBLE_EQ(sim.arriving[l01.value()], 25.0);
  EXPECT_DOUBLE_EQ(sim.carried[l01.value()], 10.0);
  EXPECT_DOUBLE_EQ(sim.dropped[l01.value()], 15.0);
  EXPECT_DOUBLE_EQ(sim.total_delivered_gbps, 10.0);
  ExpectFlowConservation(topo, sim);
}

TEST(Simulator, DownLinkBlackholesTraffic) {
  const net::Topology topo = net::Line(3);
  net::GroundTruthState state(topo);
  const LinkId l12 = topo.FindLink(NodeId(1), NodeId(2)).value();
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 10.0);
  // Plan computed before the failure still routes over the dead link.
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  state.SetLinkUp(l12, false);
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);

  EXPECT_DOUBLE_EQ(sim.total_delivered_gbps, 0.0);
  EXPECT_DOUBLE_EQ(sim.dropped[l12.value()], 10.0);  // blackholed at the link
  EXPECT_DOUBLE_EQ(sim.ext_in[0], 10.0);             // it did enter
  ExpectFlowConservation(topo, sim);
}

TEST(Simulator, BrokenDataplaneAlsoBlackholes) {
  const net::Topology topo = net::Line(3);
  net::GroundTruthState state(topo);
  const LinkId l01 = topo.FindLink(NodeId(0), NodeId(1)).value();
  state.SetLinkDataplaneOk(l01, false);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 4.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  EXPECT_DOUBLE_EQ(sim.total_delivered_gbps, 0.0);
  EXPECT_DOUBLE_EQ(sim.dropped[l01.value()], 4.0);
}

TEST(Simulator, UnroutedDemandNeverEnters) {
  const net::Topology topo = net::Line(3);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 10.0);
  const RoutingPlan empty_plan;
  const SimulationResult sim = SimulateFlow(topo, state, d, empty_plan);
  EXPECT_DOUBLE_EQ(sim.unrouted_gbps, 10.0);
  EXPECT_DOUBLE_EQ(sim.total_admitted_gbps, 0.0);
  EXPECT_DOUBLE_EQ(sim.ext_in[0], 0.0);
}

TEST(Simulator, DrainedIngressAdmitsNothing) {
  const net::Topology topo = net::Line(3);
  net::GroundTruthState state(topo);
  state.SetNodeDrained(NodeId(0), true);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 10.0);
  d.Set(NodeId(2), NodeId(0), 5.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  EXPECT_DOUBLE_EQ(sim.ext_in[0], 0.0);
  // Drain is *intent*: a drained router physically still forwards, so the
  // reverse flow (admitted at healthy ingress 2) is delivered. Routing
  // around drains is the controller's job, not the dataplane's.
  EXPECT_DOUBLE_EQ(sim.ext_in[2], 5.0);
  EXPECT_DOUBLE_EQ(sim.ext_out[0], 5.0);
  ExpectFlowConservation(topo, sim);
}

TEST(Simulator, ExternalCapacityCapsAdmission) {
  net::TopologyDefaults defs;
  defs.external_capacity = 6.0;
  const net::Topology topo = net::Line(3, defs);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(1), 8.0);
  d.Set(NodeId(0), NodeId(2), 4.0);  // row total 12 > 6
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  EXPECT_NEAR(sim.ext_in[0], 6.0, 1e-9);
  EXPECT_NEAR(sim.unrouted_gbps, 6.0, 1e-9);
  // Proportional shedding: 8->4, 4->2.
  EXPECT_NEAR(sim.delivered.At(NodeId(0), NodeId(1)), 4.0, 1e-9);
  EXPECT_NEAR(sim.delivered.At(NodeId(0), NodeId(2)), 2.0, 1e-9);
  ExpectFlowConservation(topo, sim);
}

TEST(Simulator, MultiPathSplitting) {
  const net::Topology topo = net::Ring(4);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 10.0);
  const RoutingPlan plan = EcmpRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  const LinkId via1 = topo.FindLink(NodeId(0), NodeId(1)).value();
  const LinkId via3 = topo.FindLink(NodeId(0), NodeId(3)).value();
  EXPECT_DOUBLE_EQ(sim.carried[via1.value()], 5.0);
  EXPECT_DOUBLE_EQ(sim.carried[via3.value()], 5.0);
  ExpectFlowConservation(topo, sim);
}

TEST(Simulator, CascadedCongestionConverges) {
  // Two flows share the first bottleneck; survivors then share a second.
  net::TopologyDefaults defs;
  defs.link_capacity = 10.0;
  const net::Topology topo = net::Line(4, defs);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(3), 30.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  // First link drops to 10; downstream links see exactly 10, no more drops.
  const LinkId l01 = topo.FindLink(NodeId(0), NodeId(1)).value();
  const LinkId l12 = topo.FindLink(NodeId(1), NodeId(2)).value();
  EXPECT_DOUBLE_EQ(sim.dropped[l01.value()], 20.0);
  EXPECT_DOUBLE_EQ(sim.arriving[l12.value()], 10.0);
  EXPECT_DOUBLE_EQ(sim.dropped[l12.value()], 0.0);
  EXPECT_DOUBLE_EQ(sim.total_delivered_gbps, 10.0);
  ExpectFlowConservation(topo, sim);
}

// Property sweep: conservation holds for random topologies, demands, and
// network conditions, with and without congestion.
class SimulatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorPropertyTest, FlowConservationAlwaysHolds) {
  util::Rng rng(GetParam());
  const net::Topology topo = net::Waxman(14, rng);
  net::GroundTruthState state(topo);
  // Random failures.
  for (LinkId e : topo.LinkIds()) {
    if (rng.Bernoulli(0.05)) state.SetLinkUp(e, false);
  }
  for (NodeId v : topo.NodeIds()) {
    if (rng.Bernoulli(0.05)) state.SetNodeDrained(v, true);
  }
  DemandMatrix d = GravityDemand(topo, rng);
  // Mix congested and uncongested regimes.
  NormalizeToMaxUtilization(topo, GetParam() % 2 == 0 ? 0.5 : 2.5, d);
  const RoutingPlan plan = GreedyTeRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);

  ExpectFlowConservation(topo, sim);
  // Carried never exceeds capacity; dropped never negative.
  for (const net::Link& l : topo.links()) {
    EXPECT_LE(sim.carried[l.id.value()], l.capacity * (1.0 + 1e-9));
    EXPECT_GE(sim.dropped[l.id.value()], -1e-12);
  }
  // Admitted = delivered + all drops.
  double dropped_total = 0.0;
  for (double x : sim.dropped) dropped_total += x;
  EXPECT_NEAR(sim.total_admitted_gbps,
              sim.total_delivered_gbps + dropped_total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Metrics, HealthyNetworkScoresClean) {
  const net::Topology topo = net::Abilene();
  const net::GroundTruthState state(topo);
  util::Rng rng(3);
  DemandMatrix d = GravityDemand(topo, rng);
  NormalizeToMaxUtilization(topo, 0.5, d);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  const NetworkMetrics m = ComputeMetrics(topo, d, sim);
  EXPECT_NEAR(m.max_link_utilization, 0.5, 1e-6);
  EXPECT_EQ(m.congested_link_count, 0u);
  EXPECT_NEAR(m.demand_satisfaction, 1.0, 1e-9);
  EXPECT_FALSE(IsMajorOutage(m));
}

TEST(Metrics, CongestionFlagsMajorOutage) {
  net::TopologyDefaults defs;
  defs.link_capacity = 5.0;
  const net::Topology topo = net::Line(3, defs);
  const net::GroundTruthState state(topo);
  DemandMatrix d(topo.node_count());
  d.Set(NodeId(0), NodeId(2), 50.0);
  const RoutingPlan plan = ShortestPathRouting(topo, d, net::AllLinks());
  const SimulationResult sim = SimulateFlow(topo, state, d, plan);
  const NetworkMetrics m = ComputeMetrics(topo, d, sim);
  EXPECT_GT(m.max_link_utilization, 1.0);
  EXPECT_EQ(m.congested_link_count, 1u);
  EXPECT_LT(m.demand_satisfaction, 0.2);
  EXPECT_TRUE(IsMajorOutage(m));
  EXPECT_FALSE(m.ToString().empty());
}

}  // namespace
}  // namespace hodor::flow
