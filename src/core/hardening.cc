#include "core/hardening.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "core/confidence.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/linear_solver.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace hodor::core {

namespace {

using net::LinkId;
using net::NodeId;
using net::Topology;
using telemetry::NetworkSnapshot;
using telemetry::PresenceBitset;

// --- single-entity kernels shared by the full and incremental paths --------
//
// Each of these is the exact per-entity body the full path's sharded scans
// execute, extracted so the incremental path re-runs the identical
// floating-point operations on just the touched entities. Bit-identity
// between the two paths rests on this sharing.

// The R1 verdict for one link pair: agreeing within τ_h → averaged value;
// anything else → flagged unknown (paper §4.1).
HardenedRate R1Outcome(const HardeningOptions& opts,
                       const std::optional<double>& tx,
                       const std::optional<double>& rx) {
  HardenedRate r;
  if (tx && rx && util::WithinRelativeTolerance(*tx, *rx, opts.tau_h)) {
    r.value = (*tx + *rx) / 2.0;
    r.origin = RateOrigin::kAgreeing;
  } else {
    r.flagged = true;
    r.origin = RateOrigin::kUnknown;
  }
  return r;
}

// Confidence scoring for one hardened rate (R3/R4's role in the repair
// process), delegated to the shared ConfidenceModel kernel so property
// tests and benches exercise exactly what the engine runs.
void ScoreRate(const HardeningOptions& opts, const NetworkSnapshot& snapshot,
               LinkId e, HardenedRate& r) {
  r.confidence = RateConfidence(opts.confidence, opts.activity_floor,
                                opts.conservation_tau, snapshot, e, r);
}

// Link-state fusion for one physical link; `e` must be the canonical
// direction (e < reverse). Writes both direction slots.
void FuseLinkPair(const HardeningOptions& opts, const NetworkSnapshot& snapshot,
                  HardenedState& out, LinkId e) {
  const Topology& topo = snapshot.topology();
  const net::Link& l = topo.link(e);

  double up_evidence = 0.0;
  double down_evidence = 0.0;

  // R1: the two ends' status reports.
  const auto s_src = snapshot.StatusAtSrc(e);
  const auto s_dst = snapshot.StatusAtDst(e);
  for (const auto& s : {s_src, s_dst}) {
    if (!s) continue;
    (*s == telemetry::LinkStatus::kUp ? up_evidence : down_evidence) +=
        opts.status_weight;
  }
  const bool disagreement = s_src && s_dst && *s_src != *s_dst;

  // R3: alternative signals — hardened rates. Traffic flowing is strong
  // evidence the link is up; both directions idle is weak down-evidence
  // (an up link may simply be unused).
  if (opts.use_alternative_signals) {
    bool any_active = false;
    bool all_known_idle = true;
    for (LinkId dir : {e, l.reverse}) {
      const auto& r = out.rates[dir.value()];
      if (!r.value) {
        all_known_idle = false;
        continue;
      }
      if (*r.value > opts.activity_floor) {
        any_active = true;
        all_known_idle = false;
      }
    }
    if (any_active) up_evidence += opts.rate_weight;
    else if (all_known_idle) down_evidence += 0.5 * opts.rate_weight;
  }

  // R4: manufactured signals — active probes exercise the dataplane.
  if (opts.use_probes) {
    for (LinkId dir : {e, l.reverse}) {
      const auto p = snapshot.ProbeSucceeded(dir);
      if (!p) continue;
      (*p ? up_evidence : down_evidence) += opts.probe_weight;
    }
  }

  HardenedLinkState verdict;
  verdict.status_disagreement = disagreement;
  const double total = up_evidence + down_evidence;
  if (total <= 0.0 || up_evidence == down_evidence) {
    verdict.verdict = LinkVerdict::kUnknown;
    verdict.confidence = 0.0;
  } else if (up_evidence > down_evidence) {
    verdict.verdict = LinkVerdict::kUp;
    verdict.confidence = up_evidence / total;
  } else {
    verdict.verdict = LinkVerdict::kDown;
    verdict.confidence = down_evidence / total;
  }
  out.links[e.value()] = verdict;
  out.links[l.reverse.value()] = verdict;
}

// Drain fusion for one router (§4.3 cases 1 and 2).
void FuseNodeDrain(const HardeningOptions& opts,
                   const NetworkSnapshot& snapshot, HardenedState& out,
                   NodeId v) {
  const Topology& topo = snapshot.topology();
  HardenedDrain d;
  d.node_drained = snapshot.NodeDrained(v);

  bool carrying = false;
  bool any_up_status = false;
  bool any_probe = false;
  bool any_probe_ok = false;
  std::size_t probe_slots = 0;
  std::size_t probes_present = 0;
  auto consider = [&](LinkId e) {
    const auto& r = out.rates[e.value()];
    if (r.value && *r.value > opts.activity_floor) carrying = true;
    const auto s = snapshot.StatusAtSrc(e);
    if (s && *s == telemetry::LinkStatus::kUp) any_up_status = true;
    ++probe_slots;
    const auto p = snapshot.ProbeSucceeded(e);
    if (p) {
      any_probe = true;
      ++probes_present;
      if (*p) any_probe_ok = true;
    }
  };
  for (LinkId e : topo.OutLinks(v)) consider(e);
  for (LinkId e : topo.InLinks(v)) consider(e);

  // §4.3 case 1: not marked drained, yet nothing gets through —
  // statuses are up while every probe fails and no counter moves.
  d.undrained_but_dead = !d.node_drained.value_or(false) && !carrying &&
                         any_up_status && any_probe && !any_probe_ok;
  // §4.3 case 2: marked drained but traffic is clearly flowing.
  d.drained_but_active = d.node_drained.value_or(false) && carrying;
  // Probe coverage behind case 1: "every probe failed" is only as strong
  // as the fraction of the router's links a probe actually exercised.
  d.liveness_confidence =
      probe_slots > 0
          ? static_cast<double>(probes_present) / static_cast<double>(probe_slots)
          : 0.0;
  out.drains[v.value()] = d;
}

// Link-drain fusion for one directed link.
void FuseLinkDrain(const NetworkSnapshot& snapshot, HardenedState& out,
                   LinkId e) {
  const std::size_t i = e.value();
  const auto d1 = snapshot.LinkDrainAtSrc(e);
  const auto d2 = snapshot.LinkDrainAtDst(e);
  if (!d1 && !d2) {
    out.link_drained[i] = std::nullopt;
    out.link_drain_disagreement[i] = false;
    return;
  }
  out.link_drained[i] = d1.value_or(false) || d2.value_or(false);
  // Link drains carry natural symmetry (§4.3): both ends must agree.
  out.link_drain_disagreement[i] = d1 && d2 && *d1 != *d2;
}

// --- bit-identity comparators ----------------------------------------------
//
// The incremental path's change summaries must be exact under the canonical
// digest's %.17g rendering, so doubles compare as bit patterns (-0.0 vs
// +0.0 would otherwise slip through).

bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}
bool SameBits(const std::optional<double>& a, const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a || SameBits(*a, *b);
}
bool RateValueEqual(const HardenedRate& a, const HardenedRate& b) {
  return SameBits(a.value, b.value);
}
bool RateEntryEqual(const HardenedRate& a, const HardenedRate& b) {
  return SameBits(a.value, b.value) && a.origin == b.origin &&
         a.flagged == b.flagged &&
         SameBits(a.rejected_value, b.rejected_value) &&
         a.repair_source == b.repair_source &&
         SameBits(a.repair_residual, b.repair_residual) &&
         SameBits(a.confidence, b.confidence);
}
bool LinkStateEqual(const HardenedLinkState& a, const HardenedLinkState& b) {
  return a.verdict == b.verdict && SameBits(a.confidence, b.confidence) &&
         a.status_disagreement == b.status_disagreement;
}
bool DrainEqual(const HardenedDrain& a, const HardenedDrain& b) {
  return a.node_drained == b.node_drained &&
         a.undrained_but_dead == b.undrained_but_dead &&
         a.drained_but_active == b.drained_but_active &&
         SameBits(a.liveness_confidence, b.liveness_confidence);
}

// Iterates the set bits of the word-wise union of equally sized bitsets.
template <typename Fn>
void ForEachUnionBit(std::initializer_list<const PresenceBitset*> sets,
                     Fn&& fn) {
  const std::size_t words = (*sets.begin())->words().size();
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t w = 0;
    for (const PresenceBitset* s : sets) w |= s->words()[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      w &= w - 1;
      fn((wi << 6) + static_cast<std::size_t>(b));
    }
  }
}

}  // namespace

std::string HardenedState::Summary() const {
  std::ostringstream os;
  os << "hardening: flagged=" << flagged_rate_count
     << " repaired=" << repaired_rate_count
     << " unknown=" << unknown_rate_count
     << " status_disagreements=" << status_disagreement_count;
  return os.str();
}

// Scratch buffers reused across Harden calls (zero steady-state
// allocation). Per-shard buffers are merged in shard index order, which —
// shards being contiguous ranges — reproduces the serial iteration order
// exactly, including floating-point accumulation order.
struct HardeningEngine::Workspace {
  // R1 candidate columns, one slot per directed link. After every
  // HardenInto these hold the *current* epoch's candidates: the full path
  // reassigns them wholesale, the incremental path patches the changed
  // slots — so the next incremental run can rebuild exact post-R1 state
  // for any link without another snapshot pass.
  std::vector<std::optional<double>> tx;
  std::vector<std::optional<double>> rx;

  // Repair (a): decisions collected per shard, applied in shard order.
  struct Decision {
    LinkId link;
    double value;
    std::optional<double> rejected;
    // The accepted candidate's conservation residual at its router — the
    // repair-provenance residual the ConfidenceModel penalizes.
    double residual = 0.0;
  };
  std::vector<std::vector<Decision>> shard_decisions;

  // Repair (b): per-shard (link, solved) pairs plus the per-link
  // accumulation columns they merge into.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> shard_solutions;
  std::vector<double> prop_sum;
  std::vector<double> prop_first;
  std::vector<std::uint32_t> prop_count;
  std::vector<std::uint32_t> prop_touched;

  // Repair (c): unknown-column index, one slot per directed link.
  std::vector<std::size_t> column_of;

  // --- delta cache (DESIGN.md §12) -----------------------------------------
  // The prior epoch's final hardened state, the anchor the incremental
  // path starts from. Valid only when `epoch`/`topo` line up with the
  // incoming FrameDelta; anything else falls back to the full path.
  struct DeltaCache {
    bool valid = false;
    std::uint64_t epoch = 0;
    const Topology* topo = nullptr;
    HardenedState prev;
  };
  DeltaCache cache;

  // Incremental-path scratch bitsets (sized per topology, reused).
  PresenceBitset rate_value_changed;  // final rate value bits moved
  PresenceBitset pair_touched;        // canonical link ids to re-fuse
  PresenceBitset node_touched;        // nodes whose drain fusion re-runs
  PresenceBitset ld_touched;          // directed links whose drain re-fuses
  PresenceBitset sc_touched;          // nodes whose scalar confidence re-scores
};

HardeningEngine::HardeningEngine(HardeningOptions opts)
    : opts_(opts), ws_(std::make_unique<Workspace>()) {}

HardeningEngine::~HardeningEngine() = default;

HardeningEngine::HardeningEngine(const HardeningEngine& other)
    : opts_(other.opts_), ws_(std::make_unique<Workspace>()) {}

HardeningEngine& HardeningEngine::operator=(const HardeningEngine& other) {
  if (this != &other) {
    opts_ = other.opts_;
    pool_.reset();
    ws_ = std::make_unique<Workspace>();
  }
  return *this;
}

HardeningEngine::HardeningEngine(HardeningEngine&&) noexcept = default;
HardeningEngine& HardeningEngine::operator=(HardeningEngine&&) noexcept =
    default;

util::ThreadPool* HardeningEngine::pool() const {
  if (opts_.num_threads <= 1) return nullptr;
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
  return pool_.get();
}

HardenedState HardeningEngine::Harden(const NetworkSnapshot& snapshot) const {
  HardenedState out;
  HardenInto(snapshot, out);
  return out;
}

void HardeningEngine::HardenInto(const NetworkSnapshot& snapshot,
                                 HardenedState& out) const {
  HardenInto(snapshot, out, nullptr, nullptr);
}

void HardeningEngine::HardenInto(const NetworkSnapshot& snapshot,
                                 HardenedState& out,
                                 const telemetry::FrameDelta* delta,
                                 HardenDelta* harden_delta) const {
  obs::StageSpan span(obs::Stage::kHarden, snapshot.epoch(), opts_.metrics,
                      opts_.trace);
  const Topology& topo = snapshot.topology();
  Workspace& ws = *ws_;

  HardenDelta hd;  // defaults: full recompute, everything changed
  const bool incremental = delta != nullptr && !delta->full &&
                           ws.cache.valid && ws.cache.topo == &topo &&
                           ws.cache.epoch == delta->base_epoch &&
                           delta->target_epoch == snapshot.epoch();
  if (incremental) {
    HardenIncremental(snapshot, *delta, out, hd);
  } else {
    HardenFull(snapshot, out);
  }

  for (auto& c :
       {&out.flagged_rate_count, &out.repaired_rate_count,
        &out.unknown_rate_count, &out.status_disagreement_count}) {
    *c = 0;
  }
  // One pass over the columns also folds the confidence means and the
  // per-source repair counts the metrics epilogue publishes — no extra
  // scans on the hot path.
  std::size_t repairs_by_source[5] = {0, 0, 0, 0, 0};
  double rate_conf_sum = 0.0;
  for (const HardenedRate& r : out.rates) {
    if (r.flagged) ++out.flagged_rate_count;
    if (r.origin == RateOrigin::kRepaired) ++out.repaired_rate_count;
    if (!r.value) ++out.unknown_rate_count;
    ++repairs_by_source[static_cast<std::size_t>(r.repair_source)];
    rate_conf_sum += r.confidence;
  }
  double link_conf_sum = 0.0;
  for (std::size_t e = 0; e < out.links.size(); ++e) {
    link_conf_sum += out.links[e].confidence;
    if (out.links[e].status_disagreement &&
        e < topo.link(LinkId(static_cast<std::uint32_t>(e))).reverse.value()) {
      ++out.status_disagreement_count;  // count each physical link once
    }
  }
  double scalar_conf_sum = 0.0;
  for (const double c : out.scalar_confidence) scalar_conf_sum += c;

  // Prime the cache for the next epoch's delta (both paths: a full run is
  // just as good an anchor as an incremental one).
  ws.cache.prev = out;
  ws.cache.epoch = snapshot.epoch();
  ws.cache.topo = &topo;
  ws.cache.valid = true;

  if (harden_delta) *harden_delta = hd;

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts_.metrics);
  reg.GetCounter("hodor_hardening_runs_total", {}, "Snapshots hardened")
      .Increment();
  if (hd.incremental) {
    reg.GetCounter("hodor_hardening_incremental_runs_total", {},
                   "Hardening runs served by the incremental path")
        .Increment();
    reg.GetCounter("hodor_incremental_skips_total", {{"stage", "harden"}},
                   "Stage evaluations served by the incremental path")
        .Increment();
  }
  reg.GetCounter("hodor_hardening_flagged_rates_total", {},
                 "Rate pairs flagged by R1 link symmetry")
      .Increment(static_cast<double>(out.flagged_rate_count));
  reg.GetCounter("hodor_hardening_repaired_rates_total", {},
                 "Rates recovered via R2 flow conservation")
      .Increment(static_cast<double>(out.repaired_rate_count));
  reg.GetCounter("hodor_hardening_unknown_rates_total", {},
                 "Rates left unrecoverable after R1-R4")
      .Increment(static_cast<double>(out.unknown_rate_count));
  reg.GetCounter("hodor_hardening_status_disagreements_total", {},
                 "Physical links whose two status reports disagreed")
      .Increment(static_cast<double>(out.status_disagreement_count));

  // Repair provenance: which redundancy mechanism fixed how many signals.
  for (const RepairSource s :
       {RepairSource::kPairwise, RepairSource::kPropagation,
        RepairSource::kLeastSquares, RepairSource::kSingleWitness}) {
    reg.GetCounter("hodor_repairs_total", {{"source", RepairSourceName(s)}},
                   "Hardened rates repaired, by redundancy source")
        .Increment(static_cast<double>(
            repairs_by_source[static_cast<std::size_t>(s)]));
  }
  // Per-epoch mean confidence by signal family: a histogram for the
  // distribution over epochs plus a gauge the /query store samples.
  static const std::vector<double> kConfidenceBuckets = {
      0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  const struct {
    const char* signal;
    double sum;
    std::size_t n;
  } families[] = {
      {"rate", rate_conf_sum, out.rates.size()},
      {"link", link_conf_sum, out.links.size()},
      {"scalar", scalar_conf_sum, out.scalar_confidence.size()},
  };
  for (const auto& f : families) {
    const double mean = f.n > 0 ? f.sum / static_cast<double>(f.n) : 0.0;
    reg.GetHistogram("hodor_confidence", {{"signal", f.signal}},
                     kConfidenceBuckets,
                     "Per-epoch mean hardened-signal confidence")
        .Observe(mean);
    reg.GetGauge("hodor_confidence_mean", {{"signal", f.signal}},
                 "Mean hardened-signal confidence, latest epoch")
        .Set(mean);
  }
}

void HardeningEngine::HardenFull(const NetworkSnapshot& snapshot,
                                 HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  const std::size_t links = topo.link_count();
  const std::size_t nodes = topo.node_count();
  out.rates.assign(links, HardenedRate{});
  out.links.assign(links, HardenedLinkState{});
  out.link_drained.assign(links, std::nullopt);
  out.link_drain_disagreement.assign(links, false);
  out.ext_in.assign(nodes, std::nullopt);
  out.ext_out.assign(nodes, std::nullopt);
  out.dropped.assign(nodes, std::nullopt);
  out.drains.assign(nodes, HardenedDrain{});
  out.scalar_confidence.assign(nodes, 0.0);

  // Node-scalar signals are single-sourced; hardened value == reported value
  // (when the router answered). Their trustworthiness comes from being used
  // *jointly* in conservation equations: a corrupt scalar surfaces as an
  // unresolvable inconsistency rather than silently poisoning repairs.
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const NodeId v(i);
    out.ext_in[i] = snapshot.ExtInRate(v);
    out.ext_out[i] = snapshot.ExtOutRate(v);
    out.dropped[i] = snapshot.DroppedRate(v);
  }

  HardenRates(snapshot, out);
  HardenLinkStates(snapshot, out);
  HardenDrains(snapshot, out);
  ScoreRateConfidence(snapshot, out);
  ScoreScalarConfidence(snapshot, out);
}

void HardeningEngine::HardenIncremental(const NetworkSnapshot& snapshot,
                                        const telemetry::FrameDelta& delta,
                                        HardenedState& out,
                                        HardenDelta& hd) const {
  const Topology& topo = snapshot.topology();
  const std::size_t links = topo.link_count();
  const std::size_t nodes = topo.node_count();
  Workspace& ws = *ws_;
  const HardenedState& prev = ws.cache.prev;
  out = prev;  // start from last epoch's verdicts; redo only what moved

  hd.incremental = true;
  hd.rates_changed = false;
  hd.links_changed = false;
  hd.drains_changed = false;
  hd.scalars_changed = false;

  // --- node scalars (single-sourced: hardened == reported) -----------------
  // The frame delta is exact, so every set bit is a real change.
  auto apply_scalars = [&](const PresenceBitset& changed, auto read,
                           std::vector<std::optional<double>>& col) {
    telemetry::ForEachSetBit(changed, [&](std::size_t i) {
      col[i] = read(NodeId(static_cast<std::uint32_t>(i)));
      hd.scalars_changed = true;
    });
  };
  apply_scalars(delta.ext_in,
                [&](NodeId v) { return snapshot.ExtInRate(v); }, out.ext_in);
  apply_scalars(delta.ext_out,
                [&](NodeId v) { return snapshot.ExtOutRate(v); }, out.ext_out);
  apply_scalars(delta.dropped,
                [&](NodeId v) { return snapshot.DroppedRate(v); }, out.dropped);

  // --- R1 rescan over changed link pairs ------------------------------------
  // prev.rates[i].flagged marks last epoch's repair working set F (R1
  // leaves exactly the non-agreeing pairs flagged; repairs never clear the
  // flag). Every repair equation reads only F's candidates, the rates of
  // links incident to F's endpoint routers N(F), and N(F)'s scalars — so
  // repairs can be skipped wholesale when none of those inputs moved and F
  // itself is unchanged, with every F link keeping its prior verdict.
  auto node_adjacent_to_F = [&](NodeId v) {
    for (LinkId e : topo.OutLinks(v)) {
      if (prev.rates[e.value()].flagged) return true;
    }
    for (LinkId e : topo.InLinks(v)) {
      if (prev.rates[e.value()].flagged) return true;
    }
    return false;
  };

  ws.rate_value_changed.Resize(links);
  bool repairs_dirty = false;
  ForEachUnionBit({&delta.tx, &delta.rx}, [&](std::size_t i) {
    const LinkId e(static_cast<std::uint32_t>(i));
    ws.tx[i] = snapshot.TxRate(e);
    ws.rx[i] = snapshot.RxRate(e);
    HardenedRate nr = R1Outcome(opts_, ws.tx[i], ws.rx[i]);
    if (nr.flagged || prev.rates[i].flagged) {
      // The link enters, leaves, or moves within the repair working set:
      // repair outcomes may differ, so the repair chain must re-run.
      repairs_dirty = true;
      return;  // rates rebuilt wholesale on the repair path below
    }
    // Agreeing in both epochs: the final value is the R1 average and the
    // confidence pass pins it at the model's agreeing score.
    nr.confidence = opts_.confidence.agreeing;
    if (!RateValueEqual(nr, prev.rates[i])) ws.rate_value_changed.Set(i);
    if (!RateEntryEqual(nr, prev.rates[i])) hd.rates_changed = true;
    out.rates[i] = nr;
  });

  if (!repairs_dirty && prev.flagged_rate_count > 0) {
    // F unchanged and its candidates untouched — but repairs also read the
    // neighbourhood: conservation at N(F) routers uses every incident link
    // rate and the routers' own scalars.
    telemetry::ForEachSetBit(ws.rate_value_changed, [&](std::size_t i) {
      const net::Link& l = topo.link(LinkId(static_cast<std::uint32_t>(i)));
      if (node_adjacent_to_F(l.src) || node_adjacent_to_F(l.dst)) {
        repairs_dirty = true;
      }
    });
    auto scalar_near_F = [&](const PresenceBitset& changed) {
      telemetry::ForEachSetBit(changed, [&](std::size_t i) {
        if (node_adjacent_to_F(NodeId(static_cast<std::uint32_t>(i)))) {
          repairs_dirty = true;
        }
      });
    };
    scalar_near_F(delta.ext_in);
    scalar_near_F(delta.ext_out);
    scalar_near_F(delta.dropped);
  }

  if (repairs_dirty) {
    // Rebuild exact post-R1 state for every link from the maintained
    // candidate columns, then re-run the repair chain verbatim — it
    // consumes the same post-R1 state and scalars the full path would, so
    // the outcome is bit-identical.
    for (std::size_t i = 0; i < links; ++i) {
      out.rates[i] = R1Outcome(opts_, ws.tx[i], ws.rx[i]);
    }
    RunRateRepairs(snapshot, out);
    ScoreRateConfidence(snapshot, out);
    hd.rates_changed = false;
    ws.rate_value_changed.Resize(links);
    for (std::size_t i = 0; i < links; ++i) {
      if (!RateValueEqual(out.rates[i], prev.rates[i])) {
        ws.rate_value_changed.Set(i);
      }
      if (!RateEntryEqual(out.rates[i], prev.rates[i])) {
        hd.rates_changed = true;
      }
    }
  } else if (prev.flagged_rate_count > 0) {
    // Repairs skipped: every F link keeps its prior value (including its
    // repair provenance), but a probe or status flip still moves its
    // corroboration score.
    ForEachUnionBit({&delta.probe, &delta.status}, [&](std::size_t i) {
      if (!prev.rates[i].flagged) return;  // agreeing: confidence pinned
      const LinkId e(static_cast<std::uint32_t>(i));
      ScoreRate(opts_, snapshot, e, out.rates[i]);
      if (!RateEntryEqual(out.rates[i], prev.rates[i])) {
        hd.rates_changed = true;
      }
    });
  }

  // --- node-scalar confidence -----------------------------------------------
  // A node's scalar confidence reads its own scalars plus every incident
  // final rate value; re-score exactly where either moved. The result
  // lands in the scalars facet so the demand check's cached verdict is
  // invalidated whenever its effective tolerances would move.
  ws.sc_touched.Resize(nodes);
  auto touch_scalar_node = [&](std::size_t i) { ws.sc_touched.Set(i); };
  telemetry::ForEachSetBit(delta.ext_in, touch_scalar_node);
  telemetry::ForEachSetBit(delta.ext_out, touch_scalar_node);
  telemetry::ForEachSetBit(delta.dropped, touch_scalar_node);
  telemetry::ForEachSetBit(ws.rate_value_changed, [&](std::size_t i) {
    const net::Link& l = topo.link(LinkId(static_cast<std::uint32_t>(i)));
    ws.sc_touched.Set(l.src.value());
    ws.sc_touched.Set(l.dst.value());
  });
  telemetry::ForEachSetBit(ws.sc_touched, [&](std::size_t i) {
    const NodeId v(static_cast<std::uint32_t>(i));
    out.scalar_confidence[i] = ScalarConfidence(
        opts_.confidence, opts_.conservation_tau, topo, out, v);
    if (!SameBits(out.scalar_confidence[i], prev.scalar_confidence[i])) {
      hd.scalars_changed = true;
    }
  });

  // --- link-state fusion over touched physical pairs ------------------------
  // A pair's verdict reads both directions' statuses, probes, and final
  // rate values; re-fuse when any of those moved on either direction.
  ws.pair_touched.Resize(links);
  ForEachUnionBit({&delta.status, &delta.probe, &ws.rate_value_changed},
                  [&](std::size_t i) {
                    const net::Link& l =
                        topo.link(LinkId(static_cast<std::uint32_t>(i)));
                    ws.pair_touched.Set(
                        std::min<std::size_t>(i, l.reverse.value()));
                  });
  telemetry::ForEachSetBit(ws.pair_touched, [&](std::size_t i) {
    FuseLinkPair(opts_, snapshot, out, LinkId(static_cast<std::uint32_t>(i)));
    if (!LinkStateEqual(out.links[i], prev.links[i])) hd.links_changed = true;
  });

  // --- drain fusion over touched routers ------------------------------------
  // A router's drain verdict reads its own intent plus rate/status/probe
  // of every incident directed link (out and in).
  ws.node_touched.Resize(nodes);
  ForEachUnionBit({&delta.status, &delta.probe, &ws.rate_value_changed},
                  [&](std::size_t i) {
                    const net::Link& l =
                        topo.link(LinkId(static_cast<std::uint32_t>(i)));
                    ws.node_touched.Set(l.src.value());
                    ws.node_touched.Set(l.dst.value());
                  });
  telemetry::ForEachSetBit(delta.node_drain, [&](std::size_t i) {
    ws.node_touched.Set(i);
  });
  telemetry::ForEachSetBit(ws.node_touched, [&](std::size_t i) {
    const NodeId v(static_cast<std::uint32_t>(i));
    FuseNodeDrain(opts_, snapshot, out, v);
    if (!DrainEqual(out.drains[i], prev.drains[i])) hd.drains_changed = true;
  });

  // --- link drains ----------------------------------------------------------
  // Each directed slot reads its own and its reverse's drain signal.
  ws.ld_touched.Resize(links);
  telemetry::ForEachSetBit(delta.link_drain, [&](std::size_t i) {
    const net::Link& l = topo.link(LinkId(static_cast<std::uint32_t>(i)));
    ws.ld_touched.Set(i);
    ws.ld_touched.Set(l.reverse.value());
  });
  telemetry::ForEachSetBit(ws.ld_touched, [&](std::size_t i) {
    const LinkId e(static_cast<std::uint32_t>(i));
    FuseLinkDrain(snapshot, out, e);
    if (out.link_drained[i] != prev.link_drained[i] ||
        out.link_drain_disagreement[i] != prev.link_drain_disagreement[i]) {
      hd.drains_changed = true;
    }
  });
}

void HardeningEngine::ScoreRateConfidence(const NetworkSnapshot& snapshot,
                                          HardenedState& out) const {
  // Each link scores alone, so the scan shards freely.
  util::ParallelFor(pool(), snapshot.topology().link_count(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const LinkId e(static_cast<std::uint32_t>(i));
                        ScoreRate(opts_, snapshot, e, out.rates[i]);
                      }
                    });
}

void HardeningEngine::ScoreScalarConfidence(const NetworkSnapshot& snapshot,
                                            HardenedState& out) const {
  // Each node reads its own scalars and incident final rates, and writes
  // only its own slot.
  const Topology& topo = snapshot.topology();
  util::ParallelFor(pool(), topo.node_count(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const NodeId v(static_cast<std::uint32_t>(i));
                        out.scalar_confidence[i] = ScalarConfidence(
                            opts_.confidence, opts_.conservation_tau, topo,
                            out, v);
                      }
                    });
}

void HardeningEngine::HardenRates(const NetworkSnapshot& snapshot,
                                  HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  const std::size_t links = topo.link_count();
  Workspace& ws = *ws_;

  // --- R1: detection via link symmetry -----------------------------------
  // Each link reads and writes only its own slots: embarrassingly parallel.
  ws.tx.assign(links, std::nullopt);
  ws.rx.assign(links, std::nullopt);
  util::ParallelFor(pool(), links, [&](std::size_t begin, std::size_t end,
                                       std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const LinkId e(static_cast<std::uint32_t>(i));
      ws.tx[i] = snapshot.TxRate(e);
      ws.rx[i] = snapshot.RxRate(e);
      out.rates[i] = R1Outcome(opts_, ws.tx[i], ws.rx[i]);
    }
  });

  RunRateRepairs(snapshot, out);
}

void HardeningEngine::RunRateRepairs(const NetworkSnapshot& snapshot,
                                     HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  const std::size_t links = topo.link_count();
  Workspace& ws = *ws_;
  util::ThreadPool* tp = pool();

  // --- repair (a): pairwise disambiguation --------------------------------
  // Decide from the pre-repair state, then apply, so ordering cannot let
  // one repaired guess justify another within the same pass. The scan only
  // reads pre-repair rates, so flagged links disambiguate in parallel;
  // per-shard decision lists concatenate back to serial link order.
  if (opts_.pairwise_disambiguation) {
    const std::size_t shards = util::ShardCount(tp, links);
    ws.shard_decisions.resize(shards);
    for (auto& d : ws.shard_decisions) d.clear();
    util::ParallelFor(tp, links, [&](std::size_t begin, std::size_t end,
                                     std::size_t shard) {
      std::vector<Workspace::Decision>& decisions = ws.shard_decisions[shard];
      for (std::size_t i = begin; i < end; ++i) {
        const LinkId e(static_cast<std::uint32_t>(i));
        const HardenedRate& r = out.rates[i];
        if (!r.flagged || r.value) continue;
        const std::optional<double>& ctx = ws.tx[i];
        const std::optional<double>& crx = ws.rx[i];
        const net::Link& l = topo.link(e);

        std::optional<double> tx_resid, rx_resid;
        if (ctx) {
          const auto chk = CheckConservation(topo, out, l.src, e, *ctx);
          if (chk.computable) tx_resid = chk.relative_residual;
        }
        if (crx) {
          const auto chk = CheckConservation(topo, out, l.dst, e, *crx);
          if (chk.computable) rx_resid = chk.relative_residual;
        }
        const bool tx_fits = tx_resid && *tx_resid <= opts_.conservation_tau;
        const bool rx_fits = rx_resid && *rx_resid <= opts_.conservation_tau;
        if (tx_fits && rx_fits) {
          // Both candidates satisfy conservation at their own routers; keep
          // the one that fits more tightly.
          if (*tx_resid <= *rx_resid) {
            decisions.push_back({e, *ctx, crx, *tx_resid});
          } else {
            decisions.push_back({e, *crx, ctx, *rx_resid});
          }
        } else if (tx_fits) {
          decisions.push_back({e, *ctx, crx, *tx_resid});
        } else if (rx_fits) {
          decisions.push_back({e, *crx, ctx, *rx_resid});
        }
      }
    });
    for (const auto& shard : ws.shard_decisions) {
      for (const Workspace::Decision& d : shard) {
        HardenedRate& r = out.rates[d.link.value()];
        r.value = d.value;
        r.origin = RateOrigin::kRepaired;
        r.rejected_value = d.rejected;
        r.repair_source = RepairSource::kPairwise;
        r.repair_residual = d.residual;
      }
    }
  }

  // --- repair (b): constraint propagation ---------------------------------
  // A node equation with exactly one unknown incident rate determines it
  // (the paper's worked example: flow conservation at B gives x = 76).
  if (opts_.propagation_repair) {
    const std::size_t nodes = topo.node_count();
    ws.prop_sum.assign(links, 0.0);
    ws.prop_first.assign(links, 0.0);
    ws.prop_count.assign(links, 0);
    const std::size_t shards = util::ShardCount(tp, nodes);
    ws.shard_solutions.resize(shards);
    bool changed = true;
    while (changed) {
      // One synchronous round: every single-unknown node equation solves
      // against the rates as they stood at the start of the round; the
      // solutions are merged in shard (= node) order and assigned after.
      // An unknown adjacent to two solvable routers gets two (slightly
      // differing, per footnote 3) solutions — averaged or first-picked
      // per the option.
      for (auto& s : ws.shard_solutions) s.clear();
      util::ParallelFor(tp, nodes, [&](std::size_t begin, std::size_t end,
                                       std::size_t shard) {
        auto& sols = ws.shard_solutions[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const NodeId v(static_cast<std::uint32_t>(i));
          const bool is_external = topo.node(v).has_external_port;
          if (!out.dropped[i]) continue;
          if (is_external && (!out.ext_in[i] || !out.ext_out[i])) continue;
          LinkId unknown = LinkId::Invalid();
          bool unknown_is_in = false;
          int unknown_count = 0;
          double in_sum = is_external ? *out.ext_in[i] : 0.0;
          double out_sum =
              *out.dropped[i] + (is_external ? *out.ext_out[i] : 0.0);
          for (LinkId e : topo.InLinks(v)) {
            const auto& r = out.rates[e.value()];
            if (r.value) {
              in_sum += *r.value;
            } else {
              ++unknown_count;
              unknown = e;
              unknown_is_in = true;
            }
          }
          for (LinkId e : topo.OutLinks(v)) {
            const auto& r = out.rates[e.value()];
            if (r.value) {
              out_sum += *r.value;
            } else {
              ++unknown_count;
              unknown = e;
              unknown_is_in = false;
            }
          }
          if (unknown_count != 1) continue;
          const double solved =
              unknown_is_in ? out_sum - in_sum : in_sum - out_sum;
          sols.emplace_back(unknown.value(), solved);
        }
      });
      ws.prop_touched.clear();
      for (const auto& sols : ws.shard_solutions) {
        for (const auto& [lid, v] : sols) {
          if (ws.prop_count[lid] == 0) {
            ws.prop_first[lid] = v;
            ws.prop_sum[lid] = v;
            ws.prop_touched.push_back(lid);
          } else {
            ws.prop_sum[lid] += v;
          }
          ++ws.prop_count[lid];
        }
      }
      changed = !ws.prop_touched.empty();
      for (std::uint32_t lid : ws.prop_touched) {
        const double v = opts_.average_adjacent_solutions
                             ? ws.prop_sum[lid] /
                                   static_cast<double>(ws.prop_count[lid])
                             : ws.prop_first[lid];
        HardenedRate& r = out.rates[lid];
        r.value = std::max(0.0, v);  // jitter can push tiny negatives
        r.origin = RateOrigin::kRepaired;
        r.repair_source = RepairSource::kPropagation;
        r.repair_residual = 0.0;  // exact single-unknown solve
        ws.prop_count[lid] = 0;  // reset for the next round
      }
    }
  }

  // --- repair (c): global least-squares over remaining unknowns -----------
  if (opts_.global_least_squares) {
    std::vector<LinkId> unknowns;
    ws.column_of.assign(links, 0);
    for (std::size_t i = 0; i < links; ++i) {
      if (!out.rates[i].value) {
        ws.column_of[i] = unknowns.size();
        unknowns.push_back(LinkId(static_cast<std::uint32_t>(i)));
      }
    }
    if (!unknowns.empty()) {
      std::vector<std::vector<double>> rows;
      std::vector<double> rhs;
      for (const net::Node& n : topo.nodes()) {
        const bool is_external = n.has_external_port;
        if (!out.dropped[n.id.value()]) continue;
        if (is_external &&
            (!out.ext_in[n.id.value()] || !out.ext_out[n.id.value()])) {
          continue;
        }
        std::vector<double> row(unknowns.size(), 0.0);
        bool any_unknown = false;
        // Σ_in(unknown) − Σ_out(unknown) = known_out − known_in.
        double b = *out.dropped[n.id.value()] +
                   (is_external ? *out.ext_out[n.id.value()] -
                                      *out.ext_in[n.id.value()]
                                : 0.0);
        for (LinkId e : topo.InLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            b -= *r.value;
          } else {
            row[ws.column_of[e.value()]] += 1.0;
            any_unknown = true;
          }
        }
        for (LinkId e : topo.OutLinks(n.id)) {
          const auto& r = out.rates[e.value()];
          if (r.value) {
            b += *r.value;
          } else {
            row[ws.column_of[e.value()]] -= 1.0;
            any_unknown = true;
          }
        }
        if (!any_unknown) continue;
        rows.push_back(std::move(row));
        rhs.push_back(-b);  // move knowns to rhs with matching sign
      }
      if (!rows.empty()) {
        util::Matrix m(rows.size(), unknowns.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          for (std::size_t c = 0; c < unknowns.size(); ++c) {
            m.At(r, c) = rows[r][c];
          }
        }
        auto solved = util::SolveLeastSquares(m, rhs);
        if (solved.ok() &&
            solved.value().outcome == util::SolveOutcome::kUnique) {
          const auto& x = solved.value().solution;
          for (std::size_t c = 0; c < unknowns.size(); ++c) {
            HardenedRate& r = out.rates[unknowns[c].value()];
            r.value = std::max(0.0, x[c]);
            r.origin = RateOrigin::kRepaired;
            r.repair_source = RepairSource::kLeastSquares;
            r.repair_residual = 0.0;  // rank-complete solve
          }
        }
      }
    }
  }

  // --- repair (d): single-witness acceptance -------------------------------
  if (opts_.accept_single_witness) {
    util::ParallelFor(tp, links, [&](std::size_t begin, std::size_t end,
                                     std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        HardenedRate& r = out.rates[i];
        if (r.value) continue;
        const std::optional<double>& ctx = ws.tx[i];
        const std::optional<double>& crx = ws.rx[i];
        if (ctx.has_value() == crx.has_value()) continue;  // 0 or 2 witnesses
        r.value = ctx.has_value() ? *ctx : *crx;
        r.origin = RateOrigin::kSingleWitness;
        r.repair_source = RepairSource::kSingleWitness;
        r.repair_residual = 0.0;  // conservation offered no second opinion
      }
    });
  }
}

void HardeningEngine::HardenLinkStates(const NetworkSnapshot& snapshot,
                                       HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  // One pass per physical link; each pass writes only its own direction
  // pair, so the scan shards over the directed-link range.
  util::ParallelFor(pool(), topo.link_count(), [&](std::size_t begin,
                                                   std::size_t end,
                                                   std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      const LinkId e(static_cast<std::uint32_t>(i));
      if (topo.link(e).reverse.value() < e.value()) continue;
      FuseLinkPair(opts_, snapshot, out, e);
    }
  });
}

void HardeningEngine::HardenDrains(const NetworkSnapshot& snapshot,
                                   HardenedState& out) const {
  const Topology& topo = snapshot.topology();
  util::ThreadPool* tp = pool();

  // Per-router drain fusion: each node writes only its own slot.
  util::ParallelFor(tp, topo.node_count(), [&](std::size_t begin,
                                               std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      FuseNodeDrain(opts_, snapshot, out, NodeId(static_cast<std::uint32_t>(i)));
    }
  });

  util::ParallelFor(tp, topo.link_count(), [&](std::size_t begin,
                                               std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      FuseLinkDrain(snapshot, out, LinkId(static_cast<std::uint32_t>(i)));
    }
  });
}

}  // namespace hodor::core
