# Empty compiler generated dependencies file for bench_correlated_failures.
# This may be replaced when dependencies are built.
