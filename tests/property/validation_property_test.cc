// Property sweeps for the full validation path across topologies, traffic
// models, and perturbations.
//
// Invariants enforced:
//   V1  honest inputs are accepted on every topology x TM generator;
//   V2  detection lower bound: zeroing any entry whose share of BOTH its
//       row and its column exceeds ~2·τ_e is always detected;
//   V3  monotonicity in τ_e: detection never increases as τ_e grows;
//   V4  validator determinism: identical (input, snapshot) -> identical
//       report;
//   V5  honest drains/downs never produce violations (dynamic state is not
//       an anomaly).
#include <gtest/gtest.h>

#include "core/validator.h"
#include "faults/demand_perturbations.h"
#include "test_util.h"
#include "util/stats.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;

struct Scenario {
  std::string topo;
  std::string tm;
  std::uint64_t seed;
};

net::Topology MakeTopo(const std::string& name, std::uint64_t seed) {
  if (name == "abilene") return net::Abilene();
  if (name == "b4like") return net::B4Like();
  if (name == "geantlike") return net::GeantLike();
  util::Rng rng(seed);
  return net::Waxman(16, rng);
}

flow::DemandMatrix MakeDemand(const net::Topology& topo,
                              const std::string& tm, std::uint64_t seed) {
  util::Rng rng(seed);
  flow::DemandMatrix d;
  if (tm == "gravity") {
    d = flow::GravityDemand(topo, rng);
  } else if (tm == "uniform") {
    d = flow::UniformDemand(topo, 2.0);
  } else if (tm == "bimodal") {
    d = flow::BimodalDemand(topo, rng, 0.5, 8.0, 0.25);
  } else {
    d = flow::HotspotDemand(topo, rng, 1.0, 4, 20.0);
  }
  flow::NormalizeToMaxUtilization(topo, 0.5, d);
  return d;
}

class ValidationProperties : public ::testing::TestWithParam<Scenario> {
 protected:
  struct World {
    net::Topology topo;
    net::GroundTruthState state;
    flow::DemandMatrix demand;
    flow::RoutingPlan plan;
    flow::SimulationResult sim;

    explicit World(const Scenario& s)
        : topo(MakeTopo(s.topo, s.seed)),
          state(topo),
          demand(MakeDemand(topo, s.tm, s.seed)),
          plan(flow::ShortestPathRouting(topo, demand, net::AllLinks())),
          sim(flow::SimulateFlow(topo, state, demand, plan)) {}

    telemetry::NetworkSnapshot Snapshot(std::uint64_t seed) const {
      util::Rng rng(seed);
      telemetry::CollectorOptions copts;
      copts.probes.false_loss_rate = 0.0;
      telemetry::Collector collector(topo, copts);
      return collector.Collect(state, sim, 0, rng);
    }

    controlplane::ControllerInput Input(
        const telemetry::NetworkSnapshot& snap, std::uint64_t seed) const {
      util::Rng rng(seed);
      return controlplane::AggregateInputs(topo, snap, demand, 0, rng, {},
                                           {});
    }
  };
};

TEST_P(ValidationProperties, V1HonestInputsAccepted) {
  World w(GetParam());
  const auto snap = w.Snapshot(GetParam().seed + 1);
  const auto input = w.Input(snap, GetParam().seed + 2);
  const Validator validator(w.topo);
  const auto report = validator.Validate(input, snap);
  EXPECT_TRUE(report.ok()) << GetParam().topo << "/" << GetParam().tm << "\n"
                           << report.Describe(w.topo);
}

TEST_P(ValidationProperties, V2DetectionLowerBound) {
  World w(GetParam());
  const auto snap = w.Snapshot(GetParam().seed + 1);
  auto input = w.Input(snap, GetParam().seed + 2);
  const double tau = 0.02;
  const Validator validator(w.topo);

  // Find an entry whose share of its row AND column exceeds 2.5·τ_e
  // (margin over jitter); zeroing it must always fire an invariant.
  for (const auto& [i, j] : w.demand.Pairs()) {
    const double v = w.demand.At(i, j);
    const double row = w.demand.RowSum(i);
    const double col = w.demand.ColSum(j);
    if (row <= 0 || col <= 0) continue;
    if (v / row < 2.5 * tau || v / col < 2.5 * tau) continue;
    flow::DemandMatrix bad = input.demand;
    bad.Set(i, j, 0.0);
    auto corrupted = input;
    corrupted.demand = bad;
    const auto report = validator.Validate(corrupted, snap);
    EXPECT_FALSE(report.demand.ok())
        << GetParam().topo << "/" << GetParam().tm << " entry "
        << w.topo.node(i).name << "->" << w.topo.node(j).name
        << " share row=" << v / row << " col=" << v / col;
  }
}

TEST_P(ValidationProperties, V3DetectionMonotoneInTau) {
  World w(GetParam());
  const auto snap = w.Snapshot(GetParam().seed + 1);
  auto input = w.Input(snap, GetParam().seed + 2);
  util::Rng prng(GetParam().seed + 3);
  input.demand = faults::ZeroEntries(input.demand, 2, prng).matrix;

  const HardenedState hs = HardeningEngine().Harden(snap);
  std::size_t prev = SIZE_MAX;
  for (double tau : {0.005, 0.01, 0.02, 0.05, 0.10, 0.25}) {
    DemandCheckOptions opts;
    opts.tau_e = tau;
    const auto r = CheckDemand(w.topo, hs, input.demand, opts);
    EXPECT_LE(r.violations.size(), prev) << "tau=" << tau;
    prev = r.violations.size();
  }
}

TEST_P(ValidationProperties, V4ValidatorDeterministic) {
  World w(GetParam());
  const auto snap = w.Snapshot(GetParam().seed + 1);
  const auto input = w.Input(snap, GetParam().seed + 2);
  const Validator validator(w.topo);
  const auto a = validator.Validate(input, snap);
  const auto b = validator.Validate(input, snap);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.violation_count(), b.violation_count());
  EXPECT_EQ(a.hardened.flagged_rate_count, b.hardened.flagged_rate_count);
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST_P(ValidationProperties, V5HonestDynamicStateAccepted) {
  World w(GetParam());
  util::Rng rng(GetParam().seed + 9);
  // Drain one link and down another (choosing ones that keep the graph
  // connected), honestly reported everywhere.
  std::vector<LinkId> physical;
  for (const net::Link& l : w.topo.links()) {
    if (l.id.value() < l.reverse.value()) physical.push_back(l.id);
  }
  for (LinkId cand : physical) {
    w.state.SetLinkUp(cand, false);
    if (net::IsStronglyConnected(w.topo, [&](LinkId e) {
          return w.state.LinkUsable(e);
        })) {
      break;
    }
    w.state.SetLinkUp(cand, true);
  }
  // Re-route and re-simulate honestly on the surviving graph.
  w.plan = flow::ShortestPathRouting(
      w.topo, w.demand, [&](LinkId e) { return w.state.LinkUsable(e); });
  w.sim = flow::SimulateFlow(w.topo, w.state, w.demand, w.plan);
  const auto snap = w.Snapshot(GetParam().seed + 10);
  const auto input = w.Input(snap, GetParam().seed + 11);
  const Validator validator(w.topo);
  const auto report = validator.Validate(input, snap);
  // Topology and drain views are consistent with reality: no violations
  // from those checks. (Demand may legitimately flag if the smaller
  // network congests; exclude that by checking there were no drops.)
  EXPECT_TRUE(report.topology.ok()) << report.Describe(w.topo);
  EXPECT_TRUE(report.drain.ok()) << report.Describe(w.topo);
  if (w.sim.total_dropped_gbps < 1e-9 && w.sim.unrouted_gbps < 1e-9) {
    EXPECT_TRUE(report.demand.ok()) << report.Describe(w.topo);
  }
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> out;
  for (const char* topo : {"abilene", "b4like", "geantlike", "waxman16"}) {
    for (const char* tm : {"gravity", "uniform", "bimodal", "hotspot"}) {
      out.push_back(Scenario{topo, tm, 1234});
    }
  }
  // Extra seeds on the headline configuration.
  out.push_back(Scenario{"abilene", "gravity", 77});
  out.push_back(Scenario{"abilene", "gravity", 4242});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidationProperties,
                         ::testing::ValuesIn(AllScenarios()),
                         [](const auto& info) {
                           return info.param.topo + "_" + info.param.tm +
                                  "_s" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace hodor::core
