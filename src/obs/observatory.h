// Validation observatory: the one-stop epoch-sink bundle.
//
// Every serving deployment wires the same four pieces behind
// Pipeline::AddEpochSink: a serving MetricsRegistry mirroring the epoch's
// metrics snapshot, a SignalHealthBoard folding trust, a
// DetectionLatencyTracker correlating fault injection with first flags,
// and a TimeSeriesStore retaining every registry sample per epoch.
// Observatory owns that wiring so examples, benches, and tests share one
// tested composition instead of four hand-rolled lambdas.
//
// The per-epoch flow is split into three steps so callers can interleave
// their own sink work (e.g. core::AlertEngine writes its counters into
// serving_registry() between steps 1 and 2, and the time series then
// retains them):
//
//   1. ObserveEpoch(...)      — mirror metrics, fold board + tracker;
//   2. SampleTimeseries(...)  — fold serving_registry() into the store
//                               (timed as stage "timeseries-sample");
//   3. PublishTo(server, ...) — swap every snapshot into the telemetry
//                               server (/metrics, /health/signals, /slo,
//                               /query, /decisions, /dashboard data).
//
// ObserveAndPublish() runs all three for the common case. Layering: obs/
// cannot see controlplane/, so the epoch inputs are primitives — the
// caller's sink lambda passes EpochResult fields straight through.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/detection.h"
#include "obs/health/signal_health.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/serve/telemetry_server.h"
#include "obs/timeseries.h"

namespace hodor::obs {

struct ObservatoryOptions {
  TimeSeriesOptions timeseries;
  DetectionOptions detection;
  SignalHealthOptions health;
};

class Observatory {
 public:
  explicit Observatory(ObservatoryOptions opts = {});

  Observatory(const Observatory&) = delete;
  Observatory& operator=(const Observatory&) = delete;

  // Step 1: mirrors `metrics_mirror` (nullptr → the global registry) into
  // the serving registry, folds the decision into the trust board, and
  // feeds the detection tracker with the engine-stamped fault classes.
  void ObserveEpoch(std::uint64_t epoch, const MetricsRegistry* metrics_mirror,
                    const DecisionRecord& decision,
                    const std::vector<std::string>& fault_classes);

  // Step 2: samples serving_registry() into the time-series store. Timed
  // into hodor_stage_duration_us{stage="timeseries-sample"} (visible the
  // next epoch: the span closes after the sample it measures).
  void SampleTimeseries(std::uint64_t epoch);

  // Step 3: swaps metrics/signals/slo/time-series snapshots into the
  // server; `decision` (optional) is appended to the /decisions ring.
  void PublishTo(TelemetryServer& server,
                 const DecisionRecord* decision = nullptr);

  // Steps 1–3 in order; `server` may be nullptr (observe-only).
  void ObserveAndPublish(std::uint64_t epoch,
                         const MetricsRegistry* metrics_mirror,
                         const DecisionRecord& decision,
                         const std::vector<std::string>& fault_classes,
                         TelemetryServer* server);

  // The sink-side registry: the epoch mirror plus whatever the caller and
  // the observatory itself add (trust gauges, detection counters, ...).
  MetricsRegistry& serving_registry() { return serving_; }
  SignalHealthBoard& board() { return board_; }
  DetectionLatencyTracker& detection() { return detection_; }
  TimeSeriesStore& timeseries() { return *timeseries_; }
  std::uint64_t epochs_observed() const { return epochs_observed_; }

 private:
  MetricsRegistry serving_;
  SignalHealthBoard board_;
  DetectionLatencyTracker detection_;
  // shared_ptr so PublishTo can hand the server a stable const alias (the
  // store is internally synchronized; see obs/timeseries.h).
  std::shared_ptr<TimeSeriesStore> timeseries_;
  std::uint64_t epochs_observed_ = 0;
};

}  // namespace hodor::obs
