file(REMOVE_RECURSE
  "CMakeFiles/net_topology_test.dir/net/topology_test.cc.o"
  "CMakeFiles/net_topology_test.dir/net/topology_test.cc.o.d"
  "net_topology_test"
  "net_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
