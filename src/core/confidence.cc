#include "core/confidence.h"

#include <algorithm>

#include "util/stats.h"

namespace hodor::core {

using net::LinkId;
using net::NodeId;
using net::Topology;

ConservationCheck CheckConservation(const Topology& topo,
                                    const HardenedState& hs, NodeId v,
                                    LinkId override_link,
                                    double override_value) {
  ConservationCheck out;
  const auto& ei = hs.ext_in[v.value()];
  const auto& eo = hs.ext_out[v.value()];
  const auto& dr = hs.dropped[v.value()];
  const bool is_external = topo.node(v).has_external_port;
  if ((is_external && (!ei || !eo)) || !dr) return out;

  double in_sum = is_external ? *ei : 0.0;
  for (LinkId e : topo.InLinks(v)) {
    if (e == override_link) {
      in_sum += override_value;
      continue;
    }
    const auto& r = hs.rates[e.value()];
    if (!r.value) return out;
    in_sum += *r.value;
  }
  double out_sum = *dr + (is_external ? *eo : 0.0);
  for (LinkId e : topo.OutLinks(v)) {
    if (e == override_link) {
      out_sum += override_value;
      continue;
    }
    const auto& r = hs.rates[e.value()];
    if (!r.value) return out;
    out_sum += *r.value;
  }
  out.computable = true;
  out.relative_residual = util::RelativeDifference(in_sum, out_sum);
  return out;
}

double RateConfidence(const ConfidenceModel& m, double activity_floor,
                      double conservation_tau,
                      const telemetry::NetworkSnapshot& snapshot, LinkId e,
                      const HardenedRate& r) {
  switch (r.origin) {
    case RateOrigin::kAgreeing:
      return m.agreeing;
    case RateOrigin::kRepaired:
    case RateOrigin::kSingleWitness: {
      double c = r.origin == RateOrigin::kRepaired ? m.repaired_base
                                                   : m.single_witness_base;
      if (r.origin == RateOrigin::kRepaired && conservation_tau > 0.0) {
        c -= m.residual_penalty *
             std::min(1.0, r.repair_residual / conservation_tau);
      }
      const bool active = r.value && *r.value > activity_floor;
      // A successful probe corroborates a positive inferred rate; a
      // failed probe corroborates an inferred-idle link.
      const auto probe = snapshot.ProbeSucceeded(e);
      if (probe && *probe == active) c += m.probe_bonus;
      const auto status = snapshot.StatusAtSrc(e);
      if (status && (*status == telemetry::LinkStatus::kUp) == active) {
        c += m.status_bonus;
      }
      return std::clamp(c, 0.0, 1.0);
    }
    case RateOrigin::kUnknown:
      return 0.0;
  }
  return 0.0;
}

double ScalarConfidence(const ConfidenceModel& m, double conservation_tau,
                        const Topology& topo, const HardenedState& hs,
                        NodeId v) {
  const std::size_t i = v.value();
  const bool is_external = topo.node(v).has_external_port;
  if (!hs.dropped[i] ||
      (is_external && (!hs.ext_in[i] || !hs.ext_out[i]))) {
    return 0.0;  // a required scalar is missing: nothing to corroborate
  }
  const ConservationCheck chk =
      CheckConservation(topo, hs, v, LinkId::Invalid(), 0.0);
  if (!chk.computable) return m.scalar_base;  // unknown incident rates
  const double frac =
      conservation_tau > 0.0
          ? std::min(1.0, chk.relative_residual / conservation_tau)
          : 1.0;
  return std::min(1.0, m.scalar_base + m.conservation_bonus * (1.0 - frac));
}

}  // namespace hodor::core
