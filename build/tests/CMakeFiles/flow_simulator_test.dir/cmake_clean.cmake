file(REMOVE_RECURSE
  "CMakeFiles/flow_simulator_test.dir/flow/simulator_test.cc.o"
  "CMakeFiles/flow_simulator_test.dir/flow/simulator_test.cc.o.d"
  "flow_simulator_test"
  "flow_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
