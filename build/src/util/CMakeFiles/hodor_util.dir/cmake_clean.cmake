file(REMOVE_RECURSE
  "CMakeFiles/hodor_util.dir/linear_solver.cc.o"
  "CMakeFiles/hodor_util.dir/linear_solver.cc.o.d"
  "CMakeFiles/hodor_util.dir/logging.cc.o"
  "CMakeFiles/hodor_util.dir/logging.cc.o.d"
  "CMakeFiles/hodor_util.dir/matrix.cc.o"
  "CMakeFiles/hodor_util.dir/matrix.cc.o.d"
  "CMakeFiles/hodor_util.dir/stats.cc.o"
  "CMakeFiles/hodor_util.dir/stats.cc.o.d"
  "CMakeFiles/hodor_util.dir/strings.cc.o"
  "CMakeFiles/hodor_util.dir/strings.cc.o.d"
  "CMakeFiles/hodor_util.dir/table.cc.o"
  "CMakeFiles/hodor_util.dir/table.cc.o.d"
  "libhodor_util.a"
  "libhodor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hodor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
