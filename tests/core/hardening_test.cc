#include "core/hardening.h"

#include <gtest/gtest.h>

#include "faults/snapshot_faults.h"
#include "util/stats.h"
#include "net/topologies.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;
using telemetry::LinkStatus;
using telemetry::NetworkSnapshot;

// Builds the paper's Figure 3 by hand: triangle A,B,C, demand
// A->B=52, A->C=24 (routed via B), C->B=23, C->A=5. True link rates:
// A->B=76, C->B=23, B->C=24, C->A=5, B->A=0, A->C=0. External counters:
// ext_in(A)=76, ext_out(A)=5, ext_in(B)=0, ext_out(B)=75, ext_in(C)=28,
// ext_out(C)=24. The faulty TX counter on A->B reports 98 instead of 76;
// flow conservation at B recovers x = 76 (the worked example in §4.1).
struct Figure3 {
  net::Topology topo = net::Figure3Triangle();
  NodeId a, b, c;
  LinkId ab, ba, bc, cb, ac, ca;

  Figure3() {
    a = topo.FindNode("A").value();
    b = topo.FindNode("B").value();
    c = topo.FindNode("C").value();
    ab = topo.FindLink(a, b).value();
    ba = topo.link(ab).reverse;
    bc = topo.FindLink(b, c).value();
    cb = topo.link(bc).reverse;
    ac = topo.FindLink(a, c).value();
    ca = topo.link(ac).reverse;
  }

  double TrueRate(LinkId e) const {
    if (e == ab) return 76.0;
    if (e == cb) return 23.0;
    if (e == bc) return 24.0;
    if (e == ca) return 5.0;
    return 0.0;  // ba, ac idle
  }

  // An honest, jitter-free snapshot of the scenario.
  NetworkSnapshot Snapshot() const {
    NetworkSnapshot snap(topo, 0);
    telemetry::SignalFrame& frame = snap.frame();
    auto fill = [&](NodeId v, double ext_in, double ext_out) {
      frame.SetNodeDrained(v, false);
      frame.SetDroppedRate(v, 0.0);
      frame.SetExtInRate(v, ext_in);
      frame.SetExtOutRate(v, ext_out);
      for (LinkId e : topo.OutLinks(v)) {
        frame.SetStatus(e, LinkStatus::kUp);
        frame.SetTxRate(e, TrueRate(e));
        frame.SetLinkDrain(e, false);
      }
      for (LinkId e : topo.InLinks(v)) {
        frame.SetRxRate(e, TrueRate(e));
      }
    };
    fill(a, 76.0, 5.0);
    fill(b, 0.0, 75.0);
    fill(c, 28.0, 24.0);
    return snap;
  }

  flow::DemandMatrix Demand() const {
    flow::DemandMatrix d(topo.node_count());
    d.Set(a, b, 52.0);
    d.Set(a, c, 24.0);
    d.Set(c, b, 23.0);
    d.Set(c, a, 5.0);
    return d;
  }
};

TEST(Hardening, CleanSnapshotAllAgreeing) {
  const Figure3 fig;
  const NetworkSnapshot snap = fig.Snapshot();
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_EQ(hs.flagged_rate_count, 0u);
  EXPECT_EQ(hs.repaired_rate_count, 0u);
  EXPECT_EQ(hs.unknown_rate_count, 0u);
  for (LinkId e : fig.topo.LinkIds()) {
    const HardenedRate& r = hs.rates[e.value()];
    EXPECT_EQ(r.origin, RateOrigin::kAgreeing);
    EXPECT_DOUBLE_EQ(r.value.value(), fig.TrueRate(e));
  }
  EXPECT_DOUBLE_EQ(hs.ext_in[fig.a.value()].value(), 76.0);
  EXPECT_DOUBLE_EQ(hs.ext_out[fig.b.value()].value(), 75.0);
}

TEST(Hardening, Figure3WorkedExample) {
  // The paper's running example: TX on A->B reads 98, RX reads 76. R1
  // flags the pair; conservation at B accepts 76 and rejects 98.
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().SetTxRate(fig.ab, 98.0);

  const HardenedState hs = HardeningEngine().Harden(snap);
  const HardenedRate& r = hs.rates[fig.ab.value()];
  EXPECT_TRUE(r.flagged);
  EXPECT_EQ(r.origin, RateOrigin::kRepaired);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_NEAR(*r.value, 76.0, 1e-9);
  ASSERT_TRUE(r.rejected_value.has_value());
  EXPECT_DOUBLE_EQ(*r.rejected_value, 98.0);
  EXPECT_EQ(hs.flagged_rate_count, 1u);
  EXPECT_EQ(hs.repaired_rate_count, 1u);
  EXPECT_EQ(hs.unknown_rate_count, 0u);
}

TEST(Hardening, Figure3FaultyRxSideAlsoRepaired) {
  // Mirror case: the RX counter lies instead; conservation at A keeps 76.
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().SetRxRate(fig.ab, 120.0);
  const HardenedState hs = HardeningEngine().Harden(snap);
  const HardenedRate& r = hs.rates[fig.ab.value()];
  EXPECT_EQ(r.origin, RateOrigin::kRepaired);
  EXPECT_NEAR(r.value.value(), 76.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.rejected_value.value(), 120.0);
}

TEST(Hardening, BothCountersMissingRepairedByPropagation) {
  // The pair is absent entirely; the per-node equation at B still has
  // exactly one unknown and determines it.
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().ClearTxRate(fig.ab);
  snap.frame().ClearRxRate(fig.ab);
  const HardenedState hs = HardeningEngine().Harden(snap);
  const HardenedRate& r = hs.rates[fig.ab.value()];
  EXPECT_TRUE(r.flagged);
  EXPECT_EQ(r.origin, RateOrigin::kRepaired);
  EXPECT_NEAR(r.value.value(), 76.0, 1e-9);
}

TEST(Hardening, DisambiguationDisabledFallsBackToPropagation) {
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().SetTxRate(fig.ab, 98.0);
  HardeningOptions opts;
  opts.pairwise_disambiguation = false;
  const HardenedState hs = HardeningEngine(opts).Harden(snap);
  const HardenedRate& r = hs.rates[fig.ab.value()];
  // Propagation also recovers 76 (one unknown at B), but cannot attribute
  // blame to a specific side.
  EXPECT_EQ(r.origin, RateOrigin::kRepaired);
  EXPECT_NEAR(r.value.value(), 76.0, 1e-9);
  EXPECT_FALSE(r.rejected_value.has_value());
}

TEST(Hardening, AllRepairsDisabledLeavesUnknown) {
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().SetTxRate(fig.ab, 98.0);
  HardeningOptions opts;
  opts.pairwise_disambiguation = false;
  opts.propagation_repair = false;
  opts.global_least_squares = false;
  const HardenedState hs = HardeningEngine(opts).Harden(snap);
  const HardenedRate& r = hs.rates[fig.ab.value()];
  EXPECT_TRUE(r.flagged);
  EXPECT_EQ(r.origin, RateOrigin::kUnknown);
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(hs.unknown_rate_count, 1u);
}

TEST(Hardening, TwoFaultsOnDistinctRoutersBothRepaired) {
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  // Zero out both counters of A->B and of C->B: two unknowns, two
  // distinct conservation equations (at B it's 2 unknowns; at A and C one
  // each) — propagation solves A->B at A, then C->B at B or C.
  snap.frame().ClearTxRate(fig.ab);
  snap.frame().ClearRxRate(fig.ab);
  snap.frame().ClearTxRate(fig.cb);
  snap.frame().ClearRxRate(fig.cb);
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_NEAR(hs.rates[fig.ab.value()].value.value(), 76.0, 1e-9);
  EXPECT_NEAR(hs.rates[fig.cb.value()].value.value(), 23.0, 1e-9);
  EXPECT_EQ(hs.unknown_rate_count, 0u);
}

TEST(Hardening, JitteredHealthySnapshotRaisesNoFlags) {
  // Soundness: measurement jitter below τ_h must not trigger detection.
  testing::HealthyNetwork net = testing::MakeAbilene();
  const auto snap = net.Snapshot();
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_EQ(hs.flagged_rate_count, 0u);
  EXPECT_EQ(hs.unknown_rate_count, 0u);
}

TEST(Hardening, ZeroedCountersOnRouterAreRepaired) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  const NodeId victim = net.topo.FindNode("KSCYng").value();
  const auto snap =
      net.Snapshot(1, faults::ZeroedCountersFault(victim, 0.5, 99));
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_GT(hs.flagged_rate_count, 0u);
  // Every flagged rate that carried real traffic should be repaired close
  // to the truth.
  for (LinkId e : net.topo.LinkIds()) {
    const HardenedRate& r = hs.rates[e.value()];
    if (!r.value.has_value()) continue;
    const double truth = net.sim.carried[e.value()];
    if (truth > 1.0) {
      EXPECT_TRUE(util::WithinRelativeTolerance(*r.value, truth, 0.05))
          << net.topo.LinkName(e) << " hardened=" << *r.value
          << " truth=" << truth;
    }
  }
}

TEST(Hardening, UnresponsiveRouterCountersRecovered) {
  // A whole router goes silent: every incident link loses one side of its
  // pair, but the far ends still report, and conservation fills gaps.
  testing::HealthyNetwork net = testing::MakeAbilene();
  const NodeId victim = net.topo.FindNode("ATLAM5").value();  // degree 1
  const auto snap = net.Snapshot(1, faults::UnresponsiveRouter(victim));
  const HardenedState hs = HardeningEngine().Harden(snap);
  for (LinkId e : net.topo.OutLinks(victim)) {
    const HardenedRate& r = hs.rates[e.value()];
    EXPECT_TRUE(r.flagged);
    ASSERT_TRUE(r.value.has_value()) << net.topo.LinkName(e);
    const double truth = net.sim.carried[e.value()];
    if (truth > 1.0) {
      EXPECT_TRUE(util::WithinRelativeTolerance(*r.value, truth, 0.05));
    }
  }
}

TEST(Hardening, ScaledCountersFlaggedEverywhere) {
  testing::HealthyNetwork net = testing::MakeAbilene();
  const NodeId victim = net.topo.FindNode("DNVRng").value();
  const auto snap =
      net.Snapshot(1, faults::ScaledRouterCounters(victim, 0.3));
  const HardenedState hs = HardeningEngine().Harden(snap);
  // Every carrying link at the victim disagrees across ends.
  std::size_t expected_flagged = 0;
  for (LinkId e : net.topo.OutLinks(victim)) {
    if (net.sim.carried[e.value()] > 1.0) ++expected_flagged;
  }
  for (LinkId e : net.topo.InLinks(victim)) {
    if (net.sim.carried[e.value()] > 1.0) ++expected_flagged;
  }
  EXPECT_GE(hs.flagged_rate_count, expected_flagged);
}

TEST(HardenedStateSummary, MentionsCounts) {
  HardenedState hs;
  hs.flagged_rate_count = 3;
  hs.repaired_rate_count = 2;
  hs.unknown_rate_count = 1;
  const std::string s = hs.Summary();
  EXPECT_NE(s.find("flagged=3"), std::string::npos);
  EXPECT_NE(s.find("repaired=2"), std::string::npos);
  EXPECT_NE(s.find("unknown=1"), std::string::npos);
}


TEST(Hardening, Footnote3AveragingBothOptionsRepairAccurately) {
  // Paper footnote 3: the missing A->B rate can be solved at A or at B,
  // and under jitter the two solutions differ slightly. Both the
  // averaging and the pick-one policies must land within tolerance.
  testing::HealthyNetwork net = testing::MakeAbilene();
  // Pick a loaded link and drop BOTH counters so only conservation can
  // recover it (both endpoint equations become solvable).
  LinkId victim = LinkId::Invalid();
  for (LinkId e : net.topo.LinkIds()) {
    if (net.sim.carried[e.value()] > 5.0) {
      victim = e;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  const auto snap = net.Snapshot(
      1, faults::CorruptLinkCounter(victim, faults::CounterSide::kBoth,
                                    faults::CounterCorruption::kDrop));
  const double truth = net.sim.carried[victim.value()];

  for (bool average : {true, false}) {
    HardeningOptions opts;
    opts.average_adjacent_solutions = average;
    const HardenedState hs = HardeningEngine(opts).Harden(snap);
    const HardenedRate& r = hs.rates[victim.value()];
    ASSERT_TRUE(r.value.has_value()) << "average=" << average;
    EXPECT_EQ(r.origin, RateOrigin::kRepaired);
    EXPECT_TRUE(util::WithinRelativeTolerance(*r.value, truth, 0.03))
        << "average=" << average << " got " << *r.value << " want " << truth;
  }
}

TEST(Hardening, Footnote3PoliciesAgreeWithoutJitter) {
  // Jitter-free Figure 3: both endpoint solutions are identical, so the
  // two policies must produce exactly the same repair.
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().ClearTxRate(fig.ab);
  snap.frame().ClearRxRate(fig.ab);
  HardeningOptions avg;
  avg.average_adjacent_solutions = true;
  HardeningOptions pick;
  pick.average_adjacent_solutions = false;
  const auto a = HardeningEngine(avg).Harden(snap);
  const auto b = HardeningEngine(pick).Harden(snap);
  EXPECT_DOUBLE_EQ(a.rates[fig.ab.value()].value.value(),
                   b.rates[fig.ab.value()].value.value());
  EXPECT_NEAR(a.rates[fig.ab.value()].value.value(), 76.0, 1e-9);
}


TEST(Hardening, ConfidenceScoresReflectCorroboration) {
  // Agreeing pairs score 1.0; the Figure 3 repair, corroborated by an up
  // status on an active link, scores high but below 1; with all repairs
  // disabled the unknown scores 0.
  const Figure3 fig;
  NetworkSnapshot snap = fig.Snapshot();
  snap.frame().SetTxRate(fig.ab, 98.0);
  const HardenedState hs = HardeningEngine().Harden(snap);
  EXPECT_DOUBLE_EQ(hs.rates[fig.bc.value()].confidence, 1.0);  // agreeing
  const HardenedRate& repaired = hs.rates[fig.ab.value()];
  EXPECT_GT(repaired.confidence, 0.7);
  EXPECT_LT(repaired.confidence, 1.0);

  HardeningOptions off;
  off.pairwise_disambiguation = false;
  off.propagation_repair = false;
  off.global_least_squares = false;
  off.accept_single_witness = false;
  const HardenedState none = HardeningEngine(off).Harden(snap);
  EXPECT_DOUBLE_EQ(none.rates[fig.ab.value()].confidence, 0.0);
}

TEST(Hardening, ThreadedHardeningBitIdentical) {
  // Sharded stages must reproduce the serial result exactly — including
  // floating-point accumulation order — at any thread count.
  testing::HealthyNetwork net = testing::MakeAbilene();
  const NodeId victim = net.topo.FindNode("KSCYng").value();
  const auto snap =
      net.Snapshot(1, faults::ZeroedCountersFault(victim, 0.5, 99));
  const HardenedState serial = HardeningEngine().Harden(snap);
  for (std::size_t threads : {2u, 4u}) {
    HardeningOptions opts;
    opts.num_threads = threads;
    const HardeningEngine engine(opts);
    // Run twice through the same engine to exercise workspace reuse.
    (void)engine.Harden(snap);
    const HardenedState threaded = engine.Harden(snap);
    ASSERT_EQ(serial.rates.size(), threaded.rates.size());
    for (std::size_t i = 0; i < serial.rates.size(); ++i) {
      EXPECT_EQ(serial.rates[i].value, threaded.rates[i].value)
          << "link " << i << " threads=" << threads;
      EXPECT_EQ(serial.rates[i].origin, threaded.rates[i].origin);
      EXPECT_EQ(serial.rates[i].rejected_value, threaded.rates[i].rejected_value);
      EXPECT_EQ(serial.rates[i].confidence, threaded.rates[i].confidence);
      EXPECT_EQ(serial.links[i].verdict, threaded.links[i].verdict);
      EXPECT_EQ(serial.links[i].confidence, threaded.links[i].confidence);
      EXPECT_EQ(serial.link_drained[i], threaded.link_drained[i]);
    }
    for (std::size_t i = 0; i < serial.drains.size(); ++i) {
      EXPECT_EQ(serial.drains[i].node_drained, threaded.drains[i].node_drained);
      EXPECT_EQ(serial.drains[i].undrained_but_dead,
                threaded.drains[i].undrained_but_dead);
    }
    EXPECT_EQ(serial.flagged_rate_count, threaded.flagged_rate_count);
    EXPECT_EQ(serial.repaired_rate_count, threaded.repaired_rate_count);
    EXPECT_EQ(serial.unknown_rate_count, threaded.unknown_rate_count);
  }
}

TEST(Hardening, ProbeCorroborationRaisesRepairConfidence) {
  // The same repair with and without a matching probe: R4 adds confidence.
  const Figure3 fig;
  NetworkSnapshot with_probe = fig.Snapshot();
  with_probe.frame().SetTxRate(fig.ab, 98.0);
  std::vector<telemetry::ProbeResult> probes;
  for (LinkId e : fig.topo.LinkIds()) {
    probes.push_back(telemetry::ProbeResult{e, true});
  }
  with_probe.SetProbeResults(probes);

  NetworkSnapshot without_probe = fig.Snapshot();
  without_probe.frame().SetTxRate(fig.ab, 98.0);

  const double c_with =
      HardeningEngine().Harden(with_probe).rates[fig.ab.value()].confidence;
  const double c_without = HardeningEngine()
                               .Harden(without_probe)
                               .rates[fig.ab.value()]
                               .confidence;
  EXPECT_GT(c_with, c_without);
}

}  // namespace
}  // namespace hodor::core
