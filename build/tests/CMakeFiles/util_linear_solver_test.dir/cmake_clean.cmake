file(REMOVE_RECURSE
  "CMakeFiles/util_linear_solver_test.dir/util/linear_solver_test.cc.o"
  "CMakeFiles/util_linear_solver_test.dir/util/linear_solver_test.cc.o.d"
  "util_linear_solver_test"
  "util_linear_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_linear_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
