# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for faults_aggregation_and_perturbation_test.
