#include "core/topology_check.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/provenance.h"
#include "util/status.h"
#include "util/strings.h"

namespace hodor::core {

std::string TopologyViolation::ToString(const net::Topology& topo) const {
  std::ostringstream os;
  os << (kind == TopologyViolationKind::kPhantomLink ? "phantom link "
                                                     : "missing link ")
     << topo.LinkName(link) << " (verdict confidence "
     << util::FormatPercent(confidence, 0) << ")";
  return os.str();
}

TopologyCheckResult CheckTopology(const net::Topology& topo,
                                  const HardenedState& hardened,
                                  const std::vector<bool>& link_available,
                                  const TopologyCheckOptions& opts,
                                  obs::DecisionRecord* provenance) {
  HODOR_CHECK(link_available.size() == topo.link_count());
  TopologyCheckResult result;
  auto record = [&](net::LinkId e, double residual,
                    obs::InvariantVerdict verdict, std::string detail) {
    if (!provenance) return;
    obs::InvariantRecord rec{
        "topology", "link-state(" + topo.LinkNameRef(e) + ")", residual,
        opts.min_confidence, verdict, std::move(detail)};
    // The fused verdict confidence is both this record's residual and the
    // confidence of the input the verdict rests on.
    rec.confidence = hardened.links[e.value()].confidence;
    provenance->Add(std::move(rec));
  };
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId e(i);
    const HardenedLinkState& hl = hardened.links[e.value()];
    if (hl.verdict == LinkVerdict::kUnknown ||
        hl.confidence < opts.min_confidence) {
      ++result.unknown_links;
      record(e, hl.confidence, obs::InvariantVerdict::kSkipped,
             std::string("fused verdict ") + LinkVerdictName(hl.verdict) +
                 " below confidence threshold");
      continue;
    }
    ++result.checked_links;
    const bool input_up = link_available[e.value()];
    const bool hardened_up = hl.verdict == LinkVerdict::kUp;
    if (input_up && !hardened_up) {
      TopologyViolation violation{e, TopologyViolationKind::kPhantomLink,
                                  hl.confidence};
      record(e, hl.confidence, obs::InvariantVerdict::kFail,
             violation.ToString(topo));
      result.violations.push_back(violation);
    } else if (!input_up && hardened_up) {
      TopologyViolation violation{e, TopologyViolationKind::kMissingLink,
                                  hl.confidence};
      record(e, hl.confidence, obs::InvariantVerdict::kFail,
             violation.ToString(topo));
      result.violations.push_back(violation);
    } else {
      record(e, hl.confidence, obs::InvariantVerdict::kPass, "");
    }
  }

  obs::MetricsRegistry& reg = obs::ResolveRegistry(opts.metrics);
  const obs::Labels labels = {{"check", "topology"}};
  reg.GetCounter("hodor_check_runs_total", labels, "Check invocations")
      .Increment();
  reg.GetCounter("hodor_check_invariants_total", labels,
                 "Invariants evaluated")
      .Increment(static_cast<double>(result.checked_links));
  reg.GetCounter("hodor_check_violations_total", labels, "Invariants fired")
      .Increment(static_cast<double>(result.violations.size()));
  reg.GetCounter("hodor_check_skipped_total", labels,
                 "Invariants skipped (signal unknown or suppressed)")
      .Increment(static_cast<double>(result.unknown_links));
  return result;
}

}  // namespace hodor::core
