// ControllerInput: the abstract view of network state handed to the SDN
// controller (paper Figure 1) — exactly the three inputs the paper's §4
// validates: the topology, the traffic demand, and drain status.
//
// The controller knows the network *design* (the Topology object); the
// input tells it the current condition: which links are usable, what the
// demand is, and what is drained. Everything here is indexed against the
// designed topology's dense ids.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/demand_matrix.h"
#include "net/graph_algorithms.h"
#include "net/topology.h"

namespace hodor::controlplane {

struct ControllerInput {
  std::uint64_t epoch = 0;

  // Topology input: per directed link, is it present/usable in the view the
  // control infrastructure stitched together?
  std::vector<bool> link_available;

  // Demand input: the matrix D aggregated from end-host measurements.
  flow::DemandMatrix demand;

  // Drain input: routers / links the controller must route around.
  std::vector<bool> node_drained;
  std::vector<bool> link_drained;

  // A link the controller may route over: present in the topology input and
  // not drained (either the link or an endpoint router).
  bool LinkUsable(const net::Topology& topo, net::LinkId e) const {
    const net::Link& l = topo.link(e);
    return link_available[e.value()] && !link_drained[e.value()] &&
           !node_drained[l.src.value()] && !node_drained[l.dst.value()];
  }

  // Filter view for the routing algorithms.
  net::LinkFilter UsableFilter(const net::Topology& topo) const {
    return [this, &topo](net::LinkId e) { return LinkUsable(topo, e); };
  }

  std::size_t AvailableLinkCount() const {
    std::size_t n = 0;
    for (bool b : link_available) {
      if (b) ++n;
    }
    return n;
  }
};

// An input sized for `topo` with every link available, zero demand, and
// nothing drained.
ControllerInput MakeEmptyInput(const net::Topology& topo);

}  // namespace hodor::controlplane
