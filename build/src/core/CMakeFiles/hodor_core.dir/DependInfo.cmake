
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alerts.cc" "src/core/CMakeFiles/hodor_core.dir/alerts.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/alerts.cc.o.d"
  "/root/repo/src/core/baselines/anomaly_detector.cc" "src/core/CMakeFiles/hodor_core.dir/baselines/anomaly_detector.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/baselines/anomaly_detector.cc.o.d"
  "/root/repo/src/core/baselines/invariant_miner.cc" "src/core/CMakeFiles/hodor_core.dir/baselines/invariant_miner.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/baselines/invariant_miner.cc.o.d"
  "/root/repo/src/core/baselines/static_checker.cc" "src/core/CMakeFiles/hodor_core.dir/baselines/static_checker.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/baselines/static_checker.cc.o.d"
  "/root/repo/src/core/demand_check.cc" "src/core/CMakeFiles/hodor_core.dir/demand_check.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/demand_check.cc.o.d"
  "/root/repo/src/core/drain_check.cc" "src/core/CMakeFiles/hodor_core.dir/drain_check.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/drain_check.cc.o.d"
  "/root/repo/src/core/drain_protocol.cc" "src/core/CMakeFiles/hodor_core.dir/drain_protocol.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/drain_protocol.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/hodor_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/figure3_example.cc" "src/core/CMakeFiles/hodor_core.dir/figure3_example.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/figure3_example.cc.o.d"
  "/root/repo/src/core/hardening.cc" "src/core/CMakeFiles/hodor_core.dir/hardening.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/hardening.cc.o.d"
  "/root/repo/src/core/topology_check.cc" "src/core/CMakeFiles/hodor_core.dir/topology_check.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/topology_check.cc.o.d"
  "/root/repo/src/core/validator.cc" "src/core/CMakeFiles/hodor_core.dir/validator.cc.o" "gcc" "src/core/CMakeFiles/hodor_core.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/hodor_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/hodor_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hodor_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/hodor_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hodor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
