// Small statistics toolkit: running summaries, percentiles, EWMA tracking.
//
// The anomaly-detection baseline (core/baselines) and the experiment
// harnesses both report through these types, so every bench prints
// consistently computed aggregates.
#pragma once

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace hodor::util {

// Accumulates a stream of doubles and reports summary statistics.
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  // Population variance / standard deviation (Welford's algorithm).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample using linear interpolation between closest ranks.
// p in [0, 100]. Precondition: non-empty sample.
double Percentile(std::vector<double> sample, double p);

// Exponentially weighted moving average with bias-corrected startup,
// plus an EWM variance estimate. Used by the statistical anomaly-detection
// baseline to model a signal's "historical" behaviour.
class Ewma {
 public:
  // alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void Add(double x);

  bool initialized() const { return count_ > 0; }
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;
  double stddev() const;

  // Standard score of x against the tracked mean/stddev. If the tracked
  // stddev is ~0, returns 0 when x matches the mean and a large sentinel
  // otherwise.
  double ZScore(double x) const;

 private:
  double alpha_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t count_ = 0;
};

// Fraction helper that renders sensibly for empty denominators.
inline double SafeRate(std::size_t numer, std::size_t denom) {
  return denom == 0 ? 0.0 : static_cast<double>(numer) / static_cast<double>(denom);
}

// Relative difference |a−b| / max(|a|,|b|), 0 when both are ~0. This is the
// comparison primitive behind both thresholds in the paper (τ_h and τ_e).
double RelativeDifference(double a, double b);

// True when a and b agree within relative tolerance tau (see
// RelativeDifference). Mirrors the paper's "within τ percent of equality".
bool WithinRelativeTolerance(double a, double b, double tau);

}  // namespace hodor::util
