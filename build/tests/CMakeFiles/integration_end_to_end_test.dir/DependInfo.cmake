
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_end_to_end_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_end_to_end_test.dir/integration/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hodor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/hodor_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/hodor_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hodor_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/hodor_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hodor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
