// The Hodor validator: the public entry point tying the three steps
// together. Collection is the caller's NetworkSnapshot; the validator
// hardens it and dynamically checks each controller input against the
// hardened state, returning a structured report plus an accept/reject
// decision suitable for the pipeline's rejection policy.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "controlplane/controller_input.h"
#include "controlplane/pipeline.h"
#include "core/demand_check.h"
#include "core/drain_check.h"
#include "core/hardening.h"
#include "core/topology_check.h"
#include "obs/provenance.h"
#include "telemetry/snapshot.h"

namespace hodor::core {

struct ValidatorOptions {
  HardeningOptions hardening;
  DemandCheckOptions demand;
  TopologyCheckOptions topology;
  DrainCheckOptions drain;

  // Per-input switches (ablations / staged rollout).
  bool check_demand = true;
  bool check_topology = true;
  bool check_drain = true;

  // The three checks are independent of each other (all read only the
  // hardened state and the input), so with hardening.num_threads > 1 they
  // run as sibling stages on the hardening engine's pool. Each check
  // writes its own provenance sub-record and metrics shard; both are
  // merged back in the fixed serial order demand → topology → drain, so
  // the DecisionRecord — and its CanonicalDigest — is bit-identical to
  // the serial path at any thread count.

  // Observability. Stage spans (harden, check-*) and check counters are
  // emitted to `metrics` (nullptr → the process-global registry) and
  // optionally to `trace`; both propagate into the hardening/check options
  // above unless those already name a registry. When `record_provenance`
  // is set, every Validate() fills the report's DecisionRecord with one
  // entry per invariant evaluated.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  bool record_provenance = true;
};

struct ValidationReport {
  HardenedState hardened;
  DemandCheckResult demand;
  TopologyCheckResult topology;
  DrainCheckResult drain;
  // Audit record: every invariant evaluated with residual, threshold, and
  // verdict (populated when ValidatorOptions::record_provenance is set).
  obs::DecisionRecord provenance;

  bool ok() const {
    return demand.ok() && topology.ok() && drain.ok();
  }
  std::size_t violation_count() const {
    return demand.violations.size() + topology.violations.size() +
           drain.violations.size();
  }

  // Operator-facing multi-line description of every violation.
  std::string Describe(const net::Topology& topo) const;
  // One-line summary, e.g. "REJECT: 3 violations (demand:2 topology:1)".
  std::string Summary() const;
};

class Validator {
 public:
  explicit Validator(const net::Topology& topo, ValidatorOptions opts = {});

  const ValidatorOptions& options() const { return opts_; }

  ValidationReport Validate(const controlplane::ControllerInput& input,
                            const telemetry::NetworkSnapshot& snapshot) const;

  // Incremental variant (DESIGN.md §12). `delta` is the exact changed-signal
  // set between `snapshot` and the one this validator validated last
  // (NetworkSnapshot::DiffAgainst). Hardening re-runs only over the changed
  // signals, and each check replays its prior verdict — results, provenance
  // records, and metric increments alike — whenever its declared facets
  // (kDemandCheckFacets etc.) are clean AND its controller-input columns
  // compare equal to the previous epoch's. The report is bit-identical to
  // the full recompute; a null/full/chain-broken delta falls back to it.
  ValidationReport Validate(const controlplane::ControllerInput& input,
                            const telemetry::NetworkSnapshot& snapshot,
                            const telemetry::FrameDelta* delta) const;

  // Adapts this validator to the pipeline's callback interface. The
  // returned decision carries the report's DecisionRecord, so EpochResults
  // downstream can name the invariant that fired.
  controlplane::InputValidatorFn AsPipelineValidator() const;

  // The delta-aware adaptation: the epoch engine hands the per-epoch
  // FrameDelta through (controlplane::DeltaInputValidatorFn), enabling the
  // incremental path end-to-end.
  controlplane::DeltaInputValidatorFn AsDeltaPipelineValidator() const;

 private:
  // Which checks this Validate call may replay from the cache (decided
  // up front, before any check runs, from the HardenDelta facets and the
  // input-column comparisons).
  struct ReplayPlan {
    bool demand = false;
    bool topology = false;
    bool drain = false;
  };

  // The previous epoch's check verdicts, provenance records, and the
  // controller-input columns they were computed from (DESIGN.md §12).
  // Every Validate refreshes it; a replay is only legal when the epoch
  // chain through the FrameDelta is unbroken.
  struct CheckCache {
    bool valid = false;
    std::uint64_t epoch = 0;
    // True when the cached run captured provenance records (a
    // provenance-less run may not be replayed into a provenance-wanting
    // one).
    bool prov_cached = false;

    // Input columns as validated last epoch.
    flow::DemandMatrix demand_input;
    std::vector<bool> link_available;
    std::vector<bool> node_drained;
    std::vector<bool> link_drained;

    // Cached verdicts + per-check provenance sub-records.
    bool has_demand = false;
    bool has_topology = false;
    bool has_drain = false;
    DemandCheckResult demand_result;
    TopologyCheckResult topology_result;
    DrainCheckResult drain_result;
    // Frozen record blocks: spliced into each epoch's DecisionRecord via
    // AddBlock (O(1) — shared with every decision that replayed them). A
    // fresh evaluation allocates a new block; decisions holding the old
    // one keep it alive.
    obs::DecisionRecord::RecordBlock demand_records;
    obs::DecisionRecord::RecordBlock topology_records;
    obs::DecisionRecord::RecordBlock drain_records;
    // Last epoch's blocks, parked here by a fresh evaluation so that
    // releasing them (thousands of invariant-string frees at WAN scale)
    // lands outside the check stage spans — the pre-cache validator freed
    // its records with the report, off the measured path. Validate clears
    // these after the check spans close. One slot per check keeps the
    // parallel path race-free (each check touches only its own slot).
    obs::DecisionRecord::RecordBlock demand_retired;
    obs::DecisionRecord::RecordBlock topology_retired;
    obs::DecisionRecord::RecordBlock drain_retired;
  };

  // Appends hardening provenance (R1 symmetry detections and their R2-R4
  // resolution) to `record`.
  void AppendHardeningProvenance(const HardenedState& hardened,
                                 obs::DecisionRecord& record) const;

  // Runs one check into its cache slot, or — on replay — re-emits the
  // cached counter increments (plus hodor_incremental_skips_total) to
  // `metrics` without re-evaluating. `want_prov` captures the sub-record.
  void EvalDemand(const controlplane::ControllerInput& input,
                  const HardenedState& hardened, bool replay, bool want_prov,
                  obs::MetricsRegistry* metrics) const;
  void EvalTopology(const controlplane::ControllerInput& input,
                    const HardenedState& hardened, bool replay,
                    bool want_prov, obs::MetricsRegistry* metrics) const;
  void EvalDrain(const controlplane::ControllerInput& input,
                 const HardenedState& hardened, bool replay, bool want_prov,
                 obs::MetricsRegistry* metrics) const;

  // The demand/topology/drain checks as sibling stages on the hardening
  // engine's pool (see the ValidatorOptions comment). Fills the report's
  // check results and, when `prov` is set, splices each check's
  // sub-record into it in the fixed serial order.
  void RunChecksParallel(const controlplane::ControllerInput& input,
                         std::uint64_t epoch, util::ThreadPool& pool,
                         const ReplayPlan& plan, ValidationReport& report,
                         obs::DecisionRecord* prov) const;

  const net::Topology* topo_;
  ValidatorOptions opts_;
  HardeningEngine engine_;
  // Per-check metrics shards for the parallel path, lazily created and
  // reused across Validate calls. Like the hardening workspace, this makes
  // a Validator single-validation-at-a-time (distinct Validators may run
  // concurrently).
  mutable std::array<std::unique_ptr<obs::MetricsRegistry>, 3> check_shards_;
  mutable CheckCache cache_;
};

}  // namespace hodor::core
