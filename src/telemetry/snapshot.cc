#include "telemetry/snapshot.h"

namespace hodor::telemetry {

NetworkSnapshot::NetworkSnapshot(const net::Topology& topo,
                                 std::uint64_t epoch)
    : topo_(&topo), epoch_(epoch), frame_(topo) {}

void NetworkSnapshot::Reset(std::uint64_t epoch) {
  epoch_ = epoch;
  frame_.Clear();
  probes_.clear();
  probe_by_link_.clear();
}

void NetworkSnapshot::SetProbeResults(std::vector<ProbeResult> results) {
  probes_ = std::move(results);
  IndexProbeResults();
}

void NetworkSnapshot::IndexProbeResults() {
  probe_by_link_.assign(topo_->link_count(), std::nullopt);
  for (const ProbeResult& p : probes_) {
    HODOR_CHECK(p.link.valid() && p.link.value() < probe_by_link_.size());
    probe_by_link_[p.link.value()] = p.success;
  }
}

std::optional<bool> NetworkSnapshot::ProbeSucceeded(net::LinkId e) const {
  if (probe_by_link_.empty()) return std::nullopt;
  HODOR_CHECK(e.valid() && e.value() < probe_by_link_.size());
  return probe_by_link_[e.value()];
}

}  // namespace hodor::telemetry
