#include "telemetry/collector.h"

namespace hodor::telemetry {

NetworkSnapshot Collector::Collect(const net::GroundTruthState& state,
                                   const flow::SimulationResult& sim,
                                   std::uint64_t epoch, util::Rng& rng,
                                   const SnapshotMutator& mutator) const {
  NetworkSnapshot snapshot(*topo_, epoch);
  for (const net::Node& node : topo_->nodes()) {
    ReportRouterSignals(*topo_, state, sim, node.id, opts_.agent, rng,
                        snapshot);
  }
  if (mutator) mutator(snapshot);
  if (opts_.run_probes) {
    snapshot.SetProbeResults(ProbeAllLinks(*topo_, state, opts_.probes, rng));
  }
  return snapshot;
}

}  // namespace hodor::telemetry
