file(REMOVE_RECURSE
  "CMakeFiles/bench_correlated_failures.dir/bench_correlated_failures.cc.o"
  "CMakeFiles/bench_correlated_failures.dir/bench_correlated_failures.cc.o.d"
  "bench_correlated_failures"
  "bench_correlated_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlated_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
