#include "net/hierarchical_wan.h"

#include <gtest/gtest.h>

#include <string>

#include "net/graph_algorithms.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/strings.h"

namespace hodor::net {
namespace {

TEST(HierarchicalWan, PresetNodeCounts) {
  util::Rng rng(7);
  EXPECT_EQ(HierarchicalWan(HierarchicalWanPreset(400), rng).node_count(),
            404u);
  EXPECT_EQ(HierarchicalWan(HierarchicalWanPreset(1000), rng).node_count(),
            1000u);
  // The 10k preset is exercised in tests/property (slow tier); here we only
  // check the parameter arithmetic.
  const HierarchicalWanParams p10k = HierarchicalWanPreset(10000);
  EXPECT_EQ(p10k.cores * (1 + p10k.aggs_per_core * (1 + p10k.edges_per_agg)),
            10000u);
}

TEST(HierarchicalWan, SameSeedIsBitIdentical) {
  const HierarchicalWanParams params = HierarchicalWanPreset(400);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const Topology a = HierarchicalWan(params, rng_a);
  const Topology b = HierarchicalWan(params, rng_b);
  EXPECT_EQ(StructuralDigest(a), StructuralDigest(b));
}

TEST(HierarchicalWan, DifferentSeedsDiffer) {
  const HierarchicalWanParams params = HierarchicalWanPreset(400);
  util::Rng rng_a(42);
  util::Rng rng_b(43);
  const Topology a = HierarchicalWan(params, rng_a);
  const Topology b = HierarchicalWan(params, rng_b);
  // Same tier skeleton (node set), different chords/secondary homing.
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_NE(StructuralDigest(a), StructuralDigest(b));
}

TEST(HierarchicalWan, TierStructureAndFanOut) {
  HierarchicalWanParams params;
  params.cores = 4;
  params.aggs_per_core = 3;
  params.edges_per_agg = 5;
  util::Rng rng(11);
  const Topology topo = HierarchicalWan(params, rng);

  const std::size_t cores = params.cores;
  const std::size_t aggs = params.cores * params.aggs_per_core;
  const std::size_t edges = aggs * params.edges_per_agg;
  ASSERT_EQ(topo.node_count(), cores + aggs + edges);
  EXPECT_TRUE(topo.Validate().ok());

  // Physical link floor: core ring + dual-homed aggs + dual-homed edges.
  // Chords are seeded extras on top, bounded by the non-ring core pairs.
  const std::size_t floor = cores + 2 * aggs + 2 * edges;
  const std::size_t max_chords = cores * (cores - 1) / 2 - cores;
  EXPECT_GE(topo.physical_link_count(), floor);
  EXPECT_LE(topo.physical_link_count(), floor + max_chords);

  std::size_t seen_cores = 0, seen_aggs = 0, seen_edges = 0;
  for (const Node& node : topo.nodes()) {
    if (util::StartsWith(node.name, "core")) {
      ++seen_cores;
      EXPECT_FALSE(node.has_external_port) << node.name;
    } else if (util::StartsWith(node.name, "agg")) {
      ++seen_aggs;
      EXPECT_FALSE(node.has_external_port) << node.name;
      // Dual-homed: exactly two uplinks into the core tier.
      std::size_t core_links = 0;
      for (LinkId out : topo.OutLinks(node.id)) {
        if (util::StartsWith(topo.node(topo.link(out).dst).name, "core")) {
          ++core_links;
        }
      }
      EXPECT_EQ(core_links, 2u) << node.name;
    } else if (util::StartsWith(node.name, "edge")) {
      ++seen_edges;
      // Every edge router carries the external port and exactly two
      // aggregation uplinks (parent + seeded secondary).
      EXPECT_TRUE(node.has_external_port) << node.name;
      EXPECT_EQ(topo.OutLinks(node.id).size(), 2u) << node.name;
      for (LinkId out : topo.OutLinks(node.id)) {
        EXPECT_TRUE(util::StartsWith(topo.node(topo.link(out).dst).name,
                                     "agg"))
            << node.name;
      }
    } else {
      ADD_FAILURE() << "unexpected node name: " << node.name;
    }
  }
  EXPECT_EQ(seen_cores, cores);
  EXPECT_EQ(seen_aggs, aggs);
  EXPECT_EQ(seen_edges, edges);
  EXPECT_EQ(topo.ExternalNodes().size(), edges);
}

TEST(HierarchicalWan, Hier1kIsConnected) {
  util::Rng rng(42);
  const Topology topo = HierarchicalWan(HierarchicalWanPreset(1000), rng);
  ASSERT_EQ(topo.node_count(), 1000u);
  EXPECT_TRUE(topo.Validate().ok());
  EXPECT_TRUE(IsStronglyConnected(topo));
}

TEST(HierarchicalWan, CapacityTiersDescend) {
  util::Rng rng(5);
  const HierarchicalWanParams params = HierarchicalWanPreset(400);
  const Topology topo = HierarchicalWan(params, rng);
  for (const Link& link : topo.links()) {
    const std::string& src = topo.node(link.src).name;
    const std::string& dst = topo.node(link.dst).name;
    if (util::StartsWith(src, "core") && util::StartsWith(dst, "core")) {
      EXPECT_EQ(link.capacity, params.core_capacity);
    } else if (util::StartsWith(src, "edge") ||
               util::StartsWith(dst, "edge")) {
      EXPECT_EQ(link.capacity, params.edge_capacity);
    } else {
      EXPECT_EQ(link.capacity, params.agg_capacity);
    }
  }
}

TEST(StructuralDigestTest, SensitiveToStructure) {
  Topology a("t");
  const NodeId a0 = a.AddNode("n0");
  const NodeId a1 = a.AddNode("n1");
  a.AddBidirectionalLink(a0, a1, 10.0);

  Topology b("t");
  const NodeId b0 = b.AddNode("n0");
  const NodeId b1 = b.AddNode("n1");
  b.AddBidirectionalLink(b0, b1, 10.0);
  EXPECT_EQ(StructuralDigest(a), StructuralDigest(b));

  // Capacity change flips the digest.
  Topology c("t");
  const NodeId c0 = c.AddNode("n0");
  const NodeId c1 = c.AddNode("n1");
  c.AddBidirectionalLink(c0, c1, 20.0);
  EXPECT_NE(StructuralDigest(a), StructuralDigest(c));

  // So does an external port.
  Topology d("t");
  const NodeId d0 = d.AddNode("n0");
  const NodeId d1 = d.AddNode("n1");
  d.AddBidirectionalLink(d0, d1, 10.0);
  d.AddExternalPort(d0, 5.0);
  EXPECT_NE(StructuralDigest(a), StructuralDigest(d));
}

}  // namespace
}  // namespace hodor::net
