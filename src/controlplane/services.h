// The control-infrastructure instrumentation services (paper Figure 1).
//
// Each service aggregates raw router signals (or end-host measurements)
// into one piece of the ControllerInput. These are the components whose
// bugs the paper's §2.2 outages live in, so each service exposes a mutation
// hook through which the fault library corrupts its *output* — the honest
// aggregation logic itself stays intact, mirroring how a buggy rollout
// wraps correct inputs in incorrect processing.
#pragma once

#include <functional>

#include "controlplane/controller_input.h"
#include "flow/demand_matrix.h"
#include "net/topology.h"
#include "telemetry/snapshot.h"
#include "util/rng.h"

namespace hodor::controlplane {

// --- topology -----------------------------------------------------------

struct TopologyServiceOptions {
  // A link is stitched into the topology as available only when BOTH ends
  // report status up. Missing status is treated per this flag: the
  // conservative default excludes the link.
  bool missing_status_means_down = true;
};

// Builds the per-link availability view from reported link statuses.
class TopologyService {
 public:
  explicit TopologyService(TopologyServiceOptions opts = {}) : opts_(opts) {}

  std::vector<bool> Aggregate(const telemetry::NetworkSnapshot& snapshot) const;

 private:
  TopologyServiceOptions opts_;
};

// --- demand ---------------------------------------------------------------

struct DemandServiceOptions {
  // End-host measurement noise (multiplicative, uniform in ±noise).
  double measurement_noise = 0.002;
};

// Measures demand at the end hosts (paper §2.2 "External Input": demand is
// NOT collected from routers). Sees the true offered demand, with small
// measurement noise.
class DemandService {
 public:
  explicit DemandService(DemandServiceOptions opts = {}) : opts_(opts) {}

  flow::DemandMatrix Measure(const net::Topology& topo,
                             const flow::DemandMatrix& true_demand,
                             util::Rng& rng) const;

 private:
  DemandServiceOptions opts_;
};

// --- drain -----------------------------------------------------------------

// Collects drain intent signals into the controller's drain view. Missing
// signals default to undrained (the dangerous direction, as in the §2.1
// controller-restart/drain race).
class DrainService {
 public:
  void Aggregate(const telemetry::NetworkSnapshot& snapshot,
                 std::vector<bool>& node_drained,
                 std::vector<bool>& link_drained) const;
};

// --- full aggregation -------------------------------------------------------

// Mutation hooks applied to each service's output before it reaches the
// controller. Used by the fault library to reproduce §2.2 aggregation bugs.
struct AggregationFaultHooks {
  std::function<void(std::vector<bool>& link_available)> topology;
  std::function<void(flow::DemandMatrix&)> demand;
  std::function<void(std::vector<bool>& node_drained,
                     std::vector<bool>& link_drained)> drain;
};

struct ControlInfraOptions {
  TopologyServiceOptions topology;
  DemandServiceOptions demand;
};

// Runs all three services and assembles the ControllerInput.
ControllerInput AggregateInputs(const net::Topology& topo,
                                const telemetry::NetworkSnapshot& snapshot,
                                const flow::DemandMatrix& true_demand,
                                std::uint64_t epoch, util::Rng& rng,
                                const ControlInfraOptions& opts = {},
                                const AggregationFaultHooks& hooks = {});

}  // namespace hodor::controlplane
