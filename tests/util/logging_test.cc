#include "util/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace hodor::util {
namespace {

struct CapturedLog {
  LogLevel level;
  std::string message;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Instance().SetSink([this](LogLevel level, const std::string& m) {
      captured_.push_back(CapturedLog{level, m});
    });
    Logger::Instance().SetMinLevel(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::Instance().SetSink(nullptr);
    Logger::Instance().SetMinLevel(LogLevel::kInfo);
  }
  std::vector<CapturedLog> captured_;
};

TEST_F(LoggingTest, MacroStreamsAndDelivers) {
  HODOR_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].message, "hello 42");
}

TEST_F(LoggingTest, MinLevelFilters) {
  Logger::Instance().SetMinLevel(LogLevel::kWarning);
  HODOR_LOG(kDebug) << "too quiet";
  HODOR_LOG(kInfo) << "still too quiet";
  HODOR_LOG(kWarning) << "heard";
  HODOR_LOG(kError) << "also heard";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "heard");
  EXPECT_EQ(captured_[1].level, LogLevel::kError);
}

TEST_F(LoggingTest, LevelsOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, NullSinkRestoresDefault) {
  Logger::Instance().SetSink(nullptr);
  // Default sink writes to stderr; just verify logging does not crash and
  // our captured vector no longer grows.
  HODOR_LOG(kError) << "to stderr";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, SinkMayReplaceItselfMidCall) {
  // A sink that swaps in a replacement while its own call is still on the
  // stack (e.g. an alert handler that demotes itself after the first page).
  // The replaced std::function must stay alive until it returns.
  int first_calls = 0;
  int second_calls = 0;
  Logger::Instance().SetSink([&](LogLevel, const std::string&) {
    ++first_calls;
    Logger::Instance().SetSink([&](LogLevel, const std::string&) {
      ++second_calls;
    });
  });
  HODOR_LOG(kInfo) << "reentrant";
  HODOR_LOG(kInfo) << "after swap";
  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(second_calls, 1);
}

TEST_F(LoggingTest, LogLevelFromStringParsesKnownNames) {
  EXPECT_EQ(LogLevelFromString("debug"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("INFO"), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("Warning"), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromString("warn"), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromString(" error\n"), LogLevel::kError);
  EXPECT_EQ(LogLevelFromString(""), std::nullopt);
  EXPECT_EQ(LogLevelFromString("verbose"), std::nullopt);
}

}  // namespace
}  // namespace hodor::util
