
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/demand_matrix.cc" "src/flow/CMakeFiles/hodor_flow.dir/demand_matrix.cc.o" "gcc" "src/flow/CMakeFiles/hodor_flow.dir/demand_matrix.cc.o.d"
  "/root/repo/src/flow/metrics.cc" "src/flow/CMakeFiles/hodor_flow.dir/metrics.cc.o" "gcc" "src/flow/CMakeFiles/hodor_flow.dir/metrics.cc.o.d"
  "/root/repo/src/flow/routing.cc" "src/flow/CMakeFiles/hodor_flow.dir/routing.cc.o" "gcc" "src/flow/CMakeFiles/hodor_flow.dir/routing.cc.o.d"
  "/root/repo/src/flow/simulator.cc" "src/flow/CMakeFiles/hodor_flow.dir/simulator.cc.o" "gcc" "src/flow/CMakeFiles/hodor_flow.dir/simulator.cc.o.d"
  "/root/repo/src/flow/tm_generators.cc" "src/flow/CMakeFiles/hodor_flow.dir/tm_generators.cc.o" "gcc" "src/flow/CMakeFiles/hodor_flow.dir/tm_generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hodor_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hodor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
