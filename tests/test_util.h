// Shared fixtures and helpers for the Hodor test suite.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "controlplane/pipeline.h"
#include "controlplane/services.h"
#include "flow/simulator.h"
#include "flow/tm_generators.h"
#include "net/state.h"
#include "net/topologies.h"
#include "telemetry/collector.h"
#include "util/rng.h"

namespace hodor::testing {

// A ready-to-use healthy network: topology, ground truth, demand routed on
// shortest paths, simulated flows, and an honest snapshot.
struct HealthyNetwork {
  net::Topology topo;
  net::GroundTruthState state;
  flow::DemandMatrix demand;
  flow::RoutingPlan plan;
  flow::SimulationResult sim;

  // `max_util`: demand is scaled so healthy shortest-path routing peaks at
  // this link utilisation (uncongested by default — drops would legitimately
  // violate the demand invariants).
  HealthyNetwork(net::Topology t, std::uint64_t seed, double max_util = 0.6)
      : topo(std::move(t)), state(topo) {
    util::Rng rng(seed);
    demand = flow::GravityDemand(topo, rng);
    flow::NormalizeToMaxUtilization(topo, max_util, demand);
    plan = flow::ShortestPathRouting(
        topo, demand, [this](net::LinkId e) { return state.LinkUsable(e); });
    sim = flow::SimulateFlow(topo, state, demand, plan);
  }

  // Collects an honest snapshot (optionally with a fault mutator).
  telemetry::NetworkSnapshot Snapshot(
      std::uint64_t seed = 1,
      const telemetry::SnapshotMutator& fault = nullptr,
      telemetry::CollectorOptions opts = {}) const {
    util::Rng rng(seed);
    telemetry::Collector collector(topo, opts);
    return collector.Collect(state, sim, /*epoch=*/0, rng, fault);
  }

  // Aggregates honest controller inputs from an honest snapshot.
  controlplane::ControllerInput Input(
      const telemetry::NetworkSnapshot& snapshot,
      std::uint64_t seed = 2,
      const controlplane::AggregationFaultHooks& hooks = {}) const {
    util::Rng rng(seed);
    return controlplane::AggregateInputs(topo, snapshot, demand, /*epoch=*/0,
                                         rng, {}, hooks);
  }
};

inline HealthyNetwork MakeAbilene(std::uint64_t seed = 7,
                                  double max_util = 0.6) {
  return HealthyNetwork(net::Abilene(), seed, max_util);
}

// Minimal blocking HTTP GET against 127.0.0.1:`port` — the test-side curl
// for TelemetryServer smoke tests. Returns the raw response (status line,
// headers, body); empty string when the connection fails.
inline std::string HttpGet(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Strips the headers off an HttpGet response.
inline std::string HttpBody(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

}  // namespace hodor::testing
