// ExecTimeline units: critical-path decomposition from synthetic event
// streams, gauge publication, retention, and the Perfetto exporter.
#include "obs/exec_timeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/exec_trace.h"

namespace hodor::obs {
namespace {

using util::ExecEvent;
using util::ExecEventKind;
using util::ExecThreadHandle;
using util::ExecTracer;

constexpr std::uint64_t kMs = 1'000'000;  // ns per ms

ExecEvent Ev(std::uint64_t start_ns, std::uint64_t duration_ns,
             std::uint64_t epoch, ExecEventKind kind, std::uint16_t arg = 0,
             std::uint32_t detail = 0) {
  ExecEvent ev;
  ev.start_ns = start_ns;
  ev.duration_ns = duration_ns;
  ev.epoch = epoch;
  ev.kind = kind;
  ev.arg = arg;
  ev.detail = detail;
  return ev;
}

ExecTimelineOptions TwoStageOptions() {
  ExecTimelineOptions opts;
  opts.stage_names = {"collect", "program"};
  opts.pool_threads = 2;
  opts.sink_queue_id = 0;
  return opts;
}

// One hand-built epoch covering every analysis dimension:
//   epoch 5 spans [1ms, 11ms] on the control thread (tid 0);
//   stage collect runs [1ms, 5ms], program [6ms, 9ms] (1ms dependency gap);
//   two 2ms pool tasks → 4ms / (10ms × 2 threads) = 0.2 occupancy;
//   one control-thread queue push blocked 0.5ms, depth-after 2;
//   sink delivery [9ms, 13ms] → 2ms past the epoch's end.
struct SyntheticEpoch {
  ExecTracer tracer{256};
  ExecThreadHandle control = tracer.RegisterThread("control");
  ExecThreadHandle pool = tracer.RegisterThread("pool-0");
  ExecThreadHandle sink = tracer.RegisterThread("sink");

  explicit SyntheticEpoch(std::uint64_t epoch = 5, std::uint64_t base = kMs) {
    tracer.Emit(control, Ev(base, 4 * kMs, epoch, ExecEventKind::kStage, 0));
    tracer.Emit(control,
                Ev(base + 5 * kMs, 3 * kMs, epoch, ExecEventKind::kStage, 1));
    tracer.Emit(pool, Ev(base + kMs, 2 * kMs, epoch, ExecEventKind::kPoolTask, 0));
    tracer.Emit(pool, Ev(base + 3 * kMs, 2 * kMs, epoch,
                         ExecEventKind::kPoolTask, 1));
    tracer.Emit(control, Ev(base + 8 * kMs, kMs / 2, epoch,
                            ExecEventKind::kQueuePush, 0, 2));
    tracer.Emit(sink, Ev(base + 8 * kMs, 4 * kMs, epoch,
                         ExecEventKind::kSinkDeliver));
    tracer.Emit(control, Ev(base, 10 * kMs, epoch, ExecEventKind::kEpoch));
  }
};

TEST(ExecTimeline, DecomposesTheCriticalPathExactly) {
  SyntheticEpoch synth;
  ExecTimeline tl(&synth.tracer, TwoStageOptions());
  tl.Poll();

  const auto b = tl.Analyze(5);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->epoch, 5u);
  EXPECT_DOUBLE_EQ(b->critical_path_ms, 10.0);
  EXPECT_EQ(b->bottleneck, "collect");

  ASSERT_EQ(b->stages.size(), 2u);
  EXPECT_EQ(b->stages[0].name, "collect");
  EXPECT_DOUBLE_EQ(b->stages[0].self_ms, 4.0);
  EXPECT_DOUBLE_EQ(b->stages[0].wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(b->stages[0].busy_ratio, 0.4);
  EXPECT_EQ(b->stages[1].name, "program");
  EXPECT_DOUBLE_EQ(b->stages[1].self_ms, 3.0);
  EXPECT_DOUBLE_EQ(b->stages[1].wait_ms, 1.0);  // gap after collect ended

  EXPECT_DOUBLE_EQ(b->pool_busy_ratio, 0.2);
  EXPECT_DOUBLE_EQ(b->backpressure_ms, 0.5);
  EXPECT_EQ(b->sink_queue_depth_max, 2u);
  EXPECT_TRUE(b->sink_delivered);
  EXPECT_DOUBLE_EQ(b->sink_lag_ms, 2.0);

  EXPECT_TRUE(IsValidJson(b->ToJson())) << b->ToJson();
}

TEST(ExecTimeline, AnalyzeUnknownEpochIsEmpty) {
  SyntheticEpoch synth;
  ExecTimeline tl(&synth.tracer, TwoStageOptions());
  tl.Poll();
  EXPECT_FALSE(tl.Analyze(99).has_value());
}

TEST(ExecTimeline, RecentIsNewestFirstAndLatestMatches) {
  ExecTracer tracer(256);
  ExecThreadHandle control = tracer.RegisterThread("control");
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    const std::uint64_t base = epoch * 100 * kMs;
    tracer.Emit(control, Ev(base, 2 * kMs, epoch, ExecEventKind::kStage, 0));
    tracer.Emit(control, Ev(base, 5 * kMs, epoch, ExecEventKind::kEpoch));
  }
  ExecTimeline tl(&tracer, TwoStageOptions());
  tl.Poll();

  const auto recent = tl.Recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].epoch, 3u);
  EXPECT_EQ(recent[1].epoch, 2u);
  const auto latest = tl.Latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 3u);

  const std::string json = tl.RecentJson(10);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_LT(json.find("\"epoch\":3"), json.find("\"epoch\":1"));
}

TEST(ExecTimeline, SummarizeAveragesAndVotesTheBottleneck) {
  ExecTracer tracer(256);
  ExecThreadHandle control = tracer.RegisterThread("control");
  // Epoch 1: collect 4ms dominates; epochs 2 and 3: program 6ms dominates.
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    const std::uint64_t base = epoch * 100 * kMs;
    const std::uint64_t program_ms = epoch == 1 ? 2 : 6;
    tracer.Emit(control, Ev(base, 4 * kMs, epoch, ExecEventKind::kStage, 0));
    tracer.Emit(control, Ev(base + 4 * kMs, program_ms * kMs, epoch,
                            ExecEventKind::kStage, 1));
    tracer.Emit(control,
                Ev(base, (4 + program_ms) * kMs, epoch, ExecEventKind::kEpoch));
  }
  ExecTimeline tl(&tracer, TwoStageOptions());
  tl.Poll();

  const ExecSummary summary = Summarize(tl.Recent(3));
  EXPECT_EQ(summary.epochs, 3u);
  EXPECT_EQ(summary.bottleneck, "program");  // 2 votes out of 3
  ASSERT_EQ(summary.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(summary.stages[0].self_ms, 4.0);
  EXPECT_NEAR(summary.stages[1].self_ms, (2.0 + 6.0 + 6.0) / 3.0, 1e-9);
  EXPECT_NEAR(summary.mean_critical_path_ms, (6.0 + 10.0 + 10.0) / 3.0, 1e-9);
  EXPECT_TRUE(IsValidJson(summary.ToJson())) << summary.ToJson();
}

TEST(ExecTimeline, PublishGaugesExposesTheBreakdown) {
  SyntheticEpoch synth;
  ExecTimeline tl(&synth.tracer, TwoStageOptions());
  tl.Poll();
  MetricsRegistry reg;
  tl.PublishGauges(&reg);

  const Gauge* critical = reg.FindGauge("hodor_epoch_critical_path_ms", {});
  ASSERT_NE(critical, nullptr);
  EXPECT_DOUBLE_EQ(critical->value(), 10.0);
  const Gauge* collect_busy =
      reg.FindGauge("hodor_stage_busy_ratio", {{"stage", "collect"}});
  ASSERT_NE(collect_busy, nullptr);
  EXPECT_DOUBLE_EQ(collect_busy->value(), 0.4);
  const Gauge* bottleneck = reg.FindGauge("hodor_epoch_bottleneck", {});
  ASSERT_NE(bottleneck, nullptr);
  EXPECT_DOUBLE_EQ(bottleneck->value(), 0.0);  // collect's stage-graph index
  const Gauge* pool = reg.FindGauge("hodor_pool_busy_ratio", {});
  ASSERT_NE(pool, nullptr);
  EXPECT_DOUBLE_EQ(pool->value(), 0.2);
  const Gauge* backpressure = reg.FindGauge("hodor_epoch_backpressure_ms", {});
  ASSERT_NE(backpressure, nullptr);
  EXPECT_DOUBLE_EQ(backpressure->value(), 0.5);
  const Counter* dropped = reg.FindCounter("hodor_trace_dropped_total", {});
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value(), 0.0);
}

// S3: ring overflow surfaces as a monotone hodor_trace_dropped_total.
TEST(ExecTimeline, RingOverflowLandsInTheDroppedCounter) {
  ExecTracer tracer(8);
  ExecThreadHandle control = tracer.RegisterThread("control");
  for (std::uint64_t i = 0; i < 100; ++i) {
    tracer.Emit(control, Ev(i, 1, 0, ExecEventKind::kMark));
  }
  ExecTimeline tl(&tracer, TwoStageOptions());
  tl.Poll();
  MetricsRegistry reg;
  tl.PublishGauges(&reg);
  const Counter* dropped = reg.FindCounter("hodor_trace_dropped_total", {});
  ASSERT_NE(dropped, nullptr);
  EXPECT_GE(dropped->value(), 92.0);
  EXPECT_DOUBLE_EQ(dropped->value(),
                   static_cast<double>(tl.dropped_total()));
  // Republishing without new drops must not double-count the delta.
  tl.PublishGauges(&reg);
  EXPECT_DOUBLE_EQ(dropped->value(),
                   static_cast<double>(tl.dropped_total()));
}

TEST(ExecTimeline, RetentionTrimsOldestEvents) {
  ExecTracer tracer(256);
  ExecThreadHandle control = tracer.RegisterThread("control");
  ExecTimelineOptions opts = TwoStageOptions();
  opts.retain_events = 4;
  ExecTimeline tl(&tracer, opts);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.Emit(control, Ev(i, 1, 0, ExecEventKind::kMark));
  }
  tl.Poll();
  EXPECT_EQ(tl.retained_events(), 4u);
}

// S2 (observatory): bounded retention that evicts whole epoch anchors is
// not silent — it lands in hodor_timeline_epochs_dropped_total.
TEST(ExecTimeline, EvictedEpochAnchorsLandInTheEpochsDroppedCounter) {
  ExecTracer tracer(256);
  ExecThreadHandle control = tracer.RegisterThread("control");
  ExecTimelineOptions opts = TwoStageOptions();
  opts.retain_events = 4;  // tiny: each epoch emits 2 events
  ExecTimeline tl(&tracer, opts);
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    const std::uint64_t base = epoch * 100 * kMs;
    tracer.Emit(control, Ev(base, 2 * kMs, epoch, ExecEventKind::kStage, 0));
    tracer.Emit(control, Ev(base, 5 * kMs, epoch, ExecEventKind::kEpoch));
  }
  tl.Poll();
  // 6 epochs × 2 events against a 4-event window: at least the first four
  // epoch anchors were trimmed away.
  EXPECT_GE(tl.epochs_dropped(), 4u);
  MetricsRegistry reg;
  tl.PublishGauges(&reg);
  const Counter* dropped =
      reg.FindCounter("hodor_timeline_epochs_dropped_total", {});
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value(),
                   static_cast<double>(tl.epochs_dropped()));
  // Republishing without new evictions must not double-count the delta.
  tl.PublishGauges(&reg);
  EXPECT_DOUBLE_EQ(dropped->value(),
                   static_cast<double>(tl.epochs_dropped()));
  // A roomy timeline never drops an epoch.
  ExecTracer tracer2(256);
  ExecThreadHandle control2 = tracer2.RegisterThread("control");
  ExecTimeline roomy(&tracer2, TwoStageOptions());
  tracer2.Emit(control2, Ev(kMs, 5 * kMs, 1, ExecEventKind::kEpoch));
  roomy.Poll();
  EXPECT_EQ(roomy.epochs_dropped(), 0u);
}

TEST(ExecTimeline, WritePerfettoEmitsLoadableTraceJson) {
  SyntheticEpoch synth;
  ExecTimeline tl(&synth.tracer, TwoStageOptions());
  tl.Poll();

  std::ostringstream os;
  ASSERT_TRUE(tl.WritePerfetto(os));
  const std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json.substr(0, 300);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Per-thread metadata, stage slices by name, and the depth counter track.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"control\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"collect\""), std::string::npos);
  EXPECT_NE(json.find("\"sink_queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ExecTimeline, WritePerfettoWithNothingRetainedFails) {
  ExecTracer tracer(8);
  ExecTimeline tl(&tracer, TwoStageOptions());
  std::ostringstream os;
  EXPECT_FALSE(tl.WritePerfetto(os));
}

}  // namespace
}  // namespace hodor::obs
