# Empty dependencies file for hodor_faults.
# This may be replaced when dependencies are built.
