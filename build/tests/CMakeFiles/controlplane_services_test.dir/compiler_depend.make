# Empty compiler generated dependencies file for controlplane_services_test.
# This may be replaced when dependencies are built.
