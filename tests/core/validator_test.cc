#include "core/validator.h"

#include <gtest/gtest.h>

#include "faults/aggregation_faults.h"
#include "faults/snapshot_faults.h"
#include "test_util.h"

namespace hodor::core {
namespace {

using net::LinkId;
using net::NodeId;

struct ValidatorFixture : ::testing::Test {
  ValidatorFixture() : net(testing::MakeAbilene()), validator(net.topo) {}

  testing::HealthyNetwork net;
  Validator validator;
};

TEST_F(ValidatorFixture, HonestInputAccepted) {
  const auto snap = net.Snapshot();
  const auto report = validator.Validate(net.Input(snap), snap);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.violation_count(), 0u);
  EXPECT_EQ(report.Summary(), "ACCEPT");
}

TEST_F(ValidatorFixture, EachCheckContributesToReport) {
  const auto snap = net.Snapshot();
  controlplane::AggregationFaultHooks hooks;
  hooks.demand = faults::DemandScaled(2.0);
  hooks.topology = faults::LinksMarkedDown(net.topo, {net.topo.LinkIds()[0]});
  hooks.drain = faults::DrainsInvented({net.topo.NodeIds()[0]});
  const auto input = net.Input(snap, 2, hooks);
  const auto report = validator.Validate(input, snap);
  EXPECT_FALSE(report.demand.ok());
  EXPECT_FALSE(report.topology.ok());
  EXPECT_FALSE(report.drain.ok());
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("REJECT"), std::string::npos);
  const std::string detail = report.Describe(net.topo);
  EXPECT_NE(detail.find("[demand]"), std::string::npos);
  EXPECT_NE(detail.find("[topology]"), std::string::npos);
  EXPECT_NE(detail.find("[drain]"), std::string::npos);
}

TEST_F(ValidatorFixture, ChecksCanBeIndividuallyDisabled) {
  ValidatorOptions opts;
  opts.check_demand = false;
  Validator lenient(net.topo, opts);
  const auto snap = net.Snapshot();
  controlplane::AggregationFaultHooks hooks;
  hooks.demand = faults::DemandScaled(2.0);
  const auto input = net.Input(snap, 2, hooks);
  EXPECT_TRUE(lenient.Validate(input, snap).ok());
  EXPECT_FALSE(validator.Validate(input, snap).ok());
}

TEST_F(ValidatorFixture, PipelineAdapterMapsOkToAccept) {
  const auto fn = validator.AsPipelineValidator();
  const auto snap = net.Snapshot();
  const auto good = fn(net.Input(snap), snap);
  EXPECT_TRUE(good.accept);
  controlplane::AggregationFaultHooks hooks;
  hooks.demand = faults::DemandScaled(3.0);
  const auto bad = fn(net.Input(snap, 2, hooks), snap);
  EXPECT_FALSE(bad.accept);
  EXPECT_NE(bad.reason.find("REJECT"), std::string::npos);
}

TEST_F(ValidatorFixture, HardeningSummaryExposedInReport) {
  const NodeId victim = net.topo.FindNode("IPLSng").value();  // degree 3
  const auto snap =
      net.Snapshot(1, faults::ZeroedCountersFault(victim, 1.0, 7));
  const auto report = validator.Validate(net.Input(snap), snap);
  EXPECT_GT(report.hardened.flagged_rate_count, 0u);
}

TEST_F(ValidatorFixture, DisasterScenarioIsAccepted) {
  // A third of links legitimately down + honest reporting: the dynamic
  // validator must NOT false-positive (the paper's core criticism of
  // static checks).
  std::size_t i = 0;
  for (LinkId e : net.topo.LinkIds()) {
    if (e.value() % 6 == 0) net.state.SetLinkUp(e, false);
    ++i;
  }
  // Re-route what remains and re-simulate honestly.
  net.plan = flow::ShortestPathRouting(
      net.topo, net.demand,
      [this](LinkId e) { return net.state.LinkUsable(e); });
  net.sim = flow::SimulateFlow(net.topo, net.state, net.demand, net.plan);
  telemetry::CollectorOptions copts;
  copts.probes.false_loss_rate = 0.0;
  const auto snap = net.Snapshot(1, nullptr, copts);
  const auto input = net.Input(snap);
  const auto report = validator.Validate(input, snap);
  EXPECT_TRUE(report.topology.ok()) << report.Describe(net.topo);
  EXPECT_TRUE(report.drain.ok());
  // Note: if surviving capacity can't carry all demand, drops make the
  // demand input legitimately inconsistent with delivered traffic — that
  // is a real signal, not a false positive. Use a light load to avoid it.
}

}  // namespace
}  // namespace hodor::core
