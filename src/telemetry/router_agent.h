// RouterAgent: produces one router's honest telemetry from ground truth.
//
// Counters come from the flow simulation's true per-link carried rates,
// perturbed by multiplicative rolling-window jitter — the paper's footnote 1
// "approximation ... due to discrepancies in the time window over which
// counters are measured". Link status reflects the optical/admin layer
// only: a link whose dataplane is broken but whose light is on reports kUp
// (the §4.2 semantic gap that alternative signals must catch).
//
// Dishonest behaviour (the §2.1 bug catalog) is NOT modeled here; the fault
// library mutates honest snapshots afterwards, keeping "what is true" and
// "what is corrupted" strictly separate.
#pragma once

#include "flow/simulator.h"
#include "net/state.h"
#include "net/topology.h"
#include "telemetry/snapshot.h"
#include "util/rng.h"

namespace hodor::telemetry {

struct AgentOptions {
  // Max magnitude of the multiplicative measurement jitter: a reported rate
  // is true_rate * (1 + U(-jitter, +jitter)). Production counter windows
  // disagree by well under the paper's 2% hardening threshold.
  double rate_jitter = 0.005;
  // Rates below this (Gbps) are reported as exactly 0 (counter floor).
  double zero_floor = 1e-9;
};

// Fills `snapshot` with honest signals for router `node`.
void ReportRouterSignals(const net::Topology& topo,
                         const net::GroundTruthState& state,
                         const flow::SimulationResult& sim,
                         net::NodeId node, const AgentOptions& opts,
                         util::Rng& rng, NetworkSnapshot& snapshot);

// --- deterministic parallel collection ------------------------------------
//
// Sharding honest collection across threads must not change a single
// reported bit, and every jitter value comes from one shared Rng whose
// draw order IS the serial report order. The split that preserves this:
// the collector first counts the draws each router will make
// (CountJitterDraws mirrors ReportRouterSignals' zero-floor branches),
// pre-draws them all from the shared Rng in exact serial order into a
// flat buffer, then lets worker threads run ReportRouterSignalsPredrawn,
// which consumes its router's slice in the same order Jitter would have
// drawn. The master Rng ends in the same state as the serial path, and
// every reported value is bit-identical.

// Number of Uniform(-jitter,+jitter) draws ReportRouterSignals makes for
// `node` (rates at/above the zero floor draw; floored rates do not).
std::size_t CountJitterDraws(const net::Topology& topo,
                             const flow::SimulationResult& sim,
                             net::NodeId node, const AgentOptions& opts);

// ReportRouterSignals with the jitter uniforms supplied by the caller.
// `jitter` must hold CountJitterDraws(...) values drawn in serial report
// order. Writes through the frame's Fill* fast path (value slots only);
// the collector commits presence afterwards via MarkHonestPresence().
void ReportRouterSignalsPredrawn(const net::Topology& topo,
                                 const net::GroundTruthState& state,
                                 const flow::SimulationResult& sim,
                                 net::NodeId node, const AgentOptions& opts,
                                 const double* jitter,
                                 NetworkSnapshot& snapshot);

}  // namespace hodor::telemetry
