#include "telemetry/snapshot.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace hodor::telemetry {
namespace {

using net::LinkId;
using net::NodeId;

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : topo_(net::Figure3Triangle()), snap_(topo_, 7) {}
  net::Topology topo_;
  NetworkSnapshot snap_;
};

TEST_F(SnapshotTest, EpochAndTopologyWiredThrough) {
  EXPECT_EQ(snap_.epoch(), 7u);
  EXPECT_EQ(&snap_.topology(), &topo_);
  EXPECT_EQ(snap_.routers().size(), 3u);
}

TEST_F(SnapshotTest, FreshSnapshotHasNoSignals) {
  EXPECT_EQ(snap_.PresentSignalCount(), 0u);
  for (LinkId e : topo_.LinkIds()) {
    EXPECT_FALSE(snap_.TxRate(e).has_value());
    EXPECT_FALSE(snap_.RxRate(e).has_value());
    EXPECT_FALSE(snap_.StatusAtSrc(e).has_value());
  }
}

TEST_F(SnapshotTest, TxRateReportedBySrc) {
  const LinkId ab = topo_.FindLink(topo_.FindNode("A").value(),
                                   topo_.FindNode("B").value())
                        .value();
  RouterSignals& a = snap_.router(topo_.link(ab).src);
  a.out_ifaces[ab].tx_rate = 42.0;
  EXPECT_DOUBLE_EQ(snap_.TxRate(ab).value(), 42.0);
  EXPECT_FALSE(snap_.RxRate(ab).has_value());
}

TEST_F(SnapshotTest, RxRateReportedByDst) {
  const LinkId ab = topo_.FindLink(topo_.FindNode("A").value(),
                                   topo_.FindNode("B").value())
                        .value();
  RouterSignals& b = snap_.router(topo_.link(ab).dst);
  b.in_ifaces[ab].rx_rate = 41.5;
  EXPECT_DOUBLE_EQ(snap_.RxRate(ab).value(), 41.5);
}

TEST_F(SnapshotTest, StatusAtDstReadsReverseDirection) {
  const LinkId ab = topo_.FindLink(topo_.FindNode("A").value(),
                                   topo_.FindNode("B").value())
                        .value();
  const LinkId ba = topo_.link(ab).reverse;
  snap_.router(topo_.link(ba).src).out_ifaces[ba].status = LinkStatus::kDown;
  EXPECT_EQ(snap_.StatusAtDst(ab).value(), LinkStatus::kDown);
  EXPECT_FALSE(snap_.StatusAtSrc(ab).has_value());
}

TEST_F(SnapshotTest, UnresponsiveRouterHidesItsSignals) {
  const NodeId a = topo_.FindNode("A").value();
  RouterSignals& ra = snap_.router(a);
  ra.drained = false;
  ra.ext_in_rate = 10.0;
  const LinkId out = topo_.OutLinks(a)[0];
  ra.out_ifaces[out].tx_rate = 5.0;
  EXPECT_TRUE(snap_.NodeDrained(a).has_value());
  ra.responded = false;
  EXPECT_FALSE(snap_.NodeDrained(a).has_value());
  EXPECT_FALSE(snap_.ExtInRate(a).has_value());
  EXPECT_FALSE(snap_.TxRate(out).has_value());
  EXPECT_EQ(snap_.PresentSignalCount(), 0u);
}

TEST_F(SnapshotTest, ProbeResultsIndexedByLink) {
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(0)).has_value());
  std::vector<ProbeResult> probes;
  probes.push_back(ProbeResult{LinkId(0), true});
  probes.push_back(ProbeResult{LinkId(3), false});
  snap_.SetProbeResults(probes);
  EXPECT_TRUE(snap_.ProbeSucceeded(LinkId(0)).value());
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(3)).value());
  EXPECT_FALSE(snap_.ProbeSucceeded(LinkId(1)).has_value());
  EXPECT_EQ(snap_.probe_results().size(), 2u);
}

TEST_F(SnapshotTest, PresentSignalCountCounts) {
  const NodeId a = topo_.FindNode("A").value();
  RouterSignals& ra = snap_.router(a);
  ra.drained = true;
  ra.dropped_rate = 0.0;
  const LinkId out = topo_.OutLinks(a)[0];
  ra.out_ifaces[out].status = LinkStatus::kUp;
  ra.out_ifaces[out].tx_rate = 1.0;
  EXPECT_EQ(snap_.PresentSignalCount(), 4u);
}

TEST_F(SnapshotTest, LinkDrainAccessors) {
  const LinkId ab = topo_.LinkIds()[0];
  snap_.router(topo_.link(ab).src).out_ifaces[ab].link_drained = true;
  EXPECT_TRUE(snap_.LinkDrainAtSrc(ab).value());
  EXPECT_FALSE(snap_.LinkDrainAtDst(ab).has_value());
}

}  // namespace
}  // namespace hodor::telemetry
